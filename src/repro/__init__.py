"""repro: reproduction of "Application Steering in a Collaborative
Environment" (Brooke, Eickermann, Woessner et al., SC2003).

Subpackage map (see DESIGN.md for the full inventory):

* :mod:`repro.des` / :mod:`repro.net` / :mod:`repro.wire` -- the simulated
  Grid fabric: discrete-event kernel, WAN topology, typed wire codec.
* :mod:`repro.steering` -- the paper's core contribution: application
  instrumentation, steering clients, collaborative sessions with
  master-token roles, low-latency control-state server, migration.
* :mod:`repro.visit` -- the VISIT toolkit (simulation-as-client,
  timeout-bounded operations, vbroker multiplexer).
* :mod:`repro.unicore` -- three-tier UNICORE middleware plus the VISIT
  proxy extension that tunnels steering through the single gateway port.
* :mod:`repro.ogsa` -- OGSI::Lite hosting environment, registry, the OGSA
  steering and visualization services.
* :mod:`repro.covise` -- data objects, request brokers, module networks,
  collaborative parameter-synchronized sessions.
* :mod:`repro.accessgrid` -- venues, media streams, vnc, VizServer.
* :mod:`repro.sims` -- LB3D, PEPC, building climatization, crowd flow.
* :mod:`repro.viz` -- isosurface/cutplane/glyph/volume extraction, a
  software rasterizer, framebuffer delta/RLE compression.
* :mod:`repro.parallel` -- SPMD runtime, SFC decomposition, collective
  cost models.
* :mod:`repro.workloads` -- 2003-era network profiles, feedback-loop cost
  models, canned multi-site scenarios.
* :mod:`repro.fleet` -- the session-fleet engine: declarative scenario
  specs, a driver running hundreds of concurrent sessions, sharded
  registry federation, vbroker pooling, mergeable telemetry.
* :mod:`repro.load` -- open-loop traffic on top of the fleet: seeded
  arrival processes, bounded-queue admission control with per-class
  SLOs, placement policies, reactive autoscaling of sites and shards.
* :mod:`repro.chaos` -- seeded fault injection (outages, partitions,
  crashes, lockdowns), per-session recovery orchestration
  (retry/migrate/degrade/abandon) and continuous invariant checking.
"""

__version__ = "1.0.0"

__all__ = [
    "des",
    "net",
    "wire",
    "steering",
    "visit",
    "unicore",
    "ogsa",
    "covise",
    "accessgrid",
    "sims",
    "viz",
    "parallel",
    "workloads",
    "fleet",
    "load",
    "chaos",
    "util",
    "errors",
]
