"""2003-era network profiles for the simulated links.

The paper's testbed: UCL -> Manchester over SuperJanet (the UK academic
backbone), VizServer output to a laptop on the Sheffield conference
floor, transatlantic Access Grid sites, CAVEs on campus networks.  The
numbers are era-plausible one-way latencies and usable (not nominal)
bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetProfile:
    """One link class: one-way latency (s) and bandwidth (bytes/s)."""

    name: str
    latency: float
    bandwidth: float

    def one_way(self, nbytes: float) -> float:
        """Unloaded delivery time for a message of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def round_trip(self, request_bytes: float = 64, reply_bytes: float = 64) -> float:
        return self.one_way(request_bytes) + self.one_way(reply_bytes)


LAN = NetProfile("lan", 0.0002, 1e9 / 8)
CAMPUS = NetProfile("campus", 0.001, 100e6 / 8)
#: SuperJanet4 backbone between UK sites (UCL <-> Manchester)
SUPERJANET = NetProfile("superjanet", 0.008, 155e6 / 8)
#: UK <-> US links of the era
TRANSATLANTIC = NetProfile("transatlantic", 0.045, 45e6 / 8)
#: the SC'03 show floor uplink
CONFERENCE_FLOOR = NetProfile("conference-floor", 0.005, 10e6 / 8)
#: a home/DSL observer site
DSL = NetProfile("dsl", 0.025, 1e6 / 8)

PROFILES = {
    p.name: p
    for p in (LAN, CAMPUS, SUPERJANET, TRANSATLANTIC, CONFERENCE_FLOOR, DSL)
}


def link_with_profile(network, a: str, b: str, profile: NetProfile):
    """Add the directed link pair between two hosts using a profile."""
    return network.add_link(a, b, latency=profile.latency,
                            bandwidth=profile.bandwidth)
