"""Benchmark workloads: network profiles, cost models, canned scenarios."""

from repro.workloads.netprofiles import (
    CAMPUS,
    CONFERENCE_FLOOR,
    DSL,
    LAN,
    PROFILES,
    SUPERJANET,
    TRANSATLANTIC,
    NetProfile,
    link_with_profile,
)
from repro.workloads.costmodels import (
    DESKTOP_BUDGET,
    SIM_FEEDBACK_TOLERANCE,
    VR_BUDGET,
    FeedbackLoopModel,
)
from repro.workloads.scenarios import realitygrid_testbed, sc03_showfloor

__all__ = [
    "NetProfile",
    "LAN",
    "CAMPUS",
    "SUPERJANET",
    "TRANSATLANTIC",
    "CONFERENCE_FLOOR",
    "DSL",
    "PROFILES",
    "link_with_profile",
    "VR_BUDGET",
    "DESKTOP_BUDGET",
    "SIM_FEEDBACK_TOLERANCE",
    "FeedbackLoopModel",
    "realitygrid_testbed",
    "sc03_showfloor",
]
