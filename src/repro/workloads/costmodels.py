"""Cost models for the three feedback loops of sections 4.2-4.4.

The paper's budgets:

* VR rendering loop: "at least 10 to 15 updates per second" -> 66-100 ms
  per frame (:data:`VR_BUDGET` uses the lenient 10 Hz bound);
* desktop loop: "at least 3 to 5 frames per second ... with one frame
  delay" -> 200-333 ms (:data:`DESKTOP_BUDGET` = 333 ms);
* simulation loop: "people can tolerate delays of up to a minute while
  waiting for new simulation results" (:data:`SIM_FEEDBACK_TOLERANCE`).

:class:`FeedbackLoopModel` reproduces the *arithmetic argument* of
section 4.2 — "Just taking the communication delays as well as the
compression and decompression times into account, without considering
the rendering times, these already exceed the required turn around time"
— with explicit per-stage terms so the S42 bench can print the breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.netprofiles import NetProfile

#: per-frame budget to hold 10-15 fps in a CAVE (lenient bound: 10 fps)
VR_BUDGET = 1.0 / 10.0
#: per-frame budget to hold 3-5 fps on a desktop (lenient bound: 3 fps)
DESKTOP_BUDGET = 1.0 / 3.0
#: tolerated delay for new simulation results (section 4.4)
SIM_FEEDBACK_TOLERANCE = 60.0


@dataclass(frozen=True)
class FeedbackLoopModel:
    """Per-stage costs of the remote-rendering loop.

    Rates are era-plausible for an Onyx-class server and a laptop client:
    compression on the server, decompression on the client, both scaling
    with the (compressed) frame size.
    """

    #: server render time per frame (s) — excluded in the paper's argument
    render_time: float = 0.030
    #: compression throughput on the server (bytes/s of raw frame)
    compress_rate: float = 40e6
    #: decompression throughput on the client (bytes/s of raw frame)
    decompress_rate: float = 80e6
    #: achieved compression ratio of the frame codec
    compression_ratio: float = 10.0
    #: size of a viewer-position update message (bytes)
    viewpos_bytes: int = 64
    #: local display/compositing overhead per frame (s)
    display_time: float = 0.002

    def remote_loop_breakdown(
        self, profile: NetProfile, raw_frame_bytes: int,
        include_render: bool = True,
    ) -> dict:
        """Stage-by-stage time of one remote-rendered frame."""
        wire_bytes = raw_frame_bytes / self.compression_ratio
        stages = {
            "send_viewpos": profile.one_way(self.viewpos_bytes),
            "render": self.render_time if include_render else 0.0,
            "compress": raw_frame_bytes / self.compress_rate,
            "transmit": profile.one_way(wire_bytes),
            "decompress": raw_frame_bytes / self.decompress_rate,
            "display": self.display_time,
        }
        stages["total"] = sum(stages.values())
        return stages

    def remote_loop_time(self, profile: NetProfile, raw_frame_bytes: int,
                         include_render: bool = True) -> float:
        return self.remote_loop_breakdown(
            profile, raw_frame_bytes, include_render
        )["total"]

    def local_loop_time(self, include_render: bool = True) -> float:
        """Local scene graph: render + display only; avatar updates ride
        asynchronously and do not gate the frame."""
        return (self.render_time if include_render else 0.0) + self.display_time
