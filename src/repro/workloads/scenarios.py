"""Canned multi-site scenarios shared by benches and examples."""

from __future__ import annotations

from repro.des import Environment
from repro.net import Firewall, Network
from repro.workloads.netprofiles import (
    CAMPUS,
    CONFERENCE_FLOOR,
    SUPERJANET,
    TRANSATLANTIC,
    link_with_profile,
)

#: the single open port of each HPC centre's gateway
GATEWAY_PORT = 4433


def realitygrid_testbed(env: Environment | None = None):
    """The Figure 1 testbed: compute at UCL, viz at Manchester, client on
    the conference floor, plus a transatlantic AG site.

    Returns ``(env, net)`` with hosts:
    ``ucl-onyx``, ``man-bezier``, ``floor-laptop``, ``anl-ag``.
    """
    env = env or Environment()
    net = Network(env)
    net.add_host("ucl-onyx", firewall=Firewall.single_port(GATEWAY_PORT))
    net.add_host("man-bezier")
    net.add_host("floor-laptop")
    net.add_host("anl-ag")
    link_with_profile(net, "ucl-onyx", "man-bezier", SUPERJANET)
    link_with_profile(net, "ucl-onyx", "floor-laptop", CONFERENCE_FLOOR)
    link_with_profile(net, "man-bezier", "floor-laptop", CONFERENCE_FLOOR)
    link_with_profile(net, "man-bezier", "anl-ag", TRANSATLANTIC)
    link_with_profile(net, "ucl-onyx", "anl-ag", TRANSATLANTIC)
    link_with_profile(net, "floor-laptop", "anl-ag", TRANSATLANTIC)
    return env, net


def sc03_showfloor(n_sites: int = 4, env: Environment | None = None,
                   cave: bool = False):
    """The showcase venue: a venue server, N AG sites with mixed link
    classes, optionally a firewalled CAVE site needing a bridge.

    Returns ``(env, net, site_names)``.
    """
    env = env or Environment()
    net = Network(env)
    net.add_host("venue-server")
    profiles = [CAMPUS, SUPERJANET, TRANSATLANTIC, CONFERENCE_FLOOR]
    names = []
    for i in range(n_sites):
        name = f"ag-site-{i}"
        net.add_host(name)
        link_with_profile(net, "venue-server", name,
                          profiles[i % len(profiles)])
        names.append(name)
    for i in range(n_sites):
        for j in range(i + 1, n_sites):
            link_with_profile(net, names[i], names[j],
                              profiles[max(i, j) % len(profiles)])
    if cave:
        net.add_host("hlrs-cave", multicast=False, firewall=Firewall.closed())
        link_with_profile(net, "venue-server", "hlrs-cave", CAMPUS)
        names.append("hlrs-cave")
    return env, net, names
