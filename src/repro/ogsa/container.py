"""OGSI::Lite — the lightweight hosting environment (section 2.3).

Deploys :class:`~repro.ogsa.service.GridService` instances at one
host:port, dispatches envelope-addressed invocations to them, reaps
expired instances, and answers handle-resolution queries for its own
services.  Faults travel back inside the envelope; the caller decides
what to raise.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ChannelClosed, OgsaError, ServiceNotFound, TimeoutExpired
from repro.ogsa.handles import GridServiceHandle, GridServiceReference
from repro.ogsa.service import GridService
from repro.ogsa.soap import envelope, open_envelope


class OgsiLiteContainer:
    """One hosting environment on one simulated host."""

    def __init__(self, host, port: int, authority: Optional[str] = None,
                 reap_interval: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.authority = authority or f"{host.name}:{port}"
        self.reap_interval = reap_interval
        self._services: dict[str, GridService] = {}
        self.faults_returned = 0
        self.reaped = 0
        self._listener = None
        self._started = False
        self._reaper_started = False
        #: accepted server-side connections, severed on a crash
        self._conns: list = []

    # -- deployment --------------------------------------------------------------

    def deploy(self, service: GridService) -> GridServiceReference:
        if service.service_id in self._services:
            raise OgsaError(f"service id {service.service_id!r} already deployed")
        self._services[service.service_id] = service
        service.attached(self, self.host.env.now)
        handle = GridServiceHandle(self.authority, service.service_id)
        return GridServiceReference(
            handle, self.host.name, self.port, tuple(service.interface())
        )

    def undeploy(self, service_id: str) -> None:
        if service_id not in self._services:
            raise ServiceNotFound(f"no service {service_id!r} in this container")
        del self._services[service_id]

    def service(self, service_id: str) -> GridService:
        svc = self._services.get(service_id)
        if svc is None:
            raise ServiceNotFound(f"no service {service_id!r} in this container")
        return svc

    def deployed(self) -> list[str]:
        return sorted(self._services)

    # -- processes ------------------------------------------------------------------

    def start(self) -> None:
        listener = self.host.listen(self.port)
        self._listener = listener
        self._started = True
        env = self.host.env

        def accept_loop():
            while True:
                conn = yield from listener.accept()
                self._conns.append(conn)
                env.process(self._serve(conn))

        env.process(accept_loop())
        if not self._reaper_started:
            self._reaper_started = True
            env.process(self._reaper())

    def stop(self) -> None:
        """Crash/drain the container: stop accepting and sever every
        established service connection, so clients notice immediately
        instead of waiting out invoke timeouts.  Deployed service
        instances keep their state — that is what migration moves."""
        if self._listener is not None:
            self._listener.close()
        for conn in self._conns:
            conn.close()
        self._conns.clear()

    def restart(self) -> None:
        """Bring a stopped container back up on its port (idempotent)."""
        if not self.alive:
            self.start()

    @property
    def alive(self) -> bool:
        """True while the container's listener is open on its host."""
        return (
            self._listener is not None
            and self.host.listeners.get(self.port) is self._listener
        )

    @property
    def dead(self) -> bool:
        """Started and then stopped — distinct from never-started, which
        unit tests use for pure object-level wiring."""
        return self._started and not self.alive

    def _reaper(self):
        env = self.host.env
        while True:
            yield env.timeout(self.reap_interval)
            for sid in list(self._services):
                if self._services[sid].expired(env.now):
                    del self._services[sid]
                    self.reaped += 1

    @staticmethod
    def _reply(conn, payload) -> None:
        """Send unless the connection died under us (container crash mid-
        request): the reply is simply lost, like the process it came from."""
        try:
            conn.send(payload)
        except ChannelClosed:
            pass

    def _serve(self, conn):
        try:
            yield from self._serve_loop(conn)
        finally:
            # Drop the bookkeeping reference once the conversation ends,
            # so _conns tracks *open* connections, not history.
            try:
                self._conns.remove(conn)
            except ValueError:
                pass  # stop() already cleared the list

    def _serve_loop(self, conn):
        while True:
            try:
                msg = yield from conn.recv(timeout=None)
            except ChannelClosed:
                return
            if conn.closed:
                return  # crashed between delivery and dispatch
            try:
                service_id, op, body, _ = open_envelope(msg)
            except OgsaError as exc:
                self.faults_returned += 1
                self._reply(conn, envelope("?", "?", fault=str(exc)))
                continue
            svc = self._services.get(service_id)
            if svc is None or svc.expired(self.host.env.now):
                self.faults_returned += 1
                self._reply(
                    conn,
                    envelope(service_id, op,
                             fault=f"no such service {service_id!r}"),
                )
                continue
            try:
                result = yield from svc.dispatch(op, body)
            except OgsaError as exc:
                self.faults_returned += 1
                self._reply(conn, envelope(service_id, op, fault=str(exc)))
                continue
            except Exception as exc:  # service bug: fault, don't crash
                self.faults_returned += 1
                self._reply(
                    conn,
                    envelope(service_id, op,
                             fault=f"{type(exc).__name__}: {exc}"),
                )
                continue
            self._reply(conn, envelope(service_id, op, body={"result": result}))


class ServiceConnection:
    """Client-side helper: invoke operations on services in one container."""

    def __init__(self, host, container_host: str, port: int,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.container_host = container_host
        self.port = port
        self.timeout = timeout
        self._conn = None

    def open(self):
        """Generator: establish the connection."""
        self._conn = yield from self.host.connect(
            self.container_host, self.port, timeout=self.timeout
        )
        return self

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def invoke(self, service_id: str, op: str, **args):
        """Generator -> result; raises OgsaError on faults."""
        if self._conn is None or self._conn.closed:
            raise OgsaError("service connection is not open")
        self._conn.send(envelope(service_id, op, body=args))
        try:
            reply = yield from self._conn.recv(timeout=self.timeout)
        except TimeoutExpired:
            raise OgsaError(
                f"invoke {service_id}.{op} timed out after {self.timeout}s"
            ) from None
        _sid, _op, body, fault = open_envelope(reply)
        if fault:
            raise OgsaError(fault)
        return body.get("result")
