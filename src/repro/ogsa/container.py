"""OGSI::Lite — the lightweight hosting environment (section 2.3).

Deploys :class:`~repro.ogsa.service.GridService` instances at one
host:port, dispatches envelope-addressed invocations to them, reaps
expired instances, and answers handle-resolution queries for its own
services.  Faults travel back inside the envelope; the caller decides
what to raise.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ChannelClosed, OgsaError, ServiceNotFound, TimeoutExpired
from repro.ogsa.handles import GridServiceHandle, GridServiceReference
from repro.ogsa.service import GridService
from repro.ogsa.soap import envelope, open_envelope


class OgsiLiteContainer:
    """One hosting environment on one simulated host."""

    def __init__(self, host, port: int, authority: Optional[str] = None,
                 reap_interval: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.authority = authority or f"{host.name}:{port}"
        self.reap_interval = reap_interval
        self._services: dict[str, GridService] = {}
        self.faults_returned = 0
        self.reaped = 0

    # -- deployment --------------------------------------------------------------

    def deploy(self, service: GridService) -> GridServiceReference:
        if service.service_id in self._services:
            raise OgsaError(f"service id {service.service_id!r} already deployed")
        self._services[service.service_id] = service
        service.attached(self, self.host.env.now)
        handle = GridServiceHandle(self.authority, service.service_id)
        return GridServiceReference(
            handle, self.host.name, self.port, tuple(service.interface())
        )

    def undeploy(self, service_id: str) -> None:
        if service_id not in self._services:
            raise ServiceNotFound(f"no service {service_id!r} in this container")
        del self._services[service_id]

    def service(self, service_id: str) -> GridService:
        svc = self._services.get(service_id)
        if svc is None:
            raise ServiceNotFound(f"no service {service_id!r} in this container")
        return svc

    def deployed(self) -> list[str]:
        return sorted(self._services)

    # -- processes ------------------------------------------------------------------

    def start(self) -> None:
        listener = self.host.listen(self.port)
        env = self.host.env

        def accept_loop():
            while True:
                conn = yield from listener.accept()
                env.process(self._serve(conn))

        env.process(accept_loop())
        env.process(self._reaper())

    def _reaper(self):
        env = self.host.env
        while True:
            yield env.timeout(self.reap_interval)
            for sid in list(self._services):
                if self._services[sid].expired(env.now):
                    del self._services[sid]
                    self.reaped += 1

    def _serve(self, conn):
        while True:
            try:
                msg = yield from conn.recv(timeout=None)
            except ChannelClosed:
                return
            try:
                service_id, op, body, _ = open_envelope(msg)
            except OgsaError as exc:
                self.faults_returned += 1
                conn.send(envelope("?", "?", fault=str(exc)))
                continue
            svc = self._services.get(service_id)
            if svc is None or svc.expired(self.host.env.now):
                self.faults_returned += 1
                conn.send(
                    envelope(service_id, op,
                             fault=f"no such service {service_id!r}")
                )
                continue
            try:
                result = yield from svc.dispatch(op, body)
            except OgsaError as exc:
                self.faults_returned += 1
                conn.send(envelope(service_id, op, fault=str(exc)))
                continue
            except Exception as exc:  # service bug: fault, don't crash
                self.faults_returned += 1
                conn.send(
                    envelope(service_id, op,
                             fault=f"{type(exc).__name__}: {exc}")
                )
                continue
            conn.send(envelope(service_id, op, body={"result": result}))


class ServiceConnection:
    """Client-side helper: invoke operations on services in one container."""

    def __init__(self, host, container_host: str, port: int,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.container_host = container_host
        self.port = port
        self.timeout = timeout
        self._conn = None

    def open(self):
        """Generator: establish the connection."""
        self._conn = yield from self.host.connect(
            self.container_host, self.port, timeout=self.timeout
        )
        return self

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def invoke(self, service_id: str, op: str, **args):
        """Generator -> result; raises OgsaError on faults."""
        if self._conn is None or self._conn.closed:
            raise OgsaError("service connection is not open")
        self._conn.send(envelope(service_id, op, body=args))
        try:
            reply = yield from self._conn.recv(timeout=self.timeout)
        except TimeoutExpired:
            raise OgsaError(
                f"invoke {service_id}.{op} timed out after {self.timeout}s"
            ) from None
        _sid, _op, body, fault = open_envelope(reply)
        if fault:
            raise OgsaError(fault)
        return body.get("result")
