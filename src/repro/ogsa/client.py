"""The OGSA steering client (the laptop of Figure 1, abstracted).

Workflow per section 2.3: contact the registry, choose the services
required, bind them (resolve handle -> container, open a connection), and
invoke.  One client can bind both the application-steering and the
visualization-steering service, which is exactly the FIG2 bench scenario.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ServiceNotFound
from repro.ogsa.container import ServiceConnection
from repro.ogsa.handles import GridServiceHandle, HandleResolver


class OgsaSteeringClient:
    """High-level steering client over the service fabric."""

    def __init__(
        self,
        host,
        resolver: HandleResolver,
        registry_host: str,
        registry_port: int,
        registry_id: str = "registry",
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.resolver = resolver
        self.registry_addr = (registry_host, registry_port, registry_id)
        self.timeout = timeout
        self._registry_conn: Optional[ServiceConnection] = None
        self._bound: dict[str, tuple[ServiceConnection, str]] = {}

    # -- registry ------------------------------------------------------------

    def _registry(self):
        if self._registry_conn is None:
            conn = ServiceConnection(
                self.host, self.registry_addr[0], self.registry_addr[1],
                timeout=self.timeout,
            )
            yield from conn.open()
            self._registry_conn = conn
        return self._registry_conn

    def find_services(self, **query):
        """Generator -> list of {handle, metadata} from the registry."""
        reg = yield from self._registry()
        result = yield from reg.invoke(
            self.registry_addr[2], "find", query=dict(query)
        )
        return result

    # -- binding ---------------------------------------------------------------

    def bind(self, handle_str: str):
        """Generator: resolve + connect a service; returns its local name."""
        handle = GridServiceHandle.parse(handle_str)
        ref = self.resolver.resolve(handle)
        conn = ServiceConnection(self.host, ref.host, ref.port, timeout=self.timeout)
        yield from conn.open()
        self._bound[handle_str] = (conn, handle.service_id)
        return handle_str

    def unbind(self, handle_str: str) -> None:
        entry = self._bound.pop(handle_str, None)
        if entry is not None:
            entry[0].close()

    def rebind(self, handle_str: str):
        """Generator: drop the cached binding and resolve the GSH afresh.

        The client-side half of service migration (section 2.4): after a
        service moves containers the resolver points at the new location,
        and re-resolving the *same* handle reconnects there.  Also the
        recovery move after a container crash — the stale connection is
        discarded either way.
        """
        self.unbind(handle_str)
        result = yield from self.bind(handle_str)
        return result

    def bound(self) -> list[str]:
        return sorted(self._bound)

    # -- invocation -----------------------------------------------------------------

    def invoke(self, handle_str: str, op: str, **args):
        """Generator -> result on a bound service."""
        entry = self._bound.get(handle_str)
        if entry is None:
            raise ServiceNotFound(f"{handle_str} is not bound; call bind() first")
        conn, service_id = entry
        result = yield from conn.invoke(service_id, op, **args)
        return result

    def close(self) -> None:
        for handle_str in list(self._bound):
            self.unbind(handle_str)
        if self._registry_conn is not None:
            self._registry_conn.close()
            self._registry_conn = None
