"""Grid Service Handles (GSH) and their resolution to references (GSR).

OGSI separates the *permanent name* of a service instance (the handle)
from the *current binding* (the reference: where it actually lives right
now).  This indirection is what lets RealityGrid migrate services without
breaking clients — resolve again and you find the new location.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OgsaError, ServiceNotFound


@dataclass(frozen=True)
class GridServiceHandle:
    """Permanent name: ``gsh://<authority>/<service_id>``."""

    authority: str
    service_id: str

    def __str__(self) -> str:
        return f"gsh://{self.authority}/{self.service_id}"

    @classmethod
    def parse(cls, text: str) -> "GridServiceHandle":
        if not text.startswith("gsh://"):
            raise OgsaError(f"not a GSH: {text!r}")
        rest = text[len("gsh://") :]
        if "/" not in rest:
            raise OgsaError(f"GSH missing service id: {text!r}")
        authority, service_id = rest.split("/", 1)
        if not authority or not service_id:
            raise OgsaError(f"malformed GSH: {text!r}")
        return cls(authority, service_id)


@dataclass(frozen=True)
class GridServiceReference:
    """Current binding: the host/port of the hosting container."""

    handle: GridServiceHandle
    host: str
    port: int
    interface: tuple = ()


class HandleResolver:
    """Maps handles to their current references."""

    def __init__(self) -> None:
        self._bindings: dict[GridServiceHandle, GridServiceReference] = {}

    def bind(self, ref: GridServiceReference) -> None:
        self._bindings[ref.handle] = ref

    def unbind(self, handle: GridServiceHandle) -> None:
        self._bindings.pop(handle, None)

    def handles(self) -> list[GridServiceHandle]:
        """Every currently-bound handle (registry-rebuild enumeration)."""
        return list(self._bindings)

    def resolve(self, handle: GridServiceHandle) -> GridServiceReference:
        ref = self._bindings.get(handle)
        if ref is None:
            raise ServiceNotFound(f"no binding for {handle}")
        return ref

    def rebind(self, handle: GridServiceHandle, host: str, port: int) -> None:
        """Point an existing handle at a new location (service migration)."""
        old = self.resolve(handle)
        self._bindings[handle] = GridServiceReference(
            handle, host, port, old.interface
        )
