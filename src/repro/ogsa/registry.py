"""The registry service (section 2.3, Figure 2).

"[The steering client] contacts a registry which ha[s] details of the
steering services that have published to the registry...  The client
chooses the services it will require and binds them to the client."

Entries carry the service handle plus free-form metadata (what it steers,
which application, which site).  ``find`` matches on metadata subsets.
"""

from __future__ import annotations

from typing import Any

from repro.errors import OgsaError
from repro.ogsa.service import GridService, operation


class RegistryService(GridService):
    """A GridService whose state is the published-services table."""

    def __init__(self, service_id: str = "registry") -> None:
        super().__init__(service_id)
        self._entries: dict[str, dict] = {}
        self.service_data["entry_count"] = 0

    @operation
    def publish(self, handle: str, metadata: dict) -> bool:
        """Register (or refresh) a service under its GSH string."""
        if not isinstance(handle, str) or not handle.startswith("gsh://"):
            raise OgsaError(f"publish needs a GSH string, got {handle!r}")
        if not isinstance(metadata, dict):
            raise OgsaError("metadata must be a struct")
        self._entries[handle] = dict(metadata)
        self.service_data["entry_count"] = len(self._entries)
        return True

    @operation
    def unpublish(self, handle: str) -> bool:
        if handle not in self._entries:
            raise OgsaError(f"handle {handle!r} is not published")
        del self._entries[handle]
        self.service_data["entry_count"] = len(self._entries)
        return True

    @operation
    def find(self, query: dict | None = None) -> list:
        """Entries whose metadata contains all (key, value) pairs of the
        query; empty query lists everything."""
        query = query or {}
        out = []
        for handle, meta in sorted(self._entries.items()):
            if all(meta.get(k) == v for k, v in query.items()):
                out.append({"handle": handle, "metadata": dict(meta)})
        return out

    @operation
    def lookup(self, handle: str) -> dict:
        meta = self._entries.get(handle)
        if meta is None:
            raise OgsaError(f"handle {handle!r} is not published")
        return dict(meta)
