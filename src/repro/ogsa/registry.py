"""The registry service (section 2.3, Figure 2).

"[The steering client] contacts a registry which ha[s] details of the
steering services that have published to the registry...  The client
chooses the services it will require and binds them to the client."

Entries carry the service handle plus free-form metadata (what it steers,
which application, which site).  ``find`` matches on metadata subsets.

At fleet scale (thousands of published handles, a ``find`` per admitted
session) the original linear scan is the hot path, so the registry keeps
an inverted index ``(key, value) -> handles``.  Matching semantics are
unchanged: candidates from the index are re-verified with the exact
equality predicate, values that cannot be hashed fall back to the scan
path, and results stay sorted by handle.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import OgsaError
from repro.ogsa.service import GridService, operation

_EMPTY: frozenset = frozenset()


class RegistryService(GridService):
    """A GridService whose state is the published-services table."""

    def __init__(self, service_id: str = "registry") -> None:
        super().__init__(service_id)
        self._entries: dict[str, dict] = {}
        #: inverted index over hashable metadata pairs
        self._index: dict[tuple[str, Any], set[str]] = {}
        #: handles carrying at least one unhashable metadata value; these
        #: are always re-checked by scan so indexing stays lossless
        self._unindexed: set[str] = set()
        self.service_data["entry_count"] = 0

    # -- index maintenance -------------------------------------------------

    def _index_add(self, handle: str, meta: dict) -> None:
        for k, v in meta.items():
            try:
                self._index.setdefault((k, v), set()).add(handle)
            except TypeError:
                self._unindexed.add(handle)

    def _index_remove(self, handle: str, meta: dict) -> None:
        for k, v in meta.items():
            try:
                bucket = self._index.get((k, v))
            except TypeError:
                continue
            if bucket is not None:
                bucket.discard(handle)
                if not bucket:
                    del self._index[(k, v)]
        self._unindexed.discard(handle)

    def _matches(self, query: dict) -> Iterable[str]:
        buckets = []
        for k, v in query.items():
            try:
                buckets.append(self._index.get((k, v), _EMPTY))
            except TypeError:
                # Unhashable query value: the index cannot answer this
                # pair; fall back to the full scan.
                return self._scan(query, self._entries)
        candidates = set(min(buckets, key=len))
        for bucket in buckets:
            candidates &= bucket
        # Re-verify with the exact predicate (identity-vs-equality corner
        # cases like NaN) and fold in the never-indexed handles.
        return self._scan(query, candidates | self._unindexed)

    def _scan(self, query: dict, handles: Iterable[str]) -> list[str]:
        return [
            h
            for h in handles
            if all(self._entries[h].get(k) == v for k, v in query.items())
        ]

    def _find_naive(self, query: dict | None = None) -> list:
        """Reference linear-scan implementation (regression tests only)."""
        query = query or {}
        out = []
        for handle, meta in sorted(self._entries.items()):
            if all(meta.get(k) == v for k, v in query.items()):
                out.append({"handle": handle, "metadata": dict(meta)})
        return out

    # -- operations --------------------------------------------------------

    @operation
    def publish(self, handle: str, metadata: dict) -> bool:
        """Register (or refresh) a service under its GSH string."""
        if not isinstance(handle, str) or not handle.startswith("gsh://"):
            raise OgsaError(f"publish needs a GSH string, got {handle!r}")
        if not isinstance(metadata, dict):
            raise OgsaError("metadata must be a struct")
        old = self._entries.get(handle)
        if old is not None:
            self._index_remove(handle, old)
        self._entries[handle] = dict(metadata)
        self._index_add(handle, self._entries[handle])
        self.service_data["entry_count"] = len(self._entries)
        return True

    @operation
    def unpublish(self, handle: str) -> bool:
        meta = self._entries.pop(handle, None)
        if meta is None:
            raise OgsaError(f"handle {handle!r} is not published")
        self._index_remove(handle, meta)
        self.service_data["entry_count"] = len(self._entries)
        return True

    @operation
    def find(self, query: dict | None = None) -> list:
        """Entries whose metadata contains all (key, value) pairs of the
        query; empty query lists everything."""
        query = query or {}
        if not query:
            matched: Iterable[str] = self._entries
        else:
            matched = self._matches(query)
        return [
            {"handle": h, "metadata": dict(self._entries[h])}
            for h in sorted(matched)
        ]

    @operation
    def lookup(self, handle: str) -> dict:
        meta = self._entries.get(handle)
        if meta is None:
            raise OgsaError(f"handle {handle!r} is not published")
        return dict(meta)
