"""The OGSA steering service (Figure 2's central box).

"The steering client, i.e. the part that can be integrated into the
collaborative environment, contacts a steering service which will
actually orchestrate the details of the steering" (section 2.2).

The service fronts one :class:`~repro.steering.api.SteeredApplication`
over a duplex control link (typically a network connection to the
machine the simulation runs on).  A pump process continuously ingests
acks / status / samples from the application; invocations that need an
answer wait on per-sequence futures with a timeout, so a dead application
faults the *service call*, never the container.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import OgsaError
from repro.ogsa.service import GridService, operation
from repro.steering.control import (
    Ack,
    CheckpointCmd,
    GetStatus,
    Pause,
    Resume,
    SampleMsg,
    SetParam,
    StatusReport,
    Stop,
)


class SteeringService(GridService):
    """Grid service fronting one steered application."""

    def __init__(
        self,
        service_id: str,
        app_link,
        application_name: str = "",
        reply_timeout: float = 10.0,
    ) -> None:
        super().__init__(service_id)
        self.app_link = app_link
        self.reply_timeout = reply_timeout
        self._seq = 0
        #: seq -> (des Event, wants_status)
        self._waiters: dict[int, Any] = {}
        self.last_status: Optional[StatusReport] = None
        self.latest_sample: Optional[SampleMsg] = None
        self.samples_seen = 0
        self.service_data["application"] = application_name
        self.service_data["steered_parameters"] = []

    def attached(self, container, now: float) -> None:
        super().attached(container, now)
        self.env.process(self._pump())

    # -- ingest loop --------------------------------------------------------------

    def _pump(self):
        # The pump's poll cadence is observable: processing an ack chains
        # straight into the service reply and its link reservation, so
        # pumps sharing a poll instant must keep their stable relative
        # order.  It therefore polls (no event-saving parking) while the
        # application lives — but exits once the application acked Stop,
        # because its control loop has returned and the link is silent
        # forever after; polling to the run deadline would only burn
        # events.
        env = self.env
        link = self.app_link
        poll = link.poll
        app_done = False
        while True:
            progressed = False
            while True:
                ok, msg = poll()
                if not ok:
                    break
                progressed = True
                if isinstance(msg, Ack):
                    entry = self._waiters.pop(msg.seq, None)
                    if entry is not None and not entry[0].triggered:
                        entry[0].succeed(msg)
                    if msg.ok and msg.command == "Stop":
                        app_done = True
                elif isinstance(msg, StatusReport):
                    self.last_status = msg
                    self.service_data["steered_parameters"] = sorted(
                        msg.parameters
                    )
                    # Status replies also answer pending GetStatus waiters.
                    for seq, entry in list(self._waiters.items()):
                        if entry[1]:
                            del self._waiters[seq]
                            if not entry[0].triggered:
                                entry[0].succeed(msg)
                elif isinstance(msg, SampleMsg):
                    self.latest_sample = msg
                    self.samples_seen += 1
            # Poll at a fine grain; the pump is cheap in virtual time.
            if progressed:
                yield env.timeout(0.0)
            elif app_done:
                return
            else:
                yield env.timeout(0.01)

    def _command(self, msg, wants_status: bool = False):
        """Generator -> Ack/StatusReport: send a command, await its reply."""
        self._seq += 1
        msg.seq = self._seq
        msg.sender = self.service_id
        waiter = self.env.event()
        self._waiters[self._seq] = (waiter, wants_status)
        self.app_link.send(msg)
        timeout = self.env.timeout(self.reply_timeout)
        results = yield self.env.any_of([waiter, timeout])
        if waiter in results:
            return results[waiter]
        self._waiters.pop(msg.seq, None)
        raise OgsaError(
            f"application did not reply to {type(msg).__name__} within "
            f"{self.reply_timeout}s"
        )

    # -- operations --------------------------------------------------------------

    @operation
    def set_parameter(self, name: str, value: Any):
        """Generator: steer one parameter; returns the applied value."""
        ack = yield from self._command(SetParam(name=name, value=value))
        if not ack.ok:
            raise OgsaError(f"set_parameter rejected: {ack.error}")
        return ack.result

    @operation
    def pause(self):
        ack = yield from self._command(Pause())
        return ack.ok

    @operation
    def resume(self):
        ack = yield from self._command(Resume())
        return ack.ok

    @operation
    def stop(self):
        ack = yield from self._command(Stop())
        return ack.ok

    @operation
    def checkpoint(self):
        """Generator -> checkpoint id held at the application."""
        ack = yield from self._command(CheckpointCmd())
        if not ack.ok:
            raise OgsaError(f"checkpoint failed: {ack.error}")
        return ack.result

    @operation
    def get_status(self):
        """Generator -> dict form of the application's StatusReport."""
        report = yield from self._command(GetStatus(), wants_status=True)
        return {
            "step": report.step,
            "time": report.time,
            "observables": report.observables,
            "parameters": report.parameters,
            "paused": report.paused,
        }

    @operation
    def latest_sample_meta(self) -> dict:
        """Sequence/step of the newest sample (data flows via the viz
        service, not through steering calls)."""
        if self.latest_sample is None:
            return {"seq": 0, "step": -1}
        return {"seq": self.latest_sample.seq, "step": self.latest_sample.step}
