"""OGSA: the Open Grid Services Architecture layer (sections 2.2-2.3).

RealityGrid ran its steering as an OGSA-compliant Grid service before GT3
existed, using **OGSI::Lite** — "a lightweight OGSA hosting environment
... us[ing] Perl ... thus [able to] run on almost any platform" (even a
PlayStation 2).  This package is that hosting environment in Python:

* :mod:`repro.ogsa.container` — the hosting environment: deploys service
  instances at a host:port, dispatches invocations, enforces lifetimes;
* :mod:`repro.ogsa.service` — the GridService base: operations, service
  data elements (SDEs), termination time;
* :mod:`repro.ogsa.handles` — GSH/GSR handles and the resolver;
* :mod:`repro.ogsa.registry` — the registry the steering client contacts
  first ("This contacts a registry which ha[s] details of the steering
  services that have published to the registry", section 2.3);
* :mod:`repro.ogsa.steering_service` / :mod:`repro.ogsa.viz_service` —
  "one service that steers the application and another that steers the
  visualization" (Figure 2);
* :mod:`repro.ogsa.client` — the steering client that looks up, binds and
  invokes.
"""

from repro.ogsa.soap import envelope, open_envelope
from repro.ogsa.handles import GridServiceHandle, HandleResolver
from repro.ogsa.service import GridService, operation
from repro.ogsa.container import OgsiLiteContainer, ServiceConnection
from repro.ogsa.registry import RegistryService
from repro.ogsa.steering_service import SteeringService
from repro.ogsa.viz_service import VisualizationService
from repro.ogsa.client import OgsaSteeringClient
from repro.ogsa.migration import migrate_service

__all__ = [
    "envelope",
    "open_envelope",
    "GridServiceHandle",
    "HandleResolver",
    "GridService",
    "operation",
    "OgsiLiteContainer",
    "ServiceConnection",
    "RegistryService",
    "SteeringService",
    "VisualizationService",
    "OgsaSteeringClient",
    "migrate_service",
]
