"""Grid-service migration between containers.

Section 2.4: "RealityGrid is developing the ability to migrate both
computation and visualization within a session without any disturbance or
intervention on the part of the participating clients."

Computation migration lives in :mod:`repro.steering.migration`; this
module migrates the *service* side: a deployed instance moves to another
container, and the handle resolver is re-pointed so clients that resolve
the same GSH find the new location.  Clients holding an open connection
to the old container re-resolve on their next bind — the GSH/GSR
indirection is exactly what makes this safe.
"""

from __future__ import annotations

from repro.errors import OgsaError, ServiceNotFound
from repro.ogsa.container import OgsiLiteContainer
from repro.ogsa.handles import GridServiceHandle, HandleResolver


def migrate_service(
    service_id: str,
    source: OgsiLiteContainer,
    target: OgsiLiteContainer,
    resolver: HandleResolver,
) -> GridServiceHandle:
    """Move a deployed service instance to another container.

    The instance object itself moves (state intact: service data,
    pending pumps keep their links); the source container stops serving
    it and the resolver is re-bound to the target's address.  Returns the
    (unchanged) handle.

    Raises :class:`ServiceNotFound` if the source does not host the
    service, :class:`OgsaError` if the target already hosts one with the
    same id.  On failure the source keeps the service — migration must
    never lose the instance.
    """
    service = source.service(service_id)  # raises ServiceNotFound
    if service_id in target.deployed():
        raise OgsaError(
            f"target container already hosts a service {service_id!r}"
        )
    if target.dead:
        # The target site died mid-migration: abort before any mutation
        # so the source keeps serving.  (A never-started container is
        # fine — object-level wiring precedes start() in several flows.)
        raise OgsaError(
            f"target container {target.authority!r} is down; "
            f"migration of {service_id!r} aborted, source keeps it"
        )

    handle = GridServiceHandle(source.authority, service_id)
    # Deploy on the target first; only then withdraw from the source.
    target._services[service_id] = service
    remaining = service.termination_time - source.host.env.now
    service._container = target
    service.termination_time = target.host.env.now + max(0.0, remaining)
    source.undeploy(service_id)

    try:
        resolver.rebind(handle, target.host.name, target.port)
    except ServiceNotFound:
        # Handle was never bound under the source authority (e.g. the
        # service was found via a registry entry that used the target
        # authority); bind fresh.
        from repro.ogsa.handles import GridServiceReference

        resolver.bind(
            GridServiceReference(handle, target.host.name, target.port,
                                 tuple(service.interface()))
        )
    return handle
