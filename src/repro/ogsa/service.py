"""GridService base class: operations, service data, lifetime.

OGSI's contribution over bare web services was *stateful* service
instances with introspectable **service data elements** and a bounded
**lifetime** (termination time) that clients must keep extending — both
are implemented here because the steering service genuinely uses them
(published parameters live in SDEs; abandoned sessions time out).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from repro.errors import OgsaError


def operation(fn: Callable) -> Callable:
    """Mark a method as an invocable service operation."""
    fn._ogsa_operation = True
    return fn


class GridService:
    """Base class for service instances hosted in a container."""

    #: default lifetime granted at creation (seconds of virtual time)
    DEFAULT_LIFETIME = 3600.0

    def __init__(self, service_id: str) -> None:
        self.service_id = service_id
        self.service_data: dict[str, Any] = {}
        self.created_at: float = 0.0
        self.termination_time: float = float("inf")
        self.invocations = 0
        self._container = None

    # -- container wiring -------------------------------------------------------

    def attached(self, container, now: float) -> None:
        """Called by the container when the instance is deployed."""
        self._container = container
        self.created_at = now
        self.termination_time = now + self.DEFAULT_LIFETIME

    @property
    def env(self):
        if self._container is None:
            raise OgsaError(f"service {self.service_id} is not deployed")
        return self._container.host.env

    # -- introspection --------------------------------------------------------------

    def interface(self) -> list[str]:
        """Names of all invocable operations (the portType)."""
        ops = []
        for name, member in inspect.getmembers(self, predicate=callable):
            if getattr(member, "_ogsa_operation", False):
                ops.append(name)
        return sorted(ops)

    @operation
    def get_service_data(self, name: str = "") -> Any:
        """OGSI findServiceData: one element or the whole set."""
        if name:
            if name not in self.service_data:
                raise OgsaError(f"no service data element {name!r}")
            return self.service_data[name]
        return dict(self.service_data)

    @operation
    def request_termination_after(self, lifetime: float) -> float:
        """Extend (or shorten) the lifetime; returns the new deadline."""
        if lifetime < 0:
            raise OgsaError("lifetime must be >= 0")
        self.termination_time = self.env.now + lifetime
        return self.termination_time

    @operation
    def destroy(self) -> bool:
        """Explicit destruction."""
        self.termination_time = self.env.now
        return True

    def expired(self, now: float) -> bool:
        return now >= self.termination_time

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, op: str, args: dict):
        """Generator -> result.  Invoke an operation by name.

        Plain-function operations return directly; generator operations
        (ones that must wait on the network) are delegated with their
        yields intact.
        """
        member = getattr(self, op, None)
        if member is None or not getattr(member, "_ogsa_operation", False):
            raise OgsaError(
                f"service {self.service_id!r} has no operation {op!r}"
            )
        self.invocations += 1
        if inspect.isgeneratorfunction(member):
            result = yield from member(**args)
            return result
        return member(**args)
        yield  # pragma: no cover - generator marker
