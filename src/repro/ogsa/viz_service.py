"""The visualization steering service (the second service in Figure 2).

Owns the server-side visualization pipeline for one application: ingests
samples from the simulation, extracts geometry (isosurface of the sample
field), renders on the "visualization supercomputer", and serves
VizServer-style compressed frames.  Steerable visualization parameters —
view point, isosurface level — are service operations, so visualization
steering rides the same OGSA machinery as application steering.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import OgsaError
from repro.ogsa.service import GridService, operation
from repro.steering.api import parked_tick
from repro.steering.control import SampleMsg
from repro.viz import Camera, Renderer, compress_frame, isosurface


class VisualizationService(GridService):
    """Grid service wrapping a renderer fed by simulation samples."""

    def __init__(
        self,
        service_id: str,
        sample_link,
        field_key: str = "order_parameter",
        width: int = 320,
        height: int = 240,
    ) -> None:
        super().__init__(service_id)
        self.sample_link = sample_link
        self.field_key = field_key
        self.renderer = Renderer(width, height)
        self.iso_level = 0.0
        self.latest_field: Optional[np.ndarray] = None
        self.latest_step = -1
        self.frames_rendered = 0
        #: observability hook ``cb(step)`` fired per ingested sample
        #: (set by the orchestrator when tracing is attached; None = off)
        self.on_frame = None
        self._prev_frame = None
        self.service_data["field"] = field_key
        self.service_data["viewport"] = [width, height]

    def attached(self, container, now: float) -> None:
        super().attached(container, now)
        self.env.process(self._pump())

    def _pump(self):
        env = self.env
        link = self.sample_link
        poll = link.poll
        can_park = hasattr(link, "arrival")
        while True:
            progressed = False
            while True:
                ok, msg = poll()
                if not ok:
                    break
                progressed = True
                if isinstance(msg, SampleMsg) and self.field_key in msg.data:
                    self.latest_field = np.asarray(msg.data[self.field_key])
                    self.latest_step = msg.step
                    if self.on_frame is not None:
                        self.on_frame(msg.step)
            # Idle pumps park on the link instead of burning empty poll
            # events — virtual-time behaviour is identical (parked_tick).
            if progressed:
                yield env.timeout(0.0)
            elif can_park:
                yield from parked_tick(env, link, 0.01)
            else:
                yield env.timeout(0.01)

    # -- operations ------------------------------------------------------------

    @operation
    def set_view(self, eye: list, target: list) -> bool:
        eye_arr = np.asarray(eye, dtype=np.float64)
        target_arr = np.asarray(target, dtype=np.float64)
        if eye_arr.shape != (3,) or target_arr.shape != (3,):
            raise OgsaError("eye and target must be 3-vectors")
        self.renderer.camera = Camera(eye=eye_arr, target=target_arr)
        return True

    @operation
    def set_iso_level(self, level: float) -> bool:
        self.iso_level = float(level)
        return True

    @operation
    def render_frame(self) -> dict:
        """Render the newest sample; returns the compressed frame.

        This is the VizServer path: geometry stays here, the caller gets
        bitmap bytes whose size is screen-dependent, not data-dependent.
        """
        if self.latest_field is None:
            raise OgsaError("no sample received yet")
        field = self.latest_field
        n = max(field.shape)
        verts, faces = isosurface(
            field.astype(np.float64),
            level=self.iso_level,
            spacing=(2.0 / max(1, n - 1),) * 3,
            origin=(-1.0, -1.0, -1.0),
        )
        self.renderer.clear()
        if len(faces):
            self.renderer.draw_triangles(verts, faces)
        frame = self.renderer.fb
        blob = compress_frame(frame, previous=self._prev_frame)
        self._prev_frame = frame.copy()
        self.frames_rendered += 1
        return {
            "step": self.latest_step,
            "triangles": int(len(faces)),
            "frame": blob,
            "raw_bytes": frame.nbytes,
            "geometry_bytes": int(verts.nbytes + faces.nbytes),
        }

    @operation
    def stats(self) -> dict:
        return {
            "frames_rendered": self.frames_rendered,
            "latest_step": self.latest_step,
            "iso_level": self.iso_level,
        }
