"""Minimal SOAP-style envelopes for service invocation.

The real OGSI::Lite spoke SOAP-over-HTTP; what matters structurally is the
envelope discipline: every message has a header (addressing, operation)
and a body, and faults are first-class.  Envelopes are plain dicts so the
wire codec carries them unchanged.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import OgsaError

ENVELOPE_NS = "repro-ogsa/1.0"


def envelope(
    service: str,
    op: str,
    body: Optional[dict] = None,
    fault: str = "",
) -> dict:
    """Build an envelope addressed to ``service`` invoking ``op``."""
    return {
        "ns": ENVELOPE_NS,
        "header": {"service": service, "operation": op},
        "body": dict(body or {}),
        "fault": fault,
    }


def open_envelope(msg: Any) -> tuple[str, str, dict, str]:
    """Validate and unpack an envelope -> (service, operation, body, fault)."""
    if not isinstance(msg, dict) or msg.get("ns") != ENVELOPE_NS:
        raise OgsaError(f"not an OGSA envelope: {msg!r}")
    header = msg.get("header")
    if not isinstance(header, dict) or "service" not in header or "operation" not in header:
        raise OgsaError("envelope missing addressing header")
    body = msg.get("body")
    if not isinstance(body, dict):
        raise OgsaError("envelope body must be a struct")
    return header["service"], header["operation"], body, msg.get("fault", "")
