"""Discrete-event simulation kernel.

A small, dependency-free process-based DES in the style of SimPy:
processes are Python generators that ``yield`` events (timeouts, store
gets, conditions); the :class:`Environment` advances virtual time and
resumes processes as their events trigger.

The whole simulated Grid (hosts, links, middleware, steering sessions)
runs on this kernel, which makes multi-site latency experiments exact,
deterministic and laptop-fast.
"""

from repro.des.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.des.resources import Mailbox, Resource, Store
from repro.des.sched import (
    CalendarScheduler,
    HeapScheduler,
    available_backends,
    make_scheduler,
)

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "Store",
    "Resource",
    "Mailbox",
    "HeapScheduler",
    "CalendarScheduler",
    "make_scheduler",
    "available_backends",
]
