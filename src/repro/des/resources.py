"""Shared-resource primitives for the DES kernel: stores and resources.

:class:`Store` is the workhorse — every simulated mailbox, socket buffer
and job queue is a store.  :class:`Resource` models mutually exclusive
capacity (CPU slots on a simulated host, graphics pipes on the viz engine).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Optional

from repro.des.core import Environment, Event
from repro.errors import SimulationError


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)


class Store:
    """FIFO item buffer with optional capacity.

    ``put(item)`` and ``get()`` return events; processes yield them.  With
    infinite capacity (the default) puts succeed immediately, which is the
    common case for message mailboxes.
    """

    __slots__ = ("env", "capacity", "items", "_put_waiters", "_get_waiters")

    def __init__(self, env: Environment, capacity: float = math.inf) -> None:
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque = deque()
        self._put_waiters: deque[StorePut] = deque()
        self._get_waiters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        ev = StorePut(self, item)
        self._put_waiters.append(ev)
        self._dispatch()
        return ev

    def get(self) -> StoreGet:
        ev = StoreGet(self)
        self._get_waiters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        # Admit queued puts while there is room.
        while self._put_waiters and len(self.items) < self.capacity:
            put = self._put_waiters.popleft()
            self.items.append(put.item)
            put.succeed()
        # Serve queued gets while items are available.
        while self._get_waiters and self.items:
            get = self._get_waiters.popleft()
            get.succeed(self.items.popleft())
            # A completed get may free room for a parked put.
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.popleft()
                self.items.append(put.item)
                put.succeed()

    def try_get(self) -> tuple[bool, Any]:
        """Non-suspending get: ``(True, item)`` or ``(False, None)``.

        Used by poll-style protocols (the VISIT simulation side must never
        block; it polls its mailbox and walks away if nothing is there).
        """
        if self.items:
            item = self.items.popleft()
            self._dispatch()
            return True, item
        return False, None


class ResourceRequest(Event):
    __slots__ = ("resource", "_released")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self._released = False

    def release(self) -> None:
        self.resource._release(self)


class Resource:
    """Counting resource with FIFO queuing (e.g. CPU slots, render pipes)."""

    __slots__ = ("env", "capacity", "users", "_queue")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list[ResourceRequest] = []
        self._queue: deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        return len(self.users)

    def request(self) -> ResourceRequest:
        req = ResourceRequest(self)
        self._queue.append(req)
        self._dispatch()
        return req

    def _release(self, req: ResourceRequest) -> None:
        if req._released:
            raise SimulationError("double release of resource request")
        req._released = True
        if req in self.users:
            self.users.remove(req)
        else:
            # Releasing a queued (never-granted) request cancels it.
            try:
                self._queue.remove(req)
            except ValueError:
                raise SimulationError("release of unknown resource request") from None
        self._dispatch()

    def _dispatch(self) -> None:
        while self._queue and len(self.users) < self.capacity:
            req = self._queue.popleft()
            self.users.append(req)
            req.succeed(req)


class Mailbox(Store):
    """A store with a convenience bounded-wait receive.

    ``recv(timeout)`` returns a generator suitable for ``yield from`` that
    resolves to ``(ok, item)`` — the pattern used throughout the simulated
    middleware to honour VISIT's everything-has-a-timeout rule.
    """

    __slots__ = ()

    def recv(self, timeout: Optional[float] = None):
        get = self.get()
        if timeout is None:
            item = yield get
            return True, item
        race = self.env.any_of([get, self.env.timeout(timeout)])
        results = yield race
        if get in results:
            return True, results[get]
        # Timed out: withdraw the pending get so the item is not lost to a
        # dead waiter when it eventually arrives.
        if get in self._get_waiters:
            self._get_waiters.remove(get)
        elif get.triggered:
            # Raced: the item arrived in the same instant the timer fired.
            return True, get.value
        return False, None
