"""Pluggable event-queue backends for the DES kernel.

The kernel's contract with its scheduler is tiny and exact: events are
``(time, priority, seq, event)`` tuples, and :meth:`pop` must return
them in strictly ascending tuple order — the ``(time, priority, seq)``
tie-break is load-bearing for every golden-pinned determinism test in
the repo.  ``seq`` is unique (the :class:`~repro.des.core.Environment`
assigns it), so the trailing event object is never compared.

Two backends implement the contract:

* :class:`HeapScheduler` — the reference backend: one binary heap via C
  ``heapq``, exactly the PR-4 kernel.  O(log n) per operation, but with
  C constants so small it wins at shallow depths.
* :class:`CalendarScheduler` — a calendar queue (Brown '88) with the
  non-wrapping dict-of-years layout of a one-rung ladder queue.  Time
  is cut into *years* of ``width`` virtual seconds; pending events land
  unsorted in their year's bucket (an O(1) append) and a bucket is only
  sorted — once, in C — when the dequeue cursor reaches it.  A small
  heap over the populated year keys makes skipping empty years O(log
  #years) instead of O(gap/width), so sleep-forever sentinels (the
  ``timeout(1e9)`` pattern) cost nothing.  Amortized O(1) per event
  once the adaptive width settles, and far better cache behaviour than
  a deep binary heap — the deeper the schedule, the bigger the win.

Why the dequeue cursor can be monotonic: the kernel only schedules at
``now + delay`` with ``delay >= 0`` (``timeout_until`` validates ``at >=
now``), and ``now`` is the time of the last popped event — so a push is
never earlier than the most recent pop.  Pushes that land in the year
currently being drained are bisected into the sorted remainder (``lo``
bounded by the cursor), which preserves the exact tuple order even for
an urgent event injected at the current instant.

Adaptive width
--------------
Bucket occupancy is what the width tunes.  Two triggers, both driven by
the deterministic push/pop sequence (so same-seed runs resize at the
same instants):

* **shrink** — a bucket exceeding ``max_occupancy`` on push multiplies
  the width by ``target_occupancy / len(bucket)`` and rebuilds;
* **widen** — every ``adapt_interval`` pops, if the measured
  items-per-opened-year ratio fell below ``target_occupancy / 4``, the
  width grows by the shortfall factor and rebuilds.

A rebuild is O(pending) and triggers happen geometrically, so the
amortized cost per event stays O(1).

Adding a backend
----------------
Implement ``push(item)``, ``pop() -> item`` (raising :class:`IndexError`
when empty), ``peek_time() -> float`` (``inf`` when empty) and
``__len__``, give it a ``name``, and register it in
:data:`BACKENDS`.  Selection happens per :class:`Environment` via the
``scheduler=`` kwarg or the ``REPRO_DES_SCHEDULER`` environment
variable; the cross-backend harness in ``tests/test_des_sched.py`` and
the per-backend floors in ``repro.perf.gate --kernel`` then cover it
automatically via :func:`available_backends`.
"""

from __future__ import annotations

import os
from bisect import insort
from functools import partial
from heapq import heappop, heappush
from math import floor, inf, isfinite

from repro.errors import SimulationError

#: scheduler used when neither the ``scheduler=`` kwarg nor the
#: environment variable picks one
DEFAULT_BACKEND = "calendar"

#: environment variable consulted by :func:`make_scheduler` — the lever
#: the cross-backend determinism harness flips without touching any
#: scenario code
ENV_VAR = "REPRO_DES_SCHEDULER"

#: event times at or beyond this horizon bypass year indexing and live
#: in a small overflow heap — keeps ``floor(t / width)`` sane for
#: sleep-until-the-heat-death sentinels (``timeout(1e9)`` ladders are
#: still bucketed normally; this catches ``inf`` and the truly absurd)
_FAR_HORIZON = 1e18


class HeapScheduler:
    """Reference backend: a single binary heap driven by C ``heapq``.

    ``push``/``pop`` are bound ``functools.partial`` objects over the C
    functions, so the kernel's hot paths pay no Python frame per event —
    this *is* the PR-4 scheduler, behind the seam.
    """

    name = "heap"

    __slots__ = ("_q", "push", "pop", "raw_heap")

    def __init__(self) -> None:
        self._q: list = []
        self.push = partial(heappush, self._q)
        self.pop = partial(heappop, self._q)
        #: the underlying list, exposed so ``Environment.run`` can keep
        #: its inline drain loop on the reference backend
        self.raw_heap = self._q

    def peek_time(self) -> float:
        q = self._q
        return q[0][0] if q else inf

    def __len__(self) -> int:
        return len(self._q)


class CalendarScheduler:
    """Calendar queue: dict-of-year buckets + sort-on-open cursor."""

    name = "calendar"

    __slots__ = (
        "_width",
        "_inv_w",
        "_buckets",
        "_years",
        "_cur",
        "_cur_year",
        "_cur_idx",
        "_far",
        "_size",
        "_pops",
        "_years_opened",
        "_target",
        "_max_occ",
        "_adapt_interval",
        "resizes",
    )

    def __init__(
        self,
        width: float = 1.0,
        target_occupancy: int = 16,
        max_occupancy: int = 4096,
        adapt_interval: int = 4096,
    ) -> None:
        if not isfinite(width) or width <= 0.0:
            raise SimulationError(f"calendar bucket width must be positive, got {width!r}")
        if target_occupancy < 1 or max_occupancy < target_occupancy:
            raise SimulationError("need 1 <= target_occupancy <= max_occupancy")
        self._width = float(width)
        self._inv_w = 1.0 / self._width
        #: year index -> unsorted list of pending items (non-current years)
        self._buckets: dict = {}
        #: heap of year keys with a bucket present (one entry per key)
        self._years: list = []
        #: the sorted current-year run; slots behind the cursor are None
        self._cur = None
        self._cur_year = None
        self._cur_idx = 0
        #: items at/beyond the far horizon, ordered by full tuple
        self._far: list = []
        self._size = 0
        self._pops = 0
        self._years_opened = 0
        self._target = int(target_occupancy)
        self._max_occ = int(max_occupancy)
        self._adapt_interval = int(adapt_interval)
        #: width rebuilds performed (observability/tests)
        self.resizes = 0

    # -- the contract --------------------------------------------------

    def push(self, item) -> None:
        t = item[0]
        self._size += 1
        if t >= _FAR_HORIZON:
            heappush(self._far, item)
            return
        y = floor(t * self._inv_w)
        cur = self._cur
        if cur is not None and y <= self._cur_year:
            # Lands in the year being drained: bisect into the sorted
            # remainder.  The cursor lower bound keeps the popped
            # (None) slots out of the comparison and pins an item for
            # the current instant to pop next, exactly like the heap.
            insort(cur, item, lo=self._cur_idx)
            if len(cur) - self._cur_idx == self._max_occ:
                self._maybe_shrink(cur[self._cur_idx :])
            return
        b = self._buckets.get(y)
        if b is None:
            self._buckets[y] = [item]
            heappush(self._years, y)
        else:
            b.append(item)
            if len(b) == self._max_occ:
                self._maybe_shrink(b)

    def pop(self):
        cur = self._cur
        if cur is None:
            if self._years:
                cur = self._open_next()
            elif self._far:
                self._size -= 1
                return heappop(self._far)
            else:
                raise IndexError("pop from an empty scheduler")
        i = self._cur_idx
        item = cur[i]
        far = self._far
        if far and far[0] < item:
            self._size -= 1
            return heappop(far)
        cur[i] = None  # drop the ref: timeout recycling counts holders
        i += 1
        if i >= len(cur):
            self._cur = None
        else:
            self._cur_idx = i
        self._size -= 1
        self._pops += 1
        return item

    def peek_time(self) -> float:
        cur = self._cur
        if cur is None:
            if self._years:
                cur = self._open_next()
            elif self._far:
                return self._far[0][0]
            else:
                return inf
        t = cur[self._cur_idx][0]
        far = self._far
        if far and far[0][0] < t:
            return far[0][0]
        return t

    def __len__(self) -> int:
        return self._size

    # -- internals -----------------------------------------------------

    def _open_next(self):
        """Promote the earliest populated year to the current run."""
        if self._pops >= self._adapt_interval:
            self._maybe_widen()
        y = heappop(self._years)
        b = self._buckets.pop(y)
        b.sort()
        self._cur = b
        self._cur_year = y
        self._cur_idx = 0
        self._years_opened += 1
        return b

    def _maybe_widen(self) -> None:
        occupancy = self._pops / max(1, self._years_opened)
        self._pops = 0
        self._years_opened = 0
        if occupancy < self._target / 4 and self._size >= 64:
            self._rebuild(self._width * self._target / max(occupancy, 0.5))

    def _maybe_shrink(self, items) -> None:
        """A bucket crossed ``max_occupancy``: shrink the width so its
        *span* re-buckets near the target occupancy.  A same-instant
        flood (a fleet's worth of inits at t=0) has zero span — no
        width can split it, so it stays one bucket and one C sort
        handles it; shrinking blindly by count used to drive the width
        to zero chasing it."""
        lo = hi = items[0][0]
        for item in items:
            t = item[0]
            if t < lo:
                lo = t
            elif t > hi:
                hi = t
        span = hi - lo
        if span <= 0.0:
            return
        width = span * self._target / len(items)
        if width < self._width:
            self._rebuild(width)

    def _rebuild(self, width: float) -> None:
        """Re-bucket every pending item under a new width (far heap and
        total size are untouched)."""
        if not isfinite(width) or width <= 0.0 or not isfinite(1.0 / width):
            return
        items = []
        cur = self._cur
        if cur is not None:
            items.extend(cur[self._cur_idx :])
        for b in self._buckets.values():
            items.extend(b)
        self._width = width
        inv_w = self._inv_w = 1.0 / width
        self._buckets = buckets = {}
        self._years = years = []
        self._cur = None
        self._cur_year = None
        self._cur_idx = 0
        self.resizes += 1
        for item in items:
            y = floor(item[0] * inv_w)
            b = buckets.get(y)
            if b is None:
                buckets[y] = [item]
                heappush(years, y)
            else:
                b.append(item)


#: registered backend names -> constructors
BACKENDS = {
    "heap": HeapScheduler,
    "calendar": CalendarScheduler,
}


def available_backends() -> tuple:
    """Backend names, reference first — what harnesses iterate over."""
    return tuple(BACKENDS)


def make_scheduler(spec=None):
    """Resolve a scheduler: an instance passes through, a name
    constructs, ``None`` consults :data:`ENV_VAR` then
    :data:`DEFAULT_BACKEND`."""
    if spec is None:
        spec = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if not isinstance(spec, str):
        missing = [m for m in ("push", "pop", "peek_time", "__len__") if not hasattr(spec, m)]
        if missing:
            raise SimulationError(
                f"scheduler {spec!r} does not implement the backend contract (missing {missing})"
            )
        return spec
    try:
        return BACKENDS[spec]()
    except KeyError:
        raise SimulationError(
            f"unknown scheduler backend {spec!r} (available: {sorted(BACKENDS)})"
        ) from None
