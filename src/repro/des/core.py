"""Core of the discrete-event kernel: events, processes, the environment.

Design notes
------------
* An :class:`Event` has three phases: *pending* (created), *triggered*
  (given a value/exception and queued), *processed* (callbacks ran).
* A :class:`Process` wraps a generator.  The generator yields events; when
  a yielded event is processed the process resumes with the event's value,
  or has the event's exception thrown into it.
* Time only advances in :meth:`Environment.run`; scheduling is a priority
  queue keyed by ``(time, priority, sequence)`` so same-time events fire in
  FIFO order — this determinism is load-bearing for tests.  The queue
  itself is pluggable (:mod:`repro.des.sched`): a calendar-queue backend
  for O(1) amortized scheduling at depth, with the PR-4 binary heap kept
  as the reference backend; both pop in bit-identical order.
* Failed events must be consumed.  If a failed event is processed and no
  waiter "defused" it, the exception propagates out of ``run()`` — silent
  failure of a simulated component would otherwise be invisible.

Hot-path notes (the fleet pushes millions of events through this file)
----------------------------------------------------------------------
* Every event class carries ``__slots__``: the kernel allocates one event
  per timeout/park/resume, and instance dicts double both the allocation
  cost and the memory traffic.
* :meth:`Environment.timeout` recycles retired :class:`Timeout` objects
  through a small free pool.  The dominant pattern — a process yields a
  bare timeout and is resumed by it — leaves the event unreachable the
  moment the process resumes, so :meth:`Environment.step` returns it to
  the pool instead of the garbage collector.  Only timeouts whose single
  callback was a process resume are recycled; anything a condition, a
  delivery lambda, or user code might still hold is left alone.
* :meth:`Process.interrupt` does not remove the stale resume callback
  from the abandoned target (an O(n) ``list.remove``); it clears the
  process's ``_target`` and :meth:`Process._resume` drops events that are
  no longer the current target (tombstoning).
* ``_pending_failures`` is a deque: failures surface FIFO via
  ``popleft`` instead of ``list.pop(0)``.
"""

from __future__ import annotations

from collections import deque
from sys import getrefcount
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

from repro.des.sched import make_scheduler
from repro.errors import SimulationError

_PENDING = object()

#: Priority for events that must fire before normal ones at the same time
#: (process initialization, interrupts).
URGENT = 0
NORMAL = 1

#: Upper bound on the recycled-timeout pool; beyond this, retired
#: timeouts go to the garbage collector like any other object.
_TIMEOUT_POOL_MAX = 4096


class Event:
    """An occurrence at a point in virtual time, with callbacks.

    Callbacks are functions ``cb(event)``; they run when the environment
    processes the event.  After processing, ``callbacks`` is ``None`` and
    further ``succeed``/``fail`` calls are errors.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: set when a waiter took responsibility for a failure
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._enqueue(self, NORMAL)
        return self

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("processed" if self.processed else "triggered")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that triggers ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, NORMAL, delay)


class Initialize(Event):
    """Urgent event used internally to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._cb)
        process._target = self
        env._enqueue(self, URGENT)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _InterruptEvent(Event):
    """Urgent failed event carrying an Interrupt into the target process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self.defused = True
        self.callbacks.append(process._cb)
        env._enqueue(self, URGENT)


class Process(Event):
    """A running generator; also an event that triggers when it finishes.

    The process event succeeds with the generator's return value, or fails
    with its uncaught exception (which propagates out of ``run()`` unless
    some other process is waiting on it).
    """

    __slots__ = ("_generator", "_target", "_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target {generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        #: the bound resume callback, created once instead of per park
        self._cb = self._resume
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The abandoned target keeps its (now stale) resume callback — a
        tombstone — which :meth:`_resume` ignores because the event is no
        longer the process's ``_target``.  This avoids the O(n)
        ``callbacks.remove`` a busy event would otherwise pay.
        """
        if self._value is not _PENDING:
            raise SimulationError("cannot interrupt a finished process")
        self._target = None
        _InterruptEvent(self.env, self, cause)

    def _resume(self, event: Event) -> None:
        # Tombstone check: an event that is no longer the park target was
        # abandoned by interrupt(); drop its callback silently.  Interrupt
        # events themselves always land (several may be in flight).
        if event is not self._target and type(event) is not _InterruptEvent:
            return
        self._target = None
        env = self.env
        env._active_process = self
        gen = self._generator
        send = gen.send
        throw = gen.throw
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    # The waiter (this process) takes responsibility.
                    event.defused = True
                    next_event = throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                err = SimulationError(
                    f"process yielded non-event {next_event!r}; yield "
                    "env.timeout(...), store.get(), or another event"
                )
                self.fail(err)
                return

            if next_event.callbacks is not None:
                # Not yet processed: park until it is.
                next_event.callbacks.append(self._cb)
                self._target = next_event
                break
            # Already processed: consume its value immediately and keep
            # driving the generator without returning to the scheduler.
            event = next_event

        env._active_process = None


#: ``Process._resume`` unbound, used by the recycler to recognise
#: retire-on-resume timeouts without touching attribute machinery.
_PROCESS_RESUME = Process._resume


class Condition(Event):
    """Composite event over several sub-events (base for AnyOf/AllOf).

    Succeeds with an ordered dict ``{event: value}`` of the sub-events that
    had triggered OK by the time the condition was decided.  If any
    sub-event fails before the condition is decided, the condition fails
    with that exception.
    """

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _evaluate(self, n_triggered: int) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            if not event._ok and not event.defused:
                # Condition already decided; don't swallow the failure.
                event.defused = True
                self.env._pending_failures.append(event._value)
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only events that have actually been *processed* count; a Timeout
        # carries its value from creation, so `triggered` would wrongly
        # include timers that have not fired yet.
        return {ev: ev._value for ev in self.events if ev.callbacks is None and ev._ok}


class AnyOf(Condition):
    """Triggers as soon as one sub-event triggers (the VISIT timeout race)."""

    __slots__ = ()

    def _evaluate(self, n_triggered: int) -> bool:
        return n_triggered >= 1


class AllOf(Condition):
    """Triggers once every sub-event has triggered."""

    __slots__ = ()

    def _evaluate(self, n_triggered: int) -> bool:
        return n_triggered >= len(self.events)


class Environment:
    """Owner of virtual time and the event queue."""

    def __init__(self, initial_time: float = 0.0, scheduler=None) -> None:
        self.now = float(initial_time)
        #: pluggable event queue (:mod:`repro.des.sched`): ``scheduler``
        #: may be a backend name, an instance, or None (consult the
        #: ``REPRO_DES_SCHEDULER`` env var, then the default backend).
        #: ``push``/``pop`` are bound once — the hot paths below go
        #: through these attributes, never through a lookup per event.
        self._sched = make_scheduler(scheduler)
        self._push = self._sched.push
        self._pop = self._sched.pop
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._pending_failures: deque[BaseException] = deque()
        #: retired Timeout objects awaiting reuse (see module docstring)
        self._timeout_pool: list[Timeout] = []
        #: total events processed since construction (profiling/benching)
        self.events_processed = 0
        #: optional :class:`repro.perf.Profiler` receiving step timings
        self._profiler = None
        #: optional zero-arg pacing hook fired whenever an event is
        #: scheduled through :meth:`_enqueue` — process initialization,
        #: ``succeed``/``fail`` and plain :class:`Timeout` construction,
        #: i.e. every path external code (an HTTP handler between run
        #: slices) uses to inject work.  A paced wall-clock driver
        #: (:mod:`repro.live.pacing`) installs its waker here so a sleep
        #: until the *previous* next-event time is cut short when new,
        #: earlier work arrives.  The recycled-timeout fast paths
        #: (:meth:`timeout` / :meth:`timeout_until`) deliberately skip
        #: the hook: they are only reachable from processes already
        #: running inside ``step()``, while the pacer is awake.
        self.on_schedule: Optional[Callable[[], None]] = None

    # -- scheduling ----------------------------------------------------

    def _enqueue(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        self._push((self.now + delay, priority, self._seq, event))
        if self.on_schedule is not None:
            self.on_schedule()

    # -- event factories -----------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def _fresh_timeout(self, value: Any) -> Timeout:
        """An unscheduled Timeout from the recycle pool (or a new one)."""
        pool = self._timeout_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._value = value
            ev.defused = False
        else:
            ev = Timeout.__new__(Timeout)
            ev.env = self
            ev.callbacks = []
            ev._value = value
            ev._ok = True
            ev.defused = False
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """A timeout ``delay`` from now, drawn from the recycle pool."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        ev = self._fresh_timeout(value)
        ev.delay = delay
        self._seq += 1
        self._push((self.now + delay, NORMAL, self._seq, ev))
        return ev

    def timeout_until(self, at: float, value: Any = None) -> Timeout:
        """A timeout at *absolute* virtual time ``at`` (>= now).

        ``timeout(at - now)`` schedules at ``now + (at - now)``, which is
        not always float-identical to ``at``; processes replaying a
        skipped poll grid (see the service pumps) need the exact heap key.
        """
        if at < self.now:
            raise SimulationError(f"timeout_until({at}) is in the past (now={self.now})")
        ev = self._fresh_timeout(value)
        ev.delay = at - self.now
        self._seq += 1
        self._push((at, NORMAL, self._seq, ev))
        return ev

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution -------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._sched.peek_time()

    @property
    def pending(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._sched)

    def step(self) -> None:
        """Process exactly one event."""
        try:
            time, _prio, _seq, event = self._pop()
        except IndexError:
            raise SimulationError("step() on an empty schedule") from None
        if time < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = time
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        self._finish_step(event, callbacks)

    def _finish_step(self, event: Event, callbacks: list) -> None:
        """Post-callback tail shared by the step variants: accounting,
        failure surfacing, and timeout recycling."""
        self.events_processed += 1
        if not event._ok and not event.defused:
            raise event._value
        pending = self._pending_failures
        if pending:
            raise pending.popleft()
        # Recycle the dominant delay-then-resume pattern: a timeout whose
        # only watcher was a process resume is unreachable once that
        # process moved on, so hand it back to the pool.
        if (
            type(event) is Timeout
            and len(callbacks) == 1
            and getattr(callbacks[0], "__func__", None) is _PROCESS_RESUME
            and getrefcount(event) == 3
        ):
            # The refcount guard (3 = step's local + this frame's
            # argument + getrefcount's argument) proves nothing else — a
            # generator frame, a condition, user code — still holds the
            # object, so a held timeout keeps its documented
            # post-processing Event API instead of being reused under
            # the holder's feet.
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_MAX:
                pool.append(event)

    def _step_profiled(self) -> None:
        """Like :meth:`step`, with per-callback time attribution.

        Kept separate so the unprofiled hot loop pays nothing for the
        instrumentation.  Tolerates the profiler being detached mid-run:
        remaining steps simply stop recording.
        """
        try:
            time, _prio, _seq, event = self._pop()
        except IndexError:
            raise SimulationError("step() on an empty schedule") from None
        if time < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = time
        callbacks = event.callbacks
        event.callbacks = None
        prof = self._profiler
        if prof is None:
            for cb in callbacks:
                cb(event)
        else:
            for cb in callbacks:
                t0 = perf_counter()
                cb(event)
                prof._record(cb, event, perf_counter() - t0)
        self._finish_step(event, callbacks)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the schedule drains, a deadline, or an event triggers.

        ``until`` may be:
          * ``None`` — run until no events remain;
          * a number — run until virtual time reaches it;
          * an :class:`Event` — run until it triggers, returning its value.
        """
        step = self.step if self._profiler is None else self._step_profiled
        if isinstance(until, Event):
            stop = until
            sched = self._sched
            while stop._value is _PENDING:
                if not len(sched):
                    raise SimulationError("schedule drained before the awaited event triggered")
                step()
            if not stop._ok:
                stop.defused = True
                raise stop._value
            return stop._value

        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self.now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self.now})")
        heap = getattr(self._sched, "raw_heap", None)
        if heap is not None:
            # Reference backend: keep the PR-4 inline drain loop — no
            # method call per event on the hottest loop in the repo.
            while heap and heap[0][0] <= deadline:
                step()
        else:
            peek = self._sched.peek_time
            sched_len = self._sched.__len__
            if deadline == float("inf"):
                while sched_len():
                    step()
            else:
                while peek() <= deadline:
                    step()
        if deadline != float("inf"):
            self.now = deadline
        return None

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process
