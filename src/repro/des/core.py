"""Core of the discrete-event kernel: events, processes, the environment.

Design notes
------------
* An :class:`Event` has three phases: *pending* (created), *triggered*
  (given a value/exception and queued), *processed* (callbacks ran).
* A :class:`Process` wraps a generator.  The generator yields events; when
  a yielded event is processed the process resumes with the event's value,
  or has the event's exception thrown into it.
* Time only advances in :meth:`Environment.run`; scheduling is a binary
  heap keyed by ``(time, priority, sequence)`` so same-time events fire in
  FIFO order — this determinism is load-bearing for tests.
* Failed events must be consumed.  If a failed event is processed and no
  waiter "defused" it, the exception propagates out of ``run()`` — silent
  failure of a simulated component would otherwise be invisible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

_PENDING = object()

#: Priority for events that must fire before normal ones at the same time
#: (process initialization, interrupts).
URGENT = 0
NORMAL = 1


class Event:
    """An occurrence at a point in virtual time, with callbacks.

    Callbacks are functions ``cb(event)``; they run when the environment
    processes the event.  After processing, ``callbacks`` is ``None`` and
    further ``succeed``/``fail`` calls are errors.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: set when a waiter took responsibility for a failure
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._enqueue(self, NORMAL)
        return self

    def __repr__(self) -> str:
        state = (
            "pending"
            if not self.triggered
            else ("processed" if self.processed else "triggered")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that triggers ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, NORMAL, delay)


class Initialize(Event):
    """Urgent event used internally to start a freshly created process."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env._enqueue(self, URGENT)


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _InterruptEvent(Event):
    """Urgent failed event carrying an Interrupt into the target process."""

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self.defused = True
        self.callbacks.append(process._resume)
        env._enqueue(self, URGENT)


class Process(Event):
    """A running generator; also an event that triggers when it finishes.

    The process event succeeds with the generator's return value, or fails
    with its uncaught exception (which propagates out of ``run()`` unless
    some other process is waiting on it).
    """

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process target {generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        _InterruptEvent(self.env, self, cause)

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The waiter (this process) takes responsibility.
                    event.defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.env._active_process = None
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                self.env._active_process = None
                err = SimulationError(
                    f"process yielded non-event {next_event!r}; yield "
                    "env.timeout(...), store.get(), or another event"
                )
                self.fail(err)
                return

            if next_event.callbacks is not None:
                # Not yet processed: park until it is.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Already processed: consume its value immediately and keep
            # driving the generator without returning to the scheduler.
            event = next_event

        self.env._active_process = None


class Condition(Event):
    """Composite event over several sub-events (base for AnyOf/AllOf).

    Succeeds with an ordered dict ``{event: value}`` of the sub-events that
    had triggered OK by the time the condition was decided.  If any
    sub-event fails before the condition is decided, the condition fails
    with that exception.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("condition mixes events from different environments")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _evaluate(self, n_triggered: int) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok and not event.defused:
                # Condition already decided; don't swallow the failure.
                event.defused = True
                self.env._pending_failures.append(event._value)
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only events that have actually been *processed* count; a Timeout
        # carries its value from creation, so `triggered` would wrongly
        # include timers that have not fired yet.
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}


class AnyOf(Condition):
    """Triggers as soon as one sub-event triggers (the VISIT timeout race)."""

    def _evaluate(self, n_triggered: int) -> bool:
        return n_triggered >= 1


class AllOf(Condition):
    """Triggers once every sub-event has triggered."""

    def _evaluate(self, n_triggered: int) -> bool:
        return n_triggered >= len(self.events)


class Environment:
    """Owner of virtual time and the event queue."""

    def __init__(self, initial_time: float = 0.0) -> None:
        self.now = float(initial_time)
        self._heap: list = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._pending_failures: list[BaseException] = []

    # -- scheduling ----------------------------------------------------

    def _enqueue(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))

    # -- event factories -----------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- execution -------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        time, _prio, _seq, event = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = time
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event.defused:
            raise event._value
        if self._pending_failures:
            exc = self._pending_failures.pop(0)
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the schedule drains, a deadline, or an event triggers.

        ``until`` may be:
          * ``None`` — run until no events remain;
          * a number — run until virtual time reaches it;
          * an :class:`Event` — run until it triggers, returning its value.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.triggered:
                if not self._heap:
                    raise SimulationError(
                        "schedule drained before the awaited event triggered"
                    )
                self.step()
            if not stop._ok:
                stop.defused = True
                raise stop._value
            return stop._value

        deadline = float("inf") if until is None else float(until)
        if deadline != float("inf") and deadline < self.now:
            raise SimulationError(f"run(until={deadline}) is in the past (now={self.now})")
        while self._heap and self._heap[0][0] <= deadline:
            self.step()
        if deadline != float("inf"):
            self.now = deadline
        return None

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process
