"""Shared data spaces: per-host object stores with unique names.

"The underlying data management takes care of assigning system-wide
unique names to data generated during a session in the shared data
spaces: the shared data space (SDS) is used on a single host for the
exchange of data objects between the locally running modules to minimize
copying overhead" (section 4.5).  Locality is the point: handing an
object to another module on the same host is free; crossing hosts goes
through the request broker.
"""

from __future__ import annotations


from repro.covise.dataobj import DataObject
from repro.errors import CoviseError
from repro.util.ids import IdAllocator


class SharedDataSpace:
    """One host's object store."""

    def __init__(self, host_name: str) -> None:
        self.host_name = host_name
        self._objects: dict[str, DataObject] = {}
        self._names = IdAllocator(f"{host_name}-obj")
        self.bytes_stored = 0

    def unique_name(self, stem: str) -> str:
        """System-wide unique name: host-scoped allocator + stem."""
        return f"{self._names.next()}-{stem}"

    def put(self, obj: DataObject, creator: str = "") -> str:
        if obj.name in self._objects:
            raise CoviseError(
                f"object name {obj.name!r} already exists in SDS of "
                f"{self.host_name} (names must be unique)"
            )
        obj.creator = creator
        self._objects[obj.name] = obj
        self.bytes_stored += obj.nbytes
        return obj.name

    def get(self, name: str) -> DataObject:
        obj = self._objects.get(name)
        if obj is None:
            raise CoviseError(f"no object {name!r} in SDS of {self.host_name}")
        return obj

    def exists(self, name: str) -> bool:
        return name in self._objects

    def delete(self, name: str) -> None:
        obj = self._objects.pop(name, None)
        if obj is None:
            raise CoviseError(f"no object {name!r} in SDS of {self.host_name}")
        self.bytes_stored -= obj.nbytes

    def names(self) -> list[str]:
        return sorted(self._objects)

    def __len__(self) -> int:
        return len(self._objects)
