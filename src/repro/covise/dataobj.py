"""COVISE data objects.

"COVISE in contrast to other visualization systems uses the notion of
data objects instead of relying on a pure data flow paradigm...
Scientific data is handled as data objects which have attributes such as
names and lifetime.  They represent grids on which dependent data is
defined" (section 4.5).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.errors import CoviseError


class DataObject:
    """Base data object: unique name, attributes, payload size."""

    def __init__(self, name: str) -> None:
        if not name:
            raise CoviseError("data object needs a name")
        self.name = name
        self.attributes: dict[str, Any] = {}
        self.creator: str = ""

    @property
    def nbytes(self) -> int:
        return 0

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.nbytes} B)"


class UniformScalarField(DataObject):
    """A scalar field on a uniform 3D grid (temperature, order parameter)."""

    def __init__(
        self,
        name: str,
        field: np.ndarray,
        spacing: tuple = (1.0, 1.0, 1.0),
        origin: tuple = (0.0, 0.0, 0.0),
    ) -> None:
        super().__init__(name)
        field = np.asarray(field)
        if field.ndim != 3:
            raise CoviseError("UniformScalarField needs a 3D array")
        self.field = field
        self.spacing = tuple(float(s) for s in spacing)
        self.origin = tuple(float(o) for o in origin)

    @property
    def nbytes(self) -> int:
        return self.field.nbytes

    def convert(self, dtype) -> "UniformScalarField":
        """Platform/precision conversion (done by request brokers,
        invisible to modules)."""
        out = UniformScalarField(self.name, self.field.astype(dtype),
                                 self.spacing, self.origin)
        out.attributes = dict(self.attributes)
        return out


class ScalarField2D(DataObject):
    """A 2D scalar patch (a cutting-plane result)."""

    def __init__(self, name: str, values: np.ndarray,
                 coords: Optional[np.ndarray] = None) -> None:
        super().__init__(name)
        values = np.asarray(values)
        if values.ndim != 2:
            raise CoviseError("ScalarField2D needs a 2D array")
        self.values = values
        self.coords = coords

    @property
    def nbytes(self) -> int:
        total = self.values.nbytes
        if self.coords is not None:
            total += self.coords.nbytes
        return total


class PolygonData(DataObject):
    """Triangle mesh (isosurface output, building geometry)."""

    def __init__(self, name: str, vertices: np.ndarray, faces: np.ndarray) -> None:
        super().__init__(name)
        self.vertices = np.asarray(vertices, dtype=np.float64)
        self.faces = np.asarray(faces, dtype=np.intp)
        if self.vertices.ndim != 2 or self.vertices.shape[1] != 3:
            raise CoviseError("vertices must be (N, 3)")
        if self.faces.ndim != 2 or self.faces.shape[1] != 3:
            raise CoviseError("faces must be (K, 3)")

    @property
    def nbytes(self) -> int:
        return self.vertices.nbytes + self.faces.nbytes


class ImageData(DataObject):
    """A rendered RGB image (the end of a pipeline)."""

    def __init__(self, name: str, pixels: np.ndarray) -> None:
        super().__init__(name)
        pixels = np.asarray(pixels, dtype=np.uint8)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise CoviseError("pixels must be (H, W, 3)")
        self.pixels = pixels

    @property
    def nbytes(self) -> int:
        return self.pixels.nbytes
