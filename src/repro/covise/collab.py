"""Collaborative COVISE sessions: parameter-sync vs content-streaming.

Section 4.5: "In a collaborative session all partners see the same screen
representations at the same time on their local workstation."  Section
4.3 explains *how* that is affordable: "such scene update rates are only
possible if the generation of the new content is done locally and only
synchronisation information such as the parameter set for the cutting
plane determination is exchanged"; section 4.6 adds that this "allows a
much better scaling in the handling of large volumes of scene content".

:class:`CollaborativeCovise` replicates one map on every site and
implements both strategies so the S43/FIG4 benches can measure the
trade-off:

* ``parameter`` — the master broadcasts the changed parameter (a few
  hundred bytes); every site re-executes its local pipeline;
* ``content`` — the master re-executes once and streams the resulting
  data object to every site.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.covise.dataobj import ImageData, PolygonData, ScalarField2D
from repro.covise.mapeditor import MapEditor
from repro.errors import CoviseError

#: wire size of one parameter-change message
PARAM_MSG_BYTES = 256


def _content_digest(obj) -> str:
    h = hashlib.sha1()
    if isinstance(obj, ScalarField2D):
        h.update(obj.values.tobytes())
    elif isinstance(obj, ImageData):
        h.update(obj.pixels.tobytes())
    elif isinstance(obj, PolygonData):
        h.update(obj.vertices.tobytes())
        h.update(obj.faces.tobytes())
    else:
        raise CoviseError(f"cannot digest {type(obj).__name__}")
    return h.hexdigest()


@dataclass
class SiteState:
    name: str
    host: str
    editor: MapEditor
    updates_done: int = 0
    last_done_at: float = 0.0
    last_digest: str = ""
    bytes_received: int = 0


class CollaborativeCovise:
    """One shared map replicated across N sites."""

    def __init__(
        self,
        network,
        map_spec: list[dict],
        sites: dict[str, str],
        sources: dict[str, dict[str, Callable]],
        watch: tuple[str, str] = ("cut", "plane"),
        master: str | None = None,
    ) -> None:
        if not sites:
            raise CoviseError("need at least one site")
        self.network = network
        self.watch = watch
        self.sites: dict[str, SiteState] = {}
        for name, host in sites.items():
            editor = MapEditor.replicate(
                network, map_spec, host, sources.get(name, {})
            )
            self.sites[name] = SiteState(name, host, editor)
        self.master = master or next(iter(self.sites))
        if self.master not in self.sites:
            raise CoviseError(f"master {self.master!r} is not a site")

    # -- execution ---------------------------------------------------------------

    def _site_execute(self, site: SiteState):
        env = self.network.env
        yield from site.editor.controller.execute()
        obj = site.editor.controller.output_object(*self.watch)
        site.last_digest = _content_digest(obj)
        site.last_done_at = env.now
        site.updates_done += 1

    def execute_all(self):
        """Generator: run every site's pipeline concurrently; resolves to
        the per-site completion times."""
        env = self.network.env
        procs = [
            env.process(self._site_execute(site)) for site in self.sites.values()
        ]
        yield env.all_of(procs)
        return {s.name: s.last_done_at for s in self.sites.values()}

    # -- the two synchronization strategies -------------------------------------------

    def change_parameter(self, module: str, key: str, value: Any,
                         mode: str = "parameter"):
        """Generator: apply one exploration step session-wide.

        Resolves to a report: per-site completion times, skew (the
        "multiple frames difference ... might lead to misunderstanding"
        quantity of section 4.2), and WAN bytes spent.
        """
        if mode == "parameter":
            result = yield from self._change_parameter_sync(module, key, value)
        elif mode == "content":
            result = yield from self._change_content_stream(module, key, value)
        else:
            raise CoviseError(f"mode must be parameter/content, got {mode!r}")
        done = {s.name: s.last_done_at for s in self.sites.values()}
        times = list(done.values())
        result.update(
            {
                "per_site_done": done,
                "skew": max(times) - min(times),
                "digests_agree": len({s.last_digest for s in self.sites.values()})
                == 1,
            }
        )
        return result

    def _change_parameter_sync(self, module: str, key: str, value: Any):
        env = self.network.env
        master = self.sites[self.master]
        wan_bytes = 0
        procs = []
        for site in self.sites.values():
            if site.name == self.master:
                delay = 0.0
            else:
                link = self.network.link(master.host, site.host)
                deliver_at = link.reserve(PARAM_MSG_BYTES, env.now)
                delay = max(0.0, deliver_at - env.now)
                wan_bytes += PARAM_MSG_BYTES
                site.bytes_received += PARAM_MSG_BYTES
            procs.append(env.process(self._apply_and_run(site, module, key,
                                                         value, delay)))
        yield env.all_of(procs)
        return {"mode": "parameter", "wan_bytes": wan_bytes}

    def _apply_and_run(self, site: SiteState, module: str, key: str,
                       value: Any, delay: float):
        env = self.network.env
        if delay > 0:
            yield env.timeout(delay)
        site.editor.controller._module(module).set_param(key, value)
        yield from self._site_execute(site)

    def _change_content_stream(self, module: str, key: str, value: Any):
        env = self.network.env
        master = self.sites[self.master]
        master.editor.controller._module(module).set_param(key, value)
        yield from self._site_execute(master)
        obj = master.editor.controller.output_object(*self.watch)
        wan_bytes = 0
        procs = []
        # The master has ONE uplink: per-receiver copies serialize on it
        # before each propagates over its own path.  This is exactly why
        # content streaming "does degrade with the volume of displayed
        # geometric data" while parameter sync does not (section 4.6).
        send_free = env.now
        for site in self.sites.values():
            if site.name == self.master:
                continue
            link = self.network.link(master.host, site.host)
            serialize = obj.nbytes / link.bandwidth
            send_free = max(send_free, env.now) + serialize
            link.bytes_carried += obj.nbytes
            link.transfers += 1
            deliver_at = send_free + link.latency
            wan_bytes += obj.nbytes
            site.bytes_received += obj.nbytes
            procs.append(
                env.process(
                    self._display_content(site, obj,
                                          max(0.0, deliver_at - env.now))
                )
            )
        if procs:
            yield env.all_of(procs)
        return {"mode": "content", "wan_bytes": wan_bytes}

    def _display_content(self, site: SiteState, obj, delay: float):
        env = self.network.env
        yield env.timeout(delay)
        yield env.timeout(0.002)  # local display update
        site.last_digest = _content_digest(obj)
        site.last_done_at = env.now
        site.updates_done += 1
