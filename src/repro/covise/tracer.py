"""Particle tracer: streamlines through a vector field.

The COVISE application categories (section 4.5) come from CFD
post-processing with the aeronautics/automotive industry; the tracer —
streamlines seeded into the flow — is the classic exploration tool, and
for the Car-Show building demo it shows where the ventilation actually
carries the air.

Integration: :class:`VectorField3D` is the data object,
:class:`TracerModule` the pipeline module; streamlines come out as a
:class:`~repro.covise.dataobj.DataObject` holding polyline vertices ready
for the renderer's line path.
"""

from __future__ import annotations

import numpy as np

from repro.covise.dataobj import DataObject
from repro.covise.modules import Module, PipelineError
from repro.errors import CoviseError
from repro.viz.cutplane import trilinear_sample


class VectorField3D(DataObject):
    """A 3-component vector field on a uniform grid: ``field`` is
    ``(3, X, Y, Z)``."""

    def __init__(self, name: str, field: np.ndarray) -> None:
        super().__init__(name)
        field = np.asarray(field, dtype=np.float64)
        if field.ndim != 4 or field.shape[0] != 3:
            raise CoviseError("VectorField3D needs a (3, X, Y, Z) array")
        self.field = field

    @property
    def nbytes(self) -> int:
        return self.field.nbytes

    @property
    def grid_shape(self) -> tuple:
        return self.field.shape[1:]


class LinesData(DataObject):
    """Polylines: ``points (N, 3)`` + ``offsets`` delimiting each line."""

    def __init__(self, name: str, points: np.ndarray, offsets: np.ndarray) -> None:
        super().__init__(name)
        self.points = np.asarray(points, dtype=np.float64)
        self.offsets = np.asarray(offsets, dtype=np.intp)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise CoviseError("points must be (N, 3)")
        if len(self.offsets) < 2 or self.offsets[0] != 0 or \
                self.offsets[-1] != len(self.points):
            raise CoviseError("offsets must start at 0 and end at len(points)")

    @property
    def nbytes(self) -> int:
        return self.points.nbytes + self.offsets.nbytes

    @property
    def n_lines(self) -> int:
        return len(self.offsets) - 1

    def line(self, i: int) -> np.ndarray:
        if not 0 <= i < self.n_lines:
            raise CoviseError(f"no line {i}")
        return self.points[self.offsets[i]: self.offsets[i + 1]]


def trace_streamlines(
    field: np.ndarray,
    seeds: np.ndarray,
    step: float = 0.5,
    max_steps: int = 200,
    min_speed: float = 1e-6,
) -> tuple[np.ndarray, np.ndarray]:
    """RK2 (midpoint) streamline integration in grid-index space.

    ``field`` is ``(3, X, Y, Z)``; ``seeds`` is ``(S, 3)`` in index
    coordinates.  Lines stop on leaving the grid, after ``max_steps``, or
    in stagnant flow.  All seeds advance together (vectorized); finished
    lines are masked out.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 4 or field.shape[0] != 3:
        raise CoviseError("field must be (3, X, Y, Z)")
    seeds = np.atleast_2d(np.asarray(seeds, dtype=np.float64))
    shape = np.array(field.shape[1:], dtype=np.float64)
    n = len(seeds)
    alive = np.ones(n, dtype=bool)
    pos = seeds.copy()
    trails: list[list[np.ndarray]] = [[seeds[i].copy()] for i in range(n)]

    def velocity(points: np.ndarray) -> np.ndarray:
        out = np.empty_like(points)
        for a in range(3):
            out[:, a] = trilinear_sample(field[a], points)
        return out

    for _ in range(max_steps):
        if not alive.any():
            break
        v1 = velocity(pos)
        speed = np.linalg.norm(v1, axis=1)
        stagnant = speed < min_speed
        alive &= ~stagnant
        if not alive.any():
            break
        mid = pos + 0.5 * step * v1
        v2 = velocity(mid)
        new_pos = pos + step * v2
        inside = np.all((new_pos >= 0.0) & (new_pos <= shape - 1.0), axis=1)
        for i in np.flatnonzero(alive & inside):
            trails[i].append(new_pos[i].copy())
        alive &= inside
        pos = np.where(alive[:, None], new_pos, pos)

    points = []
    offsets = [0]
    for trail in trails:
        points.extend(trail)
        offsets.append(offsets[-1] + len(trail))
    return np.asarray(points), np.asarray(offsets, dtype=np.intp)


class TracerModule(Module):
    """COVISE module wrapping :func:`trace_streamlines`."""

    INPUT_PORTS = ("velocity",)
    OUTPUT_PORTS = ("lines",)
    PARAMS = {"seeds": None, "step": 0.5, "max_steps": 200}

    def run(self, inputs, sds):
        vel = inputs["velocity"]
        if not isinstance(vel, VectorField3D):
            raise PipelineError(f"{self.name!r}: input must be a VectorField3D")
        seeds = self.params["seeds"]
        if seeds is None:
            # Default: a seed rake across the inlet face.
            _, ny, nz = vel.grid_shape
            ys = np.linspace(1, ny - 2, 4)
            zs = np.linspace(1, nz - 2, 3)
            gy, gz = np.meshgrid(ys, zs, indexing="ij")
            seeds = np.stack(
                [np.ones(gy.size), gy.ravel(), gz.ravel()], axis=1
            )
        points, offsets = trace_streamlines(
            vel.field, np.asarray(seeds, dtype=np.float64),
            step=float(self.params["step"]),
            max_steps=int(self.params["max_steps"]),
        )
        return {"lines": LinesData(sds.unique_name("streamlines"),
                                   points, offsets)}

    def cost(self, inputs) -> float:
        return 0.004 + int(self.params["max_steps"]) * 2e-5
