"""Standard COVISE modules: the application categories of section 4.5.

ReadSim -> (CuttingPlane | IsoSurface) -> Colors -> Collect -> Renderer —
the classic simulation post-processing chain, with compute costs that
scale with data volume so the feedback-loop benches see realistic
pipelines.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.covise.dataobj import (
    DataObject,
    ImageData,
    PolygonData,
    ScalarField2D,
    UniformScalarField,
)
from repro.covise.modules import Module, PipelineError
from repro.viz import Camera, Renderer, cut_plane, isosurface


class ReadSim(Module):
    """Source module: pulls the newest field from a simulation callback.

    ``source`` is a callable returning a 3D ndarray (e.g. the steered
    simulation's latest sample); COVISE "integrat[es] simulation and
    visualization into one homogeneous environment" (section 4.5).
    """

    OUTPUT_PORTS = ("field",)
    PARAMS = {"spacing": (1.0, 1.0, 1.0)}

    def __init__(self, name: str, source: Callable[[], np.ndarray]) -> None:
        super().__init__(name)
        self.source = source

    def run(self, inputs, sds):
        field = np.asarray(self.source())
        if field.ndim != 3:
            raise PipelineError(f"{self.name!r}: source must yield a 3D field")
        obj = UniformScalarField(
            sds.unique_name("field"), field, spacing=self.params["spacing"]
        )
        return {"field": obj}

    def cost(self, inputs) -> float:
        return 0.002


class CuttingPlaneModule(Module):
    """Extracts a plane; the section 4.3 exploration tool."""

    INPUT_PORTS = ("field",)
    OUTPUT_PORTS = ("plane",)
    PARAMS = {"point": (0.0, 0.0, 0.0), "normal": (0.0, 0.0, 1.0),
              "resolution": 48}

    def run(self, inputs, sds):
        field_obj = inputs["field"]
        if not isinstance(field_obj, UniformScalarField):
            raise PipelineError(f"{self.name!r}: input must be a scalar field")
        coords, values = cut_plane(
            field_obj.field.astype(np.float64),
            point=np.asarray(self.params["point"], dtype=np.float64),
            normal=np.asarray(self.params["normal"], dtype=np.float64),
            resolution=int(self.params["resolution"]),
        )
        obj = ScalarField2D(sds.unique_name("plane"), values, coords=coords)
        obj.set_attribute("point", tuple(self.params["point"]))
        obj.set_attribute("normal", tuple(self.params["normal"]))
        return {"plane": obj}

    def cost(self, inputs) -> float:
        res = int(self.params["resolution"])
        return 0.002 + res * res * 3e-7


class IsoSurfaceModule(Module):
    INPUT_PORTS = ("field",)
    OUTPUT_PORTS = ("surface",)
    PARAMS = {"level": 0.0}

    def run(self, inputs, sds):
        field_obj = inputs["field"]
        if not isinstance(field_obj, UniformScalarField):
            raise PipelineError(f"{self.name!r}: input must be a scalar field")
        verts, faces = isosurface(
            field_obj.field.astype(np.float64),
            level=float(self.params["level"]),
            spacing=field_obj.spacing,
            origin=field_obj.origin,
        )
        return {"surface": PolygonData(sds.unique_name("iso"), verts, faces)}

    def cost(self, inputs) -> float:
        field = inputs["field"]
        return 0.003 + field.nbytes * 5e-9


class Colors(Module):
    """Maps a 2D scalar patch to an RGB image (blue -> red ramp)."""

    INPUT_PORTS = ("plane",)
    OUTPUT_PORTS = ("image",)
    PARAMS = {"vmin": None, "vmax": None}

    def run(self, inputs, sds):
        plane = inputs["plane"]
        if not isinstance(plane, ScalarField2D):
            raise PipelineError(f"{self.name!r}: input must be a 2D field")
        v = plane.values
        vmin = self.params["vmin"] if self.params["vmin"] is not None else float(v.min())
        vmax = self.params["vmax"] if self.params["vmax"] is not None else float(v.max())
        if vmax <= vmin:
            vmax = vmin + 1.0
        t = np.clip((v - vmin) / (vmax - vmin), 0.0, 1.0)
        pixels = np.stack(
            [t * 255, 40 * np.ones_like(t), (1 - t) * 255], axis=-1
        ).astype(np.uint8)
        return {"image": ImageData(sds.unique_name("img"), pixels)}


class Collect(Module):
    """Gathers a surface + image into one renderable group object."""

    INPUT_PORTS = ("surface", "image")
    OUTPUT_PORTS = ("group",)

    def run(self, inputs, sds):
        group = DataObject(sds.unique_name("group"))
        group.set_attribute("surface", inputs["surface"].name)
        group.set_attribute("image", inputs["image"].name)
        group.parts = (inputs["surface"], inputs["image"])  # type: ignore[attr-defined]
        return {"group": group}


class RendererModule(Module):
    """The rendering step at the end of the network (local graphics!).

    Produces a framebuffer image from a polygon surface; its ``camera``
    is the per-site view state that collaborative sessions synchronize.
    """

    INPUT_PORTS = ("surface",)
    OUTPUT_PORTS = ("frame",)
    PARAMS = {"width": 160, "height": 120}

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.camera = Camera(eye=np.array([0.0, -3.0, 0.0]))
        self.frames = 0

    def run(self, inputs, sds):
        surface = inputs["surface"]
        if not isinstance(surface, PolygonData):
            raise PipelineError(f"{self.name!r}: input must be polygons")
        r = Renderer(int(self.params["width"]), int(self.params["height"]))
        r.camera = self.camera
        if len(surface.faces):
            r.draw_triangles(surface.vertices, surface.faces)
        self.frames += 1
        return {"frame": ImageData(sds.unique_name("frame"), r.fb.color)}

    def cost(self, inputs) -> float:
        surface = inputs["surface"]
        ntris = len(surface.faces) if isinstance(surface, PolygonData) else 0
        return 0.004 + ntris * 2e-6
