"""The central COVISE controller.

"Session management for adding new hosts and synchronizing the tasks in
the module network is done in a central controller which has the only
knowledge about the whole application topology" (section 4.5).

The controller places modules on hosts, wires ports, and executes the
network in dependency order.  When an edge crosses hosts, the request
broker ships the data object (costing link time); local edges hand the
object over through the shared data space for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.covise.crb import RequestBroker
from repro.covise.datamgr import SharedDataSpace
from repro.covise.modules import Module, PipelineError


@dataclass(frozen=True)
class _Edge:
    src_module: str
    src_port: str
    dst_module: str
    dst_port: str


class Controller:
    """Owns one module network (a COVISE "map")."""

    def __init__(self, network) -> None:
        self.network = network
        self._placement: dict[str, str] = {}  # module name -> host name
        self._modules: dict[str, Module] = {}
        self._edges: list[_Edge] = []
        self.spaces: dict[str, SharedDataSpace] = {}
        self.crb = RequestBroker(network, self.spaces)
        #: (module name, port) -> data object name from the last execution
        self.last_outputs: dict[tuple[str, str], str] = {}
        self.executions = 0

    # -- topology ------------------------------------------------------------

    def add_module(self, module: Module, host_name: str) -> Module:
        if module.name in self._modules:
            raise PipelineError(f"duplicate module name {module.name!r}")
        self.network.host(host_name)  # validates existence
        self._modules[module.name] = module
        self._placement[module.name] = host_name
        if host_name not in self.spaces:
            self.spaces[host_name] = SharedDataSpace(host_name)
        return module

    def connect(self, src: str, src_port: str, dst: str, dst_port: str) -> None:
        src_mod = self._module(src)
        dst_mod = self._module(dst)
        if src_port not in src_mod.OUTPUT_PORTS:
            raise PipelineError(f"{src!r} has no output port {src_port!r}")
        if dst_port not in dst_mod.INPUT_PORTS:
            raise PipelineError(f"{dst!r} has no input port {dst_port!r}")
        for e in self._edges:
            if e.dst_module == dst and e.dst_port == dst_port:
                raise PipelineError(
                    f"input port {dst}.{dst_port} is already connected"
                )
        self._edges.append(_Edge(src, src_port, dst, dst_port))

    def _module(self, name: str) -> Module:
        mod = self._modules.get(name)
        if mod is None:
            raise PipelineError(f"unknown module {name!r}")
        return mod

    def placement(self, name: str) -> str:
        self._module(name)
        return self._placement[name]

    def modules(self) -> list[str]:
        return sorted(self._modules)

    def topology_order(self) -> list[str]:
        """Dependency order of the module network."""
        deps: dict[str, set[str]] = {name: set() for name in self._modules}
        for e in self._edges:
            deps[e.dst_module].add(e.src_module)
        order: list[str] = []
        done: set[str] = set()
        while deps:
            ready = sorted(n for n, d in deps.items() if d <= done)
            if not ready:
                raise PipelineError(f"cycle among modules {sorted(deps)}")
            for n in ready:
                order.append(n)
                done.add(n)
                del deps[n]
        return order

    # -- execution -----------------------------------------------------------------

    def execute(self):
        """Generator: run the whole map once; resolves to per-module
        output object names.

        The returned dict maps ``(module, port)`` to the data object name
        in the producing host's shared data space.
        """
        env = self.network.env
        for name in self.topology_order():
            module = self._module(name)
            host_name = self._placement[name]
            sds = self.spaces[host_name]
            inputs = {}
            for e in self._edges:
                if e.dst_module != name:
                    continue
                key = (e.src_module, e.src_port)
                obj_name = self.last_outputs.get(key)
                if obj_name is None:
                    raise PipelineError(
                        f"{name!r} needs {key} but it was never produced"
                    )
                src_host = self._placement[e.src_module]
                obj = yield from self.crb.transfer(obj_name, src_host, host_name)
                inputs[e.dst_port] = obj
            yield env.timeout(module.cost(inputs))
            outputs = module.execute(inputs, sds)
            for port, obj in outputs.items():
                if not sds.exists(obj.name):
                    sds.put(obj, creator=name)
                self.last_outputs[(name, port)] = obj.name
        self.executions += 1
        return dict(self.last_outputs)

    def output_object(self, module: str, port: str):
        """The data object produced at (module, port) in the last run."""
        key = (module, port)
        obj_name = self.last_outputs.get(key)
        if obj_name is None:
            raise PipelineError(f"no output recorded for {key}")
        return self.spaces[self._placement[module]].get(obj_name)
