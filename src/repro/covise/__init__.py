"""COVISE: COllaborative VIsualization and Simulation Environment (section 4).

Reproduced architecture (section 4.5):

* **data objects** with system-wide unique names and attributes, living in
  per-host **shared data spaces** (:mod:`repro.covise.dataobj`,
  :mod:`repro.covise.datamgr`);
* **request brokers** on each participating host handling "data
  management, efficient data transfer and conversion between different
  platforms" (:mod:`repro.covise.crb`);
* **modules** ("modeled as processes") combined into module networks, the
  rendering step at the end (:mod:`repro.covise.modules`,
  :mod:`repro.covise.stdmodules`);
* a **central controller** "which has the only knowledge about the whole
  application topology" (:mod:`repro.covise.controller`);
* the **Map-editor** to build distributed applications
  (:mod:`repro.covise.mapeditor`);
* **collaborative sessions** where "all partners see the same screen
  representations at the same time", synchronized at the *parameter*
  level rather than by streaming content (:mod:`repro.covise.collab`) —
  the design consequence of the feedback-loop analysis in sections
  4.2-4.4.
"""

from repro.covise.dataobj import DataObject, PolygonData, ScalarField2D, UniformScalarField
from repro.covise.datamgr import SharedDataSpace
from repro.covise.crb import RequestBroker
from repro.covise.modules import Module, PipelineError
from repro.covise.controller import Controller
from repro.covise.mapeditor import MapEditor
from repro.covise.stdmodules import (
    Collect,
    Colors,
    CuttingPlaneModule,
    IsoSurfaceModule,
    ReadSim,
    RendererModule,
)
from repro.covise.collab import CollaborativeCovise
from repro.covise.tracer import LinesData, TracerModule, VectorField3D

__all__ = [
    "DataObject",
    "UniformScalarField",
    "ScalarField2D",
    "PolygonData",
    "SharedDataSpace",
    "RequestBroker",
    "Module",
    "PipelineError",
    "Controller",
    "MapEditor",
    "ReadSim",
    "CuttingPlaneModule",
    "IsoSurfaceModule",
    "Colors",
    "Collect",
    "RendererModule",
    "CollaborativeCovise",
    "TracerModule",
    "VectorField3D",
    "LinesData",
]
