"""Request brokers: inter-host data transfer with platform conversion.

"Request brokers on each participating host take care of data management,
efficient data transfer and conversion between different platforms ...
Between heterogeneous hardware platform[s] data type conversion is done
by the request brokers which is thus invisible for the application
modules" (section 4.5).
"""

from __future__ import annotations

import copy
from typing import Optional

import numpy as np

from repro.covise.dataobj import DataObject, UniformScalarField
from repro.covise.datamgr import SharedDataSpace
from repro.errors import CoviseError


class RequestBroker:
    """Moves data objects between hosts' shared data spaces.

    Transfers cost virtual time on the network link; same-host handoffs
    are free (that is what the SDS is for).  ``platform_dtype`` models a
    heterogeneous receiving platform: scalar fields are converted on
    arrival without any module noticing.
    """

    def __init__(
        self,
        network,
        spaces: dict[str, SharedDataSpace],
        platform_dtype: Optional[dict[str, str]] = None,
    ) -> None:
        self.network = network
        self.spaces = spaces
        self.platform_dtype = platform_dtype or {}
        self.transfers = 0
        self.bytes_transferred = 0

    def space(self, host_name: str) -> SharedDataSpace:
        sds = self.spaces.get(host_name)
        if sds is None:
            raise CoviseError(f"no shared data space on host {host_name!r}")
        return sds

    def transfer(self, obj_name: str, src_host: str, dst_host: str):
        """Generator: replicate an object into the destination SDS.

        Resolves to the (possibly converted) replica.  Same-host transfer
        returns the original object untouched and costs nothing.
        """
        src = self.space(src_host)
        obj = src.get(obj_name)
        if src_host == dst_host:
            return obj
        dst = self.space(dst_host)
        env = self.network.env
        link = self.network.link(src_host, dst_host)
        deliver_at = link.reserve(obj.nbytes, env.now)
        yield env.timeout(max(0.0, deliver_at - env.now))
        replica = self._convert_for(dst_host, copy.deepcopy(obj))
        if dst.exists(replica.name):
            dst.delete(replica.name)  # refresh a stale replica
        dst.put(replica, creator=f"crb:{src_host}")
        self.transfers += 1
        self.bytes_transferred += obj.nbytes
        return replica

    def _convert_for(self, dst_host: str, obj: DataObject) -> DataObject:
        dtype = self.platform_dtype.get(dst_host)
        if dtype is None:
            return obj
        if isinstance(obj, UniformScalarField):
            converted = obj.convert(np.dtype(dtype))
            converted.creator = obj.creator
            return converted
        return obj
