"""The Map-editor: COVISE's central user interface, programmatic form.

"This application building step is done in the Map-editor module, the
central user interface of COVISE" (section 4.5).  A :class:`MapEditor`
builds the module network declaratively and hands a configured
:class:`~repro.covise.controller.Controller` back; maps can be serialized
so a collaborative session can replicate the same map on every site.
"""

from __future__ import annotations

from typing import Callable

from repro.covise.controller import Controller
from repro.covise.modules import Module, PipelineError
from repro.covise.stdmodules import (
    Collect,
    Colors,
    CuttingPlaneModule,
    IsoSurfaceModule,
    ReadSim,
    RendererModule,
)

#: module-kind registry for serialized maps
_KINDS: dict[str, type] = {
    "CuttingPlane": CuttingPlaneModule,
    "IsoSurface": IsoSurfaceModule,
    "Colors": Colors,
    "Collect": Collect,
    "Renderer": RendererModule,
}


class MapEditor:
    """Build and serialize module networks."""

    def __init__(self, network) -> None:
        self.network = network
        self.controller = Controller(network)
        self._spec: list[dict] = []

    def add(self, kind: str, name: str, host: str, **params) -> Module:
        """Instantiate a registered module kind on a host."""
        cls = _KINDS.get(kind)
        if cls is None:
            raise PipelineError(
                f"unknown module kind {kind!r}; have {sorted(_KINDS)}"
            )
        module = cls(name)
        for key, value in params.items():
            module.set_param(key, value)
        self.controller.add_module(module, host)
        self._spec.append(
            {"op": "add", "kind": kind, "name": name, "host": host,
             "params": dict(params)}
        )
        return module

    def add_source(self, name: str, host: str, source: Callable) -> Module:
        """Sources hold callbacks and are re-bound per site on replication."""
        module = ReadSim(name, source)
        self.controller.add_module(module, host)
        self._spec.append({"op": "source", "name": name, "host": host})
        return module

    def connect(self, src: str, src_port: str, dst: str, dst_port: str) -> None:
        self.controller.connect(src, src_port, dst, dst_port)
        self._spec.append(
            {"op": "connect", "src": src, "src_port": src_port,
             "dst": dst, "dst_port": dst_port}
        )

    def spec(self) -> list[dict]:
        """Serializable map description (for session replication)."""
        return [dict(s) for s in self._spec]

    @classmethod
    def replicate(
        cls,
        network,
        spec: list[dict],
        host: str,
        sources: dict[str, Callable],
    ) -> "MapEditor":
        """Rebuild a map on a different host (every module placed there).

        ``sources`` maps source-module names to that site's callbacks —
        in a collaborative session each site reads the same simulation
        feed, so the replicated maps produce identical content.
        """
        editor = cls(network)
        for item in spec:
            if item["op"] == "add":
                editor.add(item["kind"], item["name"], host, **item["params"])
            elif item["op"] == "source":
                source = sources.get(item["name"])
                if source is None:
                    raise PipelineError(
                        f"replication needs a source for {item['name']!r}"
                    )
                editor.add_source(item["name"], host, source)
            elif item["op"] == "connect":
                editor.connect(
                    item["src"], item["src_port"], item["dst"], item["dst_port"]
                )
            else:
                raise PipelineError(f"bad map spec entry {item!r}")
        return editor
