"""Module base class for COVISE pipelines.

"Distributed applications can be built by combining modules (modeled as
processes) from different application categories on different hosts to
form module networks" (section 4.5).  A module declares input/output
ports and parameters; ``run`` maps input data objects to output data
objects; ``cost`` is its virtual compute time (used by the controller so
feedback-loop latencies are measurable).
"""

from __future__ import annotations

from typing import Any

from repro.covise.dataobj import DataObject
from repro.errors import CoviseError


class PipelineError(CoviseError):
    """Bad wiring or a module contract violation."""


class Module:
    """One processing step in a module network."""

    #: port declarations; subclasses override
    INPUT_PORTS: tuple = ()
    OUTPUT_PORTS: tuple = ()
    #: default parameters
    PARAMS: dict = {}

    def __init__(self, name: str) -> None:
        self.name = name
        self.params: dict[str, Any] = dict(self.PARAMS)
        self.executions = 0

    def set_param(self, key: str, value: Any) -> None:
        if key not in self.params:
            raise PipelineError(f"module {self.name!r} has no parameter {key!r}")
        self.params[key] = value

    def run(self, inputs: dict[str, DataObject], sds) -> dict[str, DataObject]:
        """Produce outputs from inputs; must cover all OUTPUT_PORTS.

        ``sds`` is the local shared data space, used for unique names.
        """
        raise NotImplementedError

    def cost(self, inputs: dict[str, DataObject]) -> float:
        """Virtual compute seconds; default scales mildly with input size."""
        total = sum(obj.nbytes for obj in inputs.values())
        return 0.001 + total * 2e-9

    def execute(self, inputs: dict[str, DataObject], sds) -> dict[str, DataObject]:
        """Validated wrapper around :meth:`run`."""
        for port in self.INPUT_PORTS:
            if port not in inputs:
                raise PipelineError(
                    f"module {self.name!r} missing input port {port!r}"
                )
        outputs = self.run(inputs, sds)
        for port in self.OUTPUT_PORTS:
            if port not in outputs:
                raise PipelineError(
                    f"module {self.name!r} produced no output for port {port!r}"
                )
        self.executions += 1
        return outputs

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
