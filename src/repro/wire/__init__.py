"""Wire formats: self-describing typed binary codec + stream framing.

VISIT (paper section 3.2) transfers "simple data types like strings,
integers, floats, user defined structures, and arrays of these" using an
MPI-like tagged message mechanism, with "any data conversions (byte order,
precision, integer-float) performed transparently by the server".  This
package implements exactly that data model.
"""

from repro.wire.codec import (
    coerce_array,
    decode,
    describe,
    encode,
    encoded_size,
)
from repro.wire.frames import FrameDecoder, encode_frame

__all__ = [
    "encode",
    "decode",
    "describe",
    "encoded_size",
    "coerce_array",
    "encode_frame",
    "FrameDecoder",
]
