"""Length-prefixed framing with logical stream ids.

The UNICORE Gateway (paper section 3.1/3.3) multiplexes *all* traffic —
job consignment, status polls, and the VISIT proxy relay — over a single
fixed TCP server port.  This module provides the framing used for that
multiplexing: each frame is ``u32 length | u32 stream_id | payload``.

The decoder is incremental (feed arbitrary byte chunks, collect complete
frames), because simulated TCP delivers whatever segment sizes the
bandwidth model produces.
"""

from __future__ import annotations

import struct

from repro.errors import ProtocolError

_HEADER = struct.Struct("<II")

#: Frames larger than this indicate a corrupted stream, not a real message.
MAX_FRAME = 1 << 30


def encode_frame(stream_id: int, payload: bytes) -> bytes:
    """Encode one frame for logical stream ``stream_id``."""
    if not 0 <= stream_id < 2**32:
        raise ProtocolError(f"stream id {stream_id} out of range")
    if len(payload) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(len(payload), stream_id) + payload


class FrameDecoder:
    """Incremental frame parser.

    >>> dec = FrameDecoder()
    >>> frames = dec.feed(encode_frame(7, b"hello"))
    >>> frames
    [(7, b'hello')]
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Consume ``data``; return all complete ``(stream_id, payload)``."""
        self._buf.extend(data)
        frames: list[tuple[int, bytes]] = []
        while True:
            if len(self._buf) < _HEADER.size:
                return frames
            length, stream_id = _HEADER.unpack_from(self._buf, 0)
            if length > MAX_FRAME:
                raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
            end = _HEADER.size + length
            if len(self._buf) < end:
                return frames
            payload = bytes(self._buf[_HEADER.size : end])
            del self._buf[:end]
            frames.append((stream_id, payload))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buf)
