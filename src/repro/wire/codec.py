"""Self-describing typed binary codec.

Supported value types (mirroring VISIT's data model):

* ``None``, ``bool``
* ``int`` (encoded as INT32 when it fits, INT64 otherwise)
* ``float`` (FLOAT64; FLOAT32 arrays keep their precision)
* ``str`` (UTF-8), ``bytes``
* ``numpy.ndarray`` of int32/int64/float32/float64 (any shape)
* ``dict`` with string keys ("user defined structures"), values recursive
* ``list``/``tuple`` of the above (decoded as list)

The encoder writes numeric payloads in a chosen byte order (``"<"`` or
``">"``); the *decoder* handles either transparently, which is where the
paper's "conversions are performed by the server so the simulation is
disturbed as little as possible" rule lives: simulations encode in native
order and never convert.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.errors import CodecError

# -- type tags ---------------------------------------------------------------

T_NONE = 0x00
T_BOOL = 0x01
T_INT32 = 0x02
T_INT64 = 0x03
T_FLOAT64 = 0x04
T_STRING = 0x05
T_BYTES = 0x06
T_ARRAY = 0x07
T_STRUCT = 0x08
T_LIST = 0x09

_ARRAY_DTYPES = {
    0: np.dtype(np.int32),
    1: np.dtype(np.int64),
    2: np.dtype(np.float32),
    3: np.dtype(np.float64),
}
_ARRAY_CODES = {v: k for k, v in _ARRAY_DTYPES.items()}

_INT32_MIN, _INT32_MAX = -(2**31), 2**31 - 1

_BYTEORDER_BYTE = {"<": 0, ">": 1}
_BYTE_BYTEORDER = {0: "<", 1: ">"}


def encode(value: Any, byteorder: str = "<") -> bytes:
    """Encode ``value`` to a self-describing byte string.

    The first byte records the byte order used for all numeric payloads.
    """
    if byteorder not in _BYTEORDER_BYTE:
        raise CodecError(f"byteorder must be '<' or '>', got {byteorder!r}")
    parts = [bytes([_BYTEORDER_BYTE[byteorder]])]
    _encode_value(value, byteorder, parts)
    return b"".join(parts)


def _encode_value(value: Any, bo: str, parts: list[bytes]) -> None:
    if value is None:
        parts.append(bytes([T_NONE]))
    elif isinstance(value, bool):
        parts.append(bytes([T_BOOL, 1 if value else 0]))
    elif isinstance(value, (int, np.integer)):
        v = int(value)
        if _INT32_MIN <= v <= _INT32_MAX:
            parts.append(bytes([T_INT32]) + struct.pack(bo + "i", v))
        else:
            parts.append(bytes([T_INT64]) + struct.pack(bo + "q", v))
    elif isinstance(value, (float, np.floating)):
        parts.append(bytes([T_FLOAT64]) + struct.pack(bo + "d", float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        parts.append(bytes([T_STRING]) + struct.pack(bo + "I", len(raw)) + raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        parts.append(bytes([T_BYTES]) + struct.pack(bo + "I", len(raw)) + raw)
    elif isinstance(value, np.ndarray):
        _encode_array(value, bo, parts)
    elif isinstance(value, dict):
        items = list(value.items())
        parts.append(bytes([T_STRUCT]) + struct.pack(bo + "I", len(items)))
        for key, val in items:
            if not isinstance(key, str):
                raise CodecError(f"struct keys must be str, got {type(key).__name__}")
            raw = key.encode("utf-8")
            parts.append(struct.pack(bo + "I", len(raw)) + raw)
            _encode_value(val, bo, parts)
    elif isinstance(value, (list, tuple)):
        parts.append(bytes([T_LIST]) + struct.pack(bo + "I", len(value)))
        for item in value:
            _encode_value(item, bo, parts)
    else:
        raise CodecError(f"unsupported type {type(value).__name__}")


def _encode_array(arr: np.ndarray, bo: str, parts: list[bytes]) -> None:
    base = arr.dtype.newbyteorder("=")
    if base not in _ARRAY_CODES:
        raise CodecError(f"unsupported array dtype {arr.dtype}")
    if arr.ndim > 255:
        raise CodecError("array rank exceeds 255")
    code = _ARRAY_CODES[base]
    swapped = arr.astype(base.newbyteorder(bo), copy=False)
    parts.append(bytes([T_ARRAY, code, arr.ndim]))
    parts.append(struct.pack(bo + "I" * arr.ndim, *arr.shape))
    parts.append(np.ascontiguousarray(swapped).tobytes())


def decode(buf: bytes | bytearray | memoryview) -> Any:
    """Decode a byte string produced by :func:`encode` (any byte order)."""
    buf = memoryview(bytes(buf))
    if len(buf) < 1:
        raise CodecError("empty buffer")
    try:
        bo = _BYTE_BYTEORDER[buf[0]]
    except KeyError:
        raise CodecError(f"bad byte-order marker {buf[0]!r}") from None
    value, offset = _decode_value(buf, 1, bo)
    if offset != len(buf):
        raise CodecError(f"{len(buf) - offset} trailing bytes after value")
    return value


def _take(buf: memoryview, offset: int, n: int) -> tuple[memoryview, int]:
    if offset + n > len(buf):
        raise CodecError("truncated buffer")
    return buf[offset : offset + n], offset + n


def _decode_value(buf: memoryview, offset: int, bo: str) -> tuple[Any, int]:
    tagbuf, offset = _take(buf, offset, 1)
    tag = tagbuf[0]
    if tag == T_NONE:
        return None, offset
    if tag == T_BOOL:
        raw, offset = _take(buf, offset, 1)
        return bool(raw[0]), offset
    if tag == T_INT32:
        raw, offset = _take(buf, offset, 4)
        return struct.unpack(bo + "i", raw)[0], offset
    if tag == T_INT64:
        raw, offset = _take(buf, offset, 8)
        return struct.unpack(bo + "q", raw)[0], offset
    if tag == T_FLOAT64:
        raw, offset = _take(buf, offset, 8)
        return struct.unpack(bo + "d", raw)[0], offset
    if tag == T_STRING:
        raw, offset = _take(buf, offset, 4)
        (n,) = struct.unpack(bo + "I", raw)
        raw, offset = _take(buf, offset, n)
        return bytes(raw).decode("utf-8"), offset
    if tag == T_BYTES:
        raw, offset = _take(buf, offset, 4)
        (n,) = struct.unpack(bo + "I", raw)
        raw, offset = _take(buf, offset, n)
        return bytes(raw), offset
    if tag == T_ARRAY:
        head, offset = _take(buf, offset, 2)
        code, ndim = head[0], head[1]
        if code not in _ARRAY_DTYPES:
            raise CodecError(f"bad array dtype code {code}")
        raw, offset = _take(buf, offset, 4 * ndim)
        shape = struct.unpack(bo + "I" * ndim, raw) if ndim else ()
        dtype = _ARRAY_DTYPES[code]
        count = 1
        for dim in shape:
            count *= dim
        raw, offset = _take(buf, offset, count * dtype.itemsize)
        arr = np.frombuffer(raw, dtype=dtype.newbyteorder(bo), count=count)
        # Return in native byte order: the *receiver* pays for conversion.
        return arr.astype(dtype, copy=True).reshape(shape), offset
    if tag == T_STRUCT:
        raw, offset = _take(buf, offset, 4)
        (n,) = struct.unpack(bo + "I", raw)
        out = {}
        for _ in range(n):
            raw, offset = _take(buf, offset, 4)
            (klen,) = struct.unpack(bo + "I", raw)
            raw, offset = _take(buf, offset, klen)
            key = bytes(raw).decode("utf-8")
            out[key], offset = _decode_value(buf, offset, bo)
        return out, offset
    if tag == T_LIST:
        raw, offset = _take(buf, offset, 4)
        (n,) = struct.unpack(bo + "I", raw)
        items = []
        for _ in range(n):
            item, offset = _decode_value(buf, offset, bo)
            items.append(item)
        return items, offset
    raise CodecError(f"unknown type tag {tag:#x}")


def encoded_size(value: Any) -> int:
    """Size in bytes of ``encode(value)`` — used by link cost models."""
    return len(encode(value))


#: (type, field-name tuple) -> constant envelope bytes for dataclass-like
#: message objects: the struct overhead plus the cost of the field-name
#: strings.  Control traffic (SYN/ACK/steer acks, status requests) re-walks
#: identically-shaped messages thousands of times per run; only the field
#: *values* can change, so the envelope is computed once per shape.
_ENVELOPE_CACHE: dict[tuple, int] = {}


def approx_size(value: Any) -> int:
    """Wire-size estimate that never fails.

    Exact for codec-supported types; dataclass-like objects are costed as
    their ``__dict__`` plus a small envelope; anything else gets a nominal
    64 bytes.  Used by the network layer to charge link time for payloads
    that travel as Python objects.
    """
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 9
    if isinstance(value, str):
        return 5 + len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return 5 + len(value)
    if isinstance(value, np.ndarray):
        return 16 + value.nbytes
    if isinstance(value, dict):
        return 5 + sum(
            approx_size(str(k)) + approx_size(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set)):
        return 5 + sum(approx_size(v) for v in value)
    inner = getattr(value, "__dict__", None)
    if isinstance(inner, dict):
        # 16 (object envelope) + 5 (struct header) + per-key name costs
        # are constant per message shape; per-value costs are not.
        key = (value.__class__, tuple(inner))
        envelope = _ENVELOPE_CACHE.get(key)
        if envelope is None:
            envelope = 21 + sum(approx_size(str(k)) for k in inner)
            _ENVELOPE_CACHE[key] = envelope
        return envelope + sum(approx_size(v) for v in inner.values())
    return 64


def describe(value: Any) -> str:
    """Short human-readable type description (for logs and registries)."""
    if isinstance(value, np.ndarray):
        return f"array[{value.dtype.name}]{list(value.shape)}"
    if isinstance(value, dict):
        return "struct{" + ",".join(sorted(value)) + "}"
    if isinstance(value, (list, tuple)):
        return f"list[{len(value)}]"
    return type(value).__name__


def coerce_array(arr: np.ndarray, dtype) -> np.ndarray:
    """Precision / integer-float conversion, VISIT-server style.

    The server converts received data to whatever the *visualization*
    requested (e.g. float64 simulation data down to float32 for the
    renderer) so the simulation never spends cycles on it.
    """
    target = np.dtype(dtype)
    if target.newbyteorder("=") not in _ARRAY_CODES:
        raise CodecError(f"unsupported target dtype {target}")
    return arr.astype(target, copy=False)
