"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch package failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """A discrete-event simulation kernel invariant was violated."""


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class ConnectionRefused(NetworkError):
    """The destination host exists but nothing is listening on the port."""


class FirewallBlocked(NetworkError):
    """A firewall or NAT rule rejected the connection attempt."""


class HostUnreachable(NetworkError):
    """No route exists between the two hosts."""


class ChannelClosed(NetworkError):
    """Operation on a connection that has been closed by either end."""


class TimeoutExpired(ReproError):
    """A bounded operation did not complete within its deadline.

    VISIT semantics (paper section 3.2) guarantee that every operation
    initiated by the simulation completes *or fails* within a user-supplied
    timeout; this is the failure signal.
    """


class CodecError(ReproError):
    """Malformed wire data or an unsupported type reached the codec."""


class ProtocolError(ReproError):
    """A peer violated the message protocol (bad magic, bad sequence...)."""


class AuthenticationError(ReproError):
    """Password / certificate / token verification failed."""


class VisitError(ReproError):
    """VISIT toolkit error that is not a timeout or codec problem."""


class NotMaster(VisitError):
    """A non-master collaborator attempted to steer through the vbroker."""


class UnicoreError(ReproError):
    """UNICORE middleware failure (job rejected, consignment failed...)."""


class IncarnationError(UnicoreError):
    """The NJS could not translate an AJO task for the target system."""


class OgsaError(ReproError):
    """Grid-service container or service-level failure."""


class ServiceNotFound(OgsaError):
    """Registry lookup or handle resolution found no matching service."""


class SteeringError(ReproError):
    """Steering-core failure (unknown parameter, bad command, role abuse)."""


class LoadError(ReproError):
    """Open-loop load layer failure (capacity ledger misuse, bad arrival
    configuration, admission-controller invariant violation)."""


class ChaosError(ReproError):
    """Chaos layer failure: a malformed fault schedule, an injector
    applied against a fabric that cannot host it, or — the one that
    matters — an :class:`repro.chaos.invariants.InvariantMonitor`
    conservation-law violation surfaced by ``assert_ok``."""


class CampaignError(ReproError):
    """Campaign layer failure: a malformed campaign spec or axis point,
    a results store whose header does not match the campaign being
    resumed, or a corrupt (non-trailing) store record."""


class LiveError(ReproError):
    """Live control-plane failure: a malformed or oversized HTTP request,
    a paced-runner misconfiguration, or a corrupt arrival trace."""


class ObsError(ReproError):
    """Observability layer failure: a malformed metric or label name, a
    tracer used before its environment is bound, or a protection
    primitive misconfigured (non-positive thresholds, zero quotas)."""


class CircuitOpen(ObsError):
    """An enforcing circuit breaker shed the call: the guarded
    dependency (broker pool, registry) has been failing and the breaker
    is in its open window — fail fast instead of feeding the timeout."""


class CoviseError(ReproError):
    """COVISE substrate failure (bad module wiring, missing data object)."""


class VenueError(ReproError):
    """Access-Grid venue server failure."""
