"""Kernel profiler: event counts, events/sec, per-component attribution.

The :class:`repro.des.Environment` runs an instrumented step path while a
profiler is attached (and the pristine one otherwise, so an unprofiled
run pays nothing).  Each event callback's wall time is attributed to a
*component*:

* a process resume is attributed to the process's generator function —
  ``_pump``, ``steered_app_process``, ``_session``, … — which maps
  directly onto the simulated middleware's moving parts;
* other bound-method callbacks to ``Type.method`` (e.g. a condition's
  ``_check``);
* bare functions/lambdas (delivery callbacks) to their qualified name,
  unwrapping ``functools.partial`` chains to the wrapped callable.

Component names are **stable across runs**: two identical simulations
produce identical attribution keys, so profiles can be diffed.  That is
why the fallback for exotic callables is the callable's *type*
(``module.Qualname``), never ``repr()`` — a repr carries the object's
memory address, different every run.
"""

from __future__ import annotations

import functools
import time
from typing import Optional

from repro.des.core import Environment, Process

_PROCESS_RESUME = Process._resume


def _component_of(cb, event) -> str:
    """Stable component name for one event callback."""
    wrapped = False
    while isinstance(cb, functools.partial):
        cb = cb.func
        wrapped = True
    func = getattr(cb, "__func__", None)
    owner = getattr(cb, "__self__", None)
    if func is _PROCESS_RESUME:
        gen = owner._generator
        name = getattr(gen, "__name__", type(owner).__name__)
    elif owner is not None:
        name = f"{type(owner).__name__}.{func.__name__}"
    else:
        name = getattr(cb, "__qualname__", None)
        if name is None:
            # Callable instances (__call__ objects, C callables): the
            # type is the stable identity; repr() would embed a memory
            # address, different every run.
            cls = type(cb)
            name = f"{cls.__module__}.{cls.__qualname__}"
    return f"partial({name})" if wrapped else name


class Profiler:
    """Attributes a simulation run's wall time to kernel components.

    Usage::

        prof = Profiler()
        with prof.attach(env):
            env.run(until=deadline)
        print(prof.render())
    """

    def __init__(self) -> None:
        #: component -> [calls, seconds]
        self.components: dict[str, list] = {}
        self._env: Optional[Environment] = None
        self._t0 = 0.0
        self._events0 = 0
        self.wall_seconds = 0.0
        self.events = 0

    # -- attachment --------------------------------------------------------

    def attach(self, env: Environment) -> "Profiler":
        if env._profiler is not None:
            raise RuntimeError("environment already has a profiler attached")
        self._env = env
        env._profiler = self
        self._t0 = time.perf_counter()
        self._events0 = env.events_processed
        return self

    def detach(self) -> "Profiler":
        env = self._env
        if env is None:
            return self
        self.wall_seconds += time.perf_counter() - self._t0
        self.events += env.events_processed - self._events0
        env._profiler = None
        self._env = None
        return self

    def __enter__(self) -> "Profiler":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- recording (called by Environment._step_profiled) ------------------

    def _record(self, cb, event, seconds: float) -> None:
        name = _component_of(cb, event)
        entry = self.components.get(name)
        if entry is None:
            self.components[name] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    # -- reporting ---------------------------------------------------------

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events / self.wall_seconds

    def report(self) -> dict:
        """Machine-readable profile: totals plus per-component rows."""
        if self._env is not None:
            # Report mid-attachment: snapshot without detaching.
            wall = self.wall_seconds + (time.perf_counter() - self._t0)
            events = self.events + (self._env.events_processed - self._events0)
        else:
            wall, events = self.wall_seconds, self.events
        rows = sorted(
            (
                {"component": name, "calls": calls, "seconds": secs}
                for name, (calls, secs) in self.components.items()
            ),
            key=lambda r: r["seconds"],
            reverse=True,
        )
        return {
            "wall_seconds": wall,
            "events": events,
            "events_per_sec": (events / wall) if wall > 0 else 0.0,
            "components": rows,
        }

    def render(self, top: int = 12) -> str:
        """Human-readable top-N component table."""
        rep = self.report()
        lines = [
            f"{rep['events']} events in {rep['wall_seconds']:.3f}s wall "
            f"({rep['events_per_sec']:,.0f} events/s)"
        ]
        for row in rep["components"][:top]:
            lines.append(
                f"  {row['component']:<32} {row['calls']:>9} calls "
                f"{row['seconds'] * 1e3:>10.1f} ms"
            )
        return "\n".join(lines)
