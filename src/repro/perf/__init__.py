"""repro.perf — kernel profiling, unified benchmarking, regression gating.

The testbed's value is running *many* hostile scenarios; that is only
practical if the DES kernel stays fast and, once fast, stays fast.  This
package owns all three legs of that:

* :class:`Profiler` — attaches to a :class:`repro.des.Environment` and
  attributes wall time to components (process generators, event types)
  via a dedicated profiled step path, so "where do the events go" is a
  one-call question instead of a cProfile session;
* :mod:`repro.perf.bench` — the unified bench runner: every
  ``benchmarks/bench_*.py`` emits its ``BENCH_*.json`` through
  :func:`~repro.perf.bench.write_bench`, which wraps the bench's own
  payload in a uniform envelope (wall seconds, events, events/sec, peak
  RSS) so the perf trajectory is recorded and comparable across PRs;
* :mod:`repro.perf.gate` — the CI regression gate: re-runs the fleet
  scaling scenario and fails when wall-clock regresses beyond a
  threshold against the committed baseline.
"""

from repro.perf.bench import (
    BENCH_SCHEMA,
    load_bench,
    peak_rss_bytes,
    write_bench,
)
from repro.perf.profiler import Profiler

__all__ = [
    "BENCH_SCHEMA",
    "Profiler",
    "load_bench",
    "peak_rss_bytes",
    "write_bench",
]
