"""Perf regression gate: fail CI when the fleet-scaling wall regresses.

Re-runs the canonical fleet-scaling scenario at one size through the
unified runner and compares wall-clock against the committed
``benchmarks/BENCH_fleet_scaling.json`` baseline.  A run slower than
``baseline * (1 + threshold)`` exits non-zero — nothing can silently
give the kernel speedup back.

Correctness is gated too: the run must complete every session with the
baseline's op count, so a "speedup" that drops work cannot pass.

``--kernel`` switches to the kernel-scheduler gate: every pattern in
``benchmarks/bench_kernel.py`` runs once per scheduler backend, and each
``(backend, pattern)`` cell must clear its absolute events/sec floor and
stay within ``threshold`` of the committed ``BENCH_kernel.json``
baseline rate.  Event counts must match the baseline exactly and agree
across backends — a backend cannot buy throughput by dropping work.

Usage::

    python -m repro.perf.gate [--sessions 128] [--threshold 0.25]
        [--baseline benchmarks/BENCH_fleet_scaling.json]
    python -m repro.perf.gate --kernel [--threshold 3.0]
        [--baseline benchmarks/BENCH_kernel.json]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.perf.bench import load_bench

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]


#: the canonical fleet-scaling scenario — the *single* definition used by
#: both this gate and ``benchmarks/bench_fleet_scaling.py``, so the
#: measured scenario can never drift from the committed baseline's
FLEET_STAGGER = 0.2
FLEET_N_SITES = 4


def run_fleet(n_sessions: int):
    """Run the canonical fleet-scaling scenario at one size.

    Returns ``(report, wall_seconds, events_processed)``.
    """
    from repro.fleet import FleetDriver, fleet_of

    specs = fleet_of(n_sessions, stagger=FLEET_STAGGER)
    t0 = time.perf_counter()
    driver = FleetDriver(specs, n_sites=FLEET_N_SITES)
    report = driver.run(wall_seconds=None)
    wall = time.perf_counter() - t0
    return report, wall, driver.env.events_processed


def check(
    baseline_path: pathlib.Path | str,
    sessions: int = 128,
    threshold: float = 0.25,
) -> tuple[bool, str]:
    """Run the gate; returns (ok, human-readable verdict)."""
    doc = load_bench(baseline_path)
    results = doc["results"]
    key = str(sessions)
    if key not in results:
        return False, (
            f"baseline {baseline_path} has no entry for {sessions} sessions "
            f"(has {sorted(results)})"
        )
    base = results[key]
    base_wall = base["wall_seconds"]
    report, wall, events = run_fleet(sessions)

    lines = [
        f"fleet_scaling @ {sessions}: wall {wall:.2f}s vs baseline "
        f"{base_wall:.2f}s (limit {base_wall * (1 + threshold):.2f}s, "
        f"threshold +{threshold:.0%}), {events} events "
        f"({events / wall:,.0f}/s)"
    ]
    ok = True
    if report.completed != base["completed"] or report.ops != base["ops"]:
        ok = False
        lines.append(
            f"FAIL: workload drifted — completed {report.completed} vs "
            f"{base['completed']}, ops {report.ops} vs {base['ops']}"
        )
    if wall > base_wall * (1 + threshold):
        ok = False
        lines.append(
            f"FAIL: wall-clock regressed {wall / base_wall - 1:+.0%} "
            f"(> +{threshold:.0%} allowed)"
        )
    if ok:
        lines.append("OK")
    return ok, "\n".join(lines)


def _load_kernel_bench():
    """Import ``benchmarks.bench_kernel`` — the single definition of the
    kernel patterns and their per-backend floors — from a source or
    installed checkout alike."""
    if str(_REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(_REPO_ROOT))
    from benchmarks import bench_kernel

    return bench_kernel


def check_kernel(
    baseline_path: pathlib.Path | str,
    threshold: float = 3.0,
) -> tuple[bool, str]:
    """Run the per-backend kernel gate; returns (ok, verdict).

    ``threshold`` is deliberately generous (CI boxes are slow and
    noisy); the absolute ``FLOORS`` in ``bench_kernel`` are the
    backstop an O(n) regression cannot hide under.
    """
    from repro.des.sched import available_backends

    bench = _load_kernel_bench()
    doc = load_bench(baseline_path)
    baseline = doc["results"]
    lines = []
    ok = True
    counts: dict[str, dict[str, int]] = {}
    for backend in available_backends():
        base = baseline.get(backend)
        if base is None:
            return False, (
                f"baseline {baseline_path} has no results for backend "
                f"{backend!r} (has {sorted(baseline)}) — regenerate "
                f"BENCH_kernel.json"
            )
        counts[backend] = {}
        for name, fn in bench.SCENARIOS.items():
            events, wall = fn(backend)
            rate = events / wall
            counts[backend][name] = events
            base_rate = base[name]["events_per_sec"]
            floor = bench.FLOORS[backend][name]
            limit = max(floor, base_rate / (1 + threshold))
            lines.append(
                f"kernel {backend}/{name}: {rate:,.0f} events/s "
                f"(baseline {base_rate:,.0f}, limit {limit:,.0f})"
            )
            if events != base[name]["events"]:
                ok = False
                lines.append(
                    f"FAIL: {backend}/{name} workload drifted — "
                    f"{events} events vs baseline {base[name]['events']}"
                )
            if rate < limit:
                ok = False
                lines.append(
                    f"FAIL: {backend}/{name} below {limit:,.0f} events/s"
                )
    reference = counts["heap"]
    for backend, per in counts.items():
        if per != reference:
            ok = False
            lines.append(
                f"FAIL: backend {backend} event counts diverge from heap: "
                f"{per} vs {reference}"
            )
    lines.append("OK" if ok else "kernel gate FAILED")
    return ok, "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=128)
    parser.add_argument("--threshold", type=float, default=None)
    parser.add_argument("--kernel", action="store_true")
    parser.add_argument("--baseline", default=None)
    args = parser.parse_args(argv)
    if args.kernel:
        baseline = args.baseline or str(_REPO_ROOT / "benchmarks" / "BENCH_kernel.json")
        threshold = 3.0 if args.threshold is None else args.threshold
        ok, verdict = check_kernel(baseline, threshold=threshold)
    else:
        baseline = args.baseline or str(
            _REPO_ROOT / "benchmarks" / "BENCH_fleet_scaling.json"
        )
        threshold = 0.25 if args.threshold is None else args.threshold
        ok, verdict = check(baseline, sessions=args.sessions, threshold=threshold)
    print(verdict)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
