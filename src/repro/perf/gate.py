"""Perf regression gate: fail CI when the fleet-scaling wall regresses.

Re-runs the canonical fleet-scaling scenario at one size through the
unified runner and compares wall-clock against the committed
``benchmarks/BENCH_fleet_scaling.json`` baseline.  A run slower than
``baseline * (1 + threshold)`` exits non-zero — nothing can silently
give the kernel speedup back.

Correctness is gated too: the run must complete every session with the
baseline's op count, so a "speedup" that drops work cannot pass.

Usage::

    python -m repro.perf.gate [--sessions 128] [--threshold 0.25]
        [--baseline benchmarks/BENCH_fleet_scaling.json]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.perf.bench import load_bench


#: the canonical fleet-scaling scenario — the *single* definition used by
#: both this gate and ``benchmarks/bench_fleet_scaling.py``, so the
#: measured scenario can never drift from the committed baseline's
FLEET_STAGGER = 0.2
FLEET_N_SITES = 4


def run_fleet(n_sessions: int):
    """Run the canonical fleet-scaling scenario at one size.

    Returns ``(report, wall_seconds, events_processed)``.
    """
    from repro.fleet import FleetDriver, fleet_of

    specs = fleet_of(n_sessions, stagger=FLEET_STAGGER)
    t0 = time.perf_counter()
    driver = FleetDriver(specs, n_sites=FLEET_N_SITES)
    report = driver.run(wall_seconds=None)
    wall = time.perf_counter() - t0
    return report, wall, driver.env.events_processed


def check(
    baseline_path: pathlib.Path | str,
    sessions: int = 128,
    threshold: float = 0.25,
) -> tuple[bool, str]:
    """Run the gate; returns (ok, human-readable verdict)."""
    doc = load_bench(baseline_path)
    results = doc["results"]
    key = str(sessions)
    if key not in results:
        return False, (
            f"baseline {baseline_path} has no entry for {sessions} sessions "
            f"(has {sorted(results)})"
        )
    base = results[key]
    base_wall = base["wall_seconds"]
    report, wall, events = run_fleet(sessions)

    lines = [
        f"fleet_scaling @ {sessions}: wall {wall:.2f}s vs baseline "
        f"{base_wall:.2f}s (limit {base_wall * (1 + threshold):.2f}s, "
        f"threshold +{threshold:.0%}), {events} events "
        f"({events / wall:,.0f}/s)"
    ]
    ok = True
    if report.completed != base["completed"] or report.ops != base["ops"]:
        ok = False
        lines.append(
            f"FAIL: workload drifted — completed {report.completed} vs "
            f"{base['completed']}, ops {report.ops} vs {base['ops']}"
        )
    if wall > base_wall * (1 + threshold):
        ok = False
        lines.append(
            f"FAIL: wall-clock regressed {wall / base_wall - 1:+.0%} "
            f"(> +{threshold:.0%} allowed)"
        )
    if ok:
        lines.append("OK")
    return ok, "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=128)
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument(
        "--baseline",
        default=str(
            pathlib.Path(__file__).resolve().parents[3]
            / "benchmarks" / "BENCH_fleet_scaling.json"
        ),
    )
    args = parser.parse_args(argv)
    ok, verdict = check(args.baseline, sessions=args.sessions, threshold=args.threshold)
    print(verdict)
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
