"""Unified bench emission: every BENCH_*.json shares one envelope.

PR-over-PR perf comparability requires every bench to record the same
vitals the same way.  :func:`write_bench` wraps a bench's own payload in
a uniform envelope::

    {
      "schema": "repro.perf/bench-v1",
      "bench": "fleet_scaling",
      "results": {...bench-specific payload...},
      "perf": {
        "wall_seconds": 5.93,
        "events": 164107,
        "events_per_sec": 27672.0,
        "peak_rss_bytes": 123456789
      }
    }

so the perf trajectory of the whole suite is diffable with one schema,
and the CI gate (:mod:`repro.perf.gate`) can read any bench's baseline.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
from typing import Any, Optional

BENCH_SCHEMA = "repro.perf/bench-v1"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes (0 if unknown)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return int(rss) * (1 if sys.platform == "darwin" else 1024)


def bench_envelope(
    name: str,
    results: Any,
    wall_seconds: Optional[float] = None,
    events: Optional[int] = None,
) -> dict:
    """The uniform document written for one bench."""
    perf: dict[str, Any] = {"peak_rss_bytes": peak_rss_bytes()}
    if wall_seconds is not None:
        perf["wall_seconds"] = wall_seconds
        if events is not None:
            perf["events"] = events
            perf["events_per_sec"] = events / wall_seconds if wall_seconds > 0 else 0.0
    elif events is not None:
        perf["events"] = events
    return {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "results": results,
        "perf": perf,
    }


def write_bench(
    path: pathlib.Path | str,
    name: str,
    results: Any,
    wall_seconds: Optional[float] = None,
    events: Optional[int] = None,
) -> pathlib.Path:
    """Write one bench's uniform BENCH_*.json document.

    Atomically: the document lands in a sibling ``.tmp`` file first and
    is ``os.replace``-d over the target, so an interrupted bench run can
    never leave a truncated baseline for the CI perf gate to misread —
    the committed JSON is always either the old document or the new one.
    """
    path = pathlib.Path(path)
    doc = bench_envelope(name, results, wall_seconds=wall_seconds, events=events)
    tmp = path.parent / (path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def load_bench(path: pathlib.Path | str) -> dict:
    """Load a BENCH_*.json; accepts both the uniform envelope and the
    pre-envelope bare-payload files (returned wrapped, results only)."""
    doc = json.loads(pathlib.Path(path).read_text())
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SCHEMA:
        return doc
    return {"schema": None, "bench": None, "results": doc, "perf": {}}
