"""Deterministic replay: a recorded live trace as a campaign cell.

:func:`replay_trace` is the bridge's last span — it lifts a trace file
into the one-cell campaign :func:`repro.live.trace.trace_campaign`
describes and executes it through the standard
:class:`~repro.campaign.runner.CampaignRunner`, so the replay gets the
full campaign treatment for free: resumable result store, worker-pool
execution, :class:`~repro.campaign.matrix.MatrixReport` aggregation,
``python -m repro.campaign diff`` comparability.

Byte-identity is the contract: :func:`matrix_bytes` canonicalises a
report (the nondeterministic ``perf`` envelope is excluded by
``MatrixReport`` itself), and replaying the same trace twice — or with
one worker versus two — must produce equal bytes.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import tempfile
from typing import Optional

from repro.campaign.matrix import MatrixReport
from repro.campaign.runner import CampaignRunner
from repro.campaign.store import ResultStore
from repro.live.trace import trace_campaign


def matrix_bytes(matrix: MatrixReport) -> bytes:
    """The canonical byte form replay determinism is judged on."""
    return json.dumps(matrix.to_dict(), sort_keys=True, separators=(",", ":")).encode("utf-8")


def matrix_digest(matrix: MatrixReport) -> str:
    return hashlib.sha256(matrix_bytes(matrix)).hexdigest()


def replay_trace(
    trace_path: pathlib.Path | str,
    store_path: Optional[pathlib.Path | str] = None,
    workers: int = 1,
    name: Optional[str] = None,
) -> MatrixReport:
    """Run a recorded trace as a fresh campaign cell.

    With ``store_path=None`` the cell record lands in a throwaway store
    (pure replay); give a path to keep the record for diffing against a
    later replay or a sibling configuration.
    """
    spec = trace_campaign(trace_path, name=name)
    if store_path is not None:
        runner = CampaignRunner(spec, ResultStore(store_path), workers=workers)
        return runner.run()
    with tempfile.TemporaryDirectory(prefix="repro-live-replay-") as tmp:
        store = ResultStore(pathlib.Path(tmp) / "replay.jsonl")
        runner = CampaignRunner(spec, store, workers=workers)
        return runner.run()
