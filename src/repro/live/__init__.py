"""repro.live: the real-time steering control plane.

PR 5's campaign layer answers "what would happen" — batch matrices over
virtual time.  This package answers "what is happening": the same
fabric (:mod:`repro.fleet` + :mod:`repro.load` admission), run against
the **wall clock** and steered over HTTP, with every arrival captured
for deterministic batch replay:

* :mod:`repro.live.pacing` — :class:`PacedRunner`, the wall-clock
  driver for the DES kernel (paced / turbo modes, catch-up accounting,
  graceful drain);
* :mod:`repro.live.http` — a minimal stdlib HTTP/1.1 codec over asyncio
  streams (sans-io core, hard size bounds);
* :mod:`repro.live.server` — :class:`LiveServer`: ``POST /sessions``,
  steer/cancel/status endpoints, 429 + Retry-After backpressure, trace
  capture;
* :mod:`repro.live.trace` — the JSONL arrival trace (atomic appends,
  spec-complete records) and its lift into a one-cell campaign;
* :mod:`repro.live.replay` — byte-identity replay through the campaign
  runner;
* :mod:`repro.live.client` — the seeded open-loop stress client.

The quickest way in::

    python -m repro.live record --trace /tmp/live.jsonl --rate 50 \
        --duration 5 --port 7180 &
    python -m repro.live stress --port 7180 --rate 20 --duration 3
    python -m repro.live replay /tmp/live.jsonl --check
"""

from repro.live.client import StressClient, request
from repro.live.pacing import PacedRunner
from repro.live.replay import matrix_bytes, matrix_digest, replay_trace
from repro.live.server import DEFAULT_CONFIG, LiveServer
from repro.live.trace import TraceRecorder, load_trace, trace_campaign

__all__ = [
    "PacedRunner",
    "LiveServer",
    "DEFAULT_CONFIG",
    "TraceRecorder",
    "load_trace",
    "trace_campaign",
    "replay_trace",
    "matrix_bytes",
    "matrix_digest",
    "StressClient",
    "request",
]
