"""Entry point: ``python -m repro.live serve|record|replay|stress``."""

import sys

from repro.live.cli import main

sys.exit(main())
