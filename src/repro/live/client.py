"""Seeded open-loop stress client for the live control plane.

The batch layer measures the fabric with seeded *arrival processes*;
the live layer is measured the same way, from outside the socket: the
:class:`StressClient` draws Poisson arrival instants against the wall
clock, fires one HTTP session offer per instant regardless of how the
server is coping (open loop — the whole point is to observe admission
backpressure, not to be polite), mixes session shapes from the same
seeded RNG, and aggregates status codes and request latencies into a
JSON-able report for ``python -m repro.live stress`` and
``benchmarks/bench_live.py``.
"""

from __future__ import annotations

import asyncio
import random
from time import perf_counter
from typing import Optional

from repro.errors import LiveError
from repro.fleet.spec import SIM_KINDS
from repro.live.http import HttpError, Response, encode_request, json_body, read_response


async def request(
    host: str,
    port: int,
    method: str,
    target: str,
    doc: Optional[dict] = None,
    timeout: float = 30.0,
) -> Response:
    """One HTTP request over a fresh connection (close semantics)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if doc is None else json_body(doc)
        writer.write(encode_request(method, target, body, host=host, keep_alive=False))
        await writer.drain()
        return await asyncio.wait_for(read_response(reader), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _percentile(sorted_values: list, q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


class StressClient:
    """Open-loop Poisson load against a running :class:`LiveServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        rate: float = 10.0,
        duration: float = 3.0,
        seed: int = 0,
        session: Optional[dict] = None,
        steer_every: int = 0,
        timeout: float = 30.0,
    ) -> None:
        if rate <= 0 or duration <= 0:
            raise LiveError("stress rate and duration must be > 0")
        self.host = host
        self.port = port
        self.rate = float(rate)
        self.duration = float(duration)
        self.seed = int(seed)
        #: extra POST /sessions body fields merged over the seeded mix
        self.session = dict(session or {})
        #: after every N-th accepted session, fire one steer at it
        self.steer_every = int(steer_every)
        self.timeout = timeout
        self.results: list[dict] = []

    def _plan(self) -> list[tuple[float, dict]]:
        """The seeded offer schedule: (wall offset, session body)."""
        rng = random.Random(self.seed)
        plan = []
        t = 0.0
        while True:
            t += rng.expovariate(self.rate)
            if t >= self.duration:
                return plan
            body = {
                "sim": rng.choice(SIM_KINDS),
                "participants": rng.choice((1, 1, 2)),
            }
            body.update(self.session)
            plan.append((t, body))

    async def _offer(self, offset: float, body: dict, t0: float, index: int) -> None:
        delay = t0 + offset - perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        sent = perf_counter()
        outcome: dict = {"index": index, "offset": offset}
        try:
            response = await request(
                self.host, self.port, "POST", "/sessions", body, timeout=self.timeout
            )
            outcome["status"] = response.status
            outcome["latency"] = perf_counter() - sent
            doc = response.json()
            outcome["name"] = doc.get("name")
            if response.status == 429:
                outcome["retry_after"] = response.headers.get("retry-after")
            elif (
                response.status == 202
                and self.steer_every
                and index % self.steer_every == 0
                and doc.get("name")
            ):
                steer = await request(
                    self.host,
                    self.port,
                    "POST",
                    f"/sessions/{doc['name']}/steer",
                    {"value": None},
                    timeout=self.timeout,
                )
                outcome["steer_status"] = steer.status
        except (HttpError, ConnectionError, asyncio.TimeoutError, OSError) as exc:
            outcome["status"] = 0
            outcome["error"] = f"{type(exc).__name__}: {exc}"
            outcome["latency"] = perf_counter() - sent
        self.results.append(outcome)

    async def run(self) -> dict:
        """Fire the whole schedule; returns :meth:`report`."""
        plan = self._plan()
        if not plan:
            raise LiveError(
                f"stress plan is empty (rate {self.rate}, duration {self.duration}); "
                "raise the rate or the duration"
            )
        t0 = perf_counter()
        await asyncio.gather(
            *(self._offer(offset, body, t0, i) for i, (offset, body) in enumerate(plan))
        )
        wall = perf_counter() - t0
        return self.report(wall)

    def report(self, wall: float) -> dict:
        by_status: dict[str, int] = {}
        for r in self.results:
            key = str(r["status"])
            by_status[key] = by_status.get(key, 0) + 1
        latencies = sorted(r["latency"] for r in self.results)
        n = len(self.results)
        return {
            "requests": n,
            "wall_seconds": wall,
            "offered_rps": self.rate,
            "achieved_rps": n / wall if wall > 0 else 0.0,
            "by_status": dict(sorted(by_status.items())),
            "admitted": by_status.get("202", 0),
            "rejected": by_status.get("429", 0),
            "errors": by_status.get("0", 0),
            "latency_p50": _percentile(latencies, 0.50),
            "latency_p90": _percentile(latencies, 0.90),
            "latency_p99": _percentile(latencies, 0.99),
            "latency_max": latencies[-1] if latencies else 0.0,
            "seed": self.seed,
        }
