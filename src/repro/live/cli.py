"""``python -m repro.live`` — serve, record, replay and stress.

Subcommands::

    serve   [--host H] [--port P] [--rate R|--turbo] [--trace FILE]
            [--duration WALL_SECONDS] [fabric flags]
    record  --trace FILE [same as serve]  (serve that *requires* a trace)
    replay  TRACE [--workers N] [--store PATH] [--check] [--json]
    stress  --port P [--host H] [--rate RPS] [--duration S] [--seed S]
            [--steer-every N] [--json]

``serve`` runs the control plane against the wall clock until the
duration elapses (or SIGINT/SIGTERM), then drains gracefully.  ``replay
--check`` is the determinism gate CI leans on: the trace is replayed
twice — once with 1 worker, once with 2 — and the run exits non-zero
unless the two MatrixReports are byte-identical.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Optional, Sequence

from repro.errors import LiveError, ReproError
from repro.live.client import StressClient
from repro.live.replay import matrix_digest, replay_trace
from repro.live.server import DEFAULT_CONFIG, LiveServer


def _add_fabric_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p.add_argument("--rate", type=float, default=None,
                   help=f"sim-seconds per wall-second (default {DEFAULT_CONFIG['rate']})")
    p.add_argument("--turbo", action="store_true",
                   help="run the kernel as fast as possible (rate=None)")
    p.add_argument("--n-sites", type=int, default=None)
    p.add_argument("--queue-slots", type=int, default=None)
    p.add_argument("--queue-limit", type=int, default=None)
    p.add_argument("--placement", default=None,
                   choices=("least-loaded", "locality", "p2c"))
    p.add_argument("--autoscale", action="store_true")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--duration", type=float, default=None,
                   help="wall seconds to serve; default: until SIGINT")
    p.add_argument("--grace", type=float, default=60.0,
                   help="sim-seconds of drain budget at shutdown")


def _config_from(args: argparse.Namespace) -> dict:
    config: dict = {}
    for flag, key in (
        ("n_sites", "n_sites"),
        ("queue_slots", "queue_slots"),
        ("queue_limit", "queue_limit"),
        ("placement", "placement"),
        ("seed", "seed"),
    ):
        value = getattr(args, flag)
        if value is not None:
            config[key] = value
    if args.turbo:
        config["rate"] = None
    elif args.rate is not None:
        config["rate"] = args.rate
    if args.autoscale:
        config["autoscale"] = True
    return config


async def _serve(args: argparse.Namespace, trace_path) -> dict:
    server = LiveServer(
        host=args.host, port=args.port,
        config=_config_from(args), trace_path=trace_path,
    )
    await server.start()
    where = f"http://{server.host}:{server.port}"
    tracing = f", tracing to {trace_path}" if trace_path else ""
    print(f"live control plane on {where} (rate={server.runner.rate}){tracing}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-unix
            pass
    if args.duration is not None:
        loop.call_later(args.duration, stop.set)
    await stop.wait()
    print("shutting down: draining schedule ...", flush=True)
    drain = await server.shutdown(grace=args.grace)
    stats = server.statsz()
    print(
        f"served {stats['server']['requests']} requests "
        f"({stats['server']['admitted']} admitted, "
        f"{stats['server']['rejected']} rejected); "
        f"drained {drain['events']} events "
        f"({'complete' if drain['drained'] else 'schedule not empty'})",
        flush=True,
    )
    return stats


def cmd_serve(args: argparse.Namespace) -> int:
    asyncio.run(_serve(args, args.trace))
    return 0


def cmd_record(args: argparse.Namespace) -> int:
    asyncio.run(_serve(args, args.trace))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    matrix = replay_trace(args.trace, store_path=args.store, workers=args.workers)
    digest = matrix_digest(matrix)
    if args.check:
        again = matrix_digest(replay_trace(args.trace, workers=1))
        parallel = matrix_digest(replay_trace(args.trace, workers=2))
        if digest == again == parallel:
            print(f"replay deterministic: {digest} (x2 replays, 1 vs 2 workers)")
        else:
            print(
                f"REPLAY DRIFT: {digest} vs {again} (repeat) "
                f"vs {parallel} (2 workers)",
                file=sys.stderr,
            )
            return 1
    if args.json:
        print(json.dumps(matrix.to_dict(), sort_keys=True, indent=2))
    else:
        print(matrix.render(per_cell=True))
        print(f"matrix digest {digest}")
    return 0


def cmd_stress(args: argparse.Namespace) -> int:
    client = StressClient(
        args.host, args.port,
        rate=args.rate, duration=args.duration, seed=args.seed,
        session=json.loads(args.session) if args.session else None,
        steer_every=args.steer_every,
    )
    report = asyncio.run(client.run())
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        print(
            f"{report['requests']} requests in {report['wall_seconds']:.2f}s "
            f"({report['achieved_rps']:.1f} rps): "
            f"{report['admitted']} admitted, {report['rejected']} rejected, "
            f"{report['errors']} errors; "
            f"latency p50 {report['latency_p50'] * 1e3:.1f}ms "
            f"p90 {report['latency_p90'] * 1e3:.1f}ms"
        )
    if report["errors"]:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.live",
        description="real-time steering control plane over the DES fabric",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="serve the control plane")
    _add_fabric_flags(p)
    p.add_argument("--trace", default=None, help="record arrivals to this JSONL file")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("record", help="serve with mandatory trace capture")
    _add_fabric_flags(p)
    p.add_argument("--trace", required=True, help="JSONL file to record arrivals to")
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("replay", help="replay a trace as a campaign cell")
    p.add_argument("trace")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--store", default=None, help="persist the cell record here")
    p.add_argument("--check", action="store_true",
                   help="replay x2 and with 2 workers; fail on any drift")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("stress", help="seeded open-loop load against a server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--rate", type=float, default=10.0, help="offered requests/second")
    p.add_argument("--duration", type=float, default=3.0, help="wall seconds")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--steer-every", type=int, default=0,
                   help="steer every N-th admitted session")
    p.add_argument("--session", default=None,
                   help="JSON object merged into every POST /sessions body")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_stress)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        kind = "live" if isinstance(exc, LiveError) else type(exc).__name__
        print(f"{kind} error: {exc}", file=sys.stderr)
        return 2
