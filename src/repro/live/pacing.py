"""Paced wall-clock driver for the DES kernel.

Batch campaigns run the :class:`~repro.des.core.Environment` as fast as
the heap drains; a live control plane instead needs virtual time to
track the wall clock so an HTTP client steering a running session sees
its effects *now*, not after the world has sprinted to quiescence.

:class:`PacedRunner` owns the mapping.  It anchors ``(wall, sim)`` once
and then, every tick, steps all events whose virtual time is due under

    sim_target = anchor_sim + (wall_now - anchor_wall) * rate

sleeping until the next event's wall instant (bounded by ``max_tick``)
when ahead, and counting a **catch-up** whenever a full batch of steps
still leaves due events behind — the paced analogue of a missed frame
deadline.  ``rate`` is sim-seconds per wall-second: ``1.0`` is real
time, ``10.0`` a 10x fast-forward, and ``None`` switches to **turbo**
(as fast as possible, in bounded batches that still yield to the event
loop so HTTP handlers stay live).  :meth:`set_rate` flips between the
modes mid-run and re-anchors cleanly.

Externally injected work (an HTTP handler calling
``controller.offer(...)`` between ticks) lands on the kernel heap
through ``Environment._enqueue``, whose ``on_schedule`` hook the runner
points at :meth:`kick` while running — so a sleep until the *previous*
next-event time is cut short the moment earlier work arrives.  Because
everything shares one asyncio thread, handlers only run while the
runner awaits; no locking is needed anywhere.
"""

from __future__ import annotations

import asyncio
import math
from time import perf_counter
from typing import Optional

from repro.des.core import Environment
from repro.errors import LiveError

#: longest uninterrupted sleep — bounds the cost of any missed wakeup
DEFAULT_MAX_TICK = 0.25
#: events stepped per batch before yielding back to the event loop
DEFAULT_BATCH = 512


def _check_rate(rate: Optional[float]) -> Optional[float]:
    if rate is None:
        return None
    rate = float(rate)
    if not math.isfinite(rate) or rate <= 0.0:
        raise LiveError(f"pacing rate must be a positive finite number or None, got {rate!r}")
    return rate


class PacedRunner:
    """Drive an :class:`Environment` against the wall clock."""

    def __init__(
        self,
        env: Environment,
        rate: Optional[float] = 1.0,
        max_tick: float = DEFAULT_MAX_TICK,
        batch: int = DEFAULT_BATCH,
    ) -> None:
        if max_tick <= 0.0:
            raise LiveError(f"max_tick must be positive, got {max_tick!r}")
        if batch < 1:
            raise LiveError(f"batch must be at least 1, got {batch!r}")
        self.env = env
        self.rate = _check_rate(rate)
        self.max_tick = float(max_tick)
        self.batch = int(batch)
        self._wake: Optional[asyncio.Event] = None
        self._stopping = False
        self._running = False
        self._anchor_wall = 0.0
        self._anchor_sim = env.now
        # -- accounting ------------------------------------------------
        #: ticks that stepped at least one event
        self.ticks = 0
        #: ticks where a full batch still left due events (fell behind)
        self.catchups = 0
        #: worst observed lag behind the wall clock, in wall seconds
        self.max_behind = 0.0
        #: wall seconds spent inside kernel ``step()`` calls
        self.stepping_wall = 0.0
        #: events stepped under this runner
        self.events = 0
        #: sim seconds advanced inside those ``step()`` calls — together
        #: with ``stepping_wall`` this measures how fast the kernel
        #: *actually* converts wall time into sim time, which is the
        #: only sim->wall mapping turbo mode has (see
        #: :attr:`sim_rate`; the live 429 path derives its turbo
        #: Retry-After from it)
        self.sim_stepped = 0.0

    # -- control (callable from handlers on the same loop) -------------

    def kick(self) -> None:
        """Wake the runner early; installed as ``env.on_schedule``."""
        if self._wake is not None:
            self._wake.set()

    def stop(self) -> None:
        """Ask :meth:`run` to return after the current tick."""
        self._stopping = True
        self.kick()

    def set_rate(self, rate: Optional[float]) -> None:
        """Switch pacing rate (or to turbo with ``None``), re-anchoring
        so the new rate applies from *now* rather than replaying the
        past at the new speed."""
        self.rate = _check_rate(rate)
        self._rebase()
        self.kick()

    def _rebase(self) -> None:
        self._anchor_wall = perf_counter()
        self._anchor_sim = self.env.now

    @property
    def sim_rate(self) -> Optional[float]:
        """Measured sim-seconds per wall-second of kernel stepping, or
        ``None`` before any stepping time has accrued.  This is the
        kernel's *drain throughput* (sim time advanced per second spent
        inside ``step()``), i.e. the fastest sustainable pacing rate —
        and in turbo mode the only sim->wall mapping there is, which
        the live 429 path uses to turn a sim-time backlog bound into a
        wall-clock Retry-After."""
        if self.stepping_wall <= 0.0 or self.sim_stepped <= 0.0:
            return None
        return self.sim_stepped / self.stepping_wall

    @property
    def behind(self) -> float:
        """Current lag behind the wall clock, in wall seconds (paced
        mode only; 0.0 when turbo, idle, or keeping up)."""
        if self.rate is None or not self._running:
            return 0.0
        target = self._anchor_sim + (perf_counter() - self._anchor_wall) * self.rate
        nxt = self.env.peek()
        if nxt > target:
            return 0.0
        return (target - nxt) / self.rate

    def stats(self) -> dict:
        """JSON-able accounting snapshot (for ``/statsz`` and benches)."""
        return {
            "rate": self.rate,
            "ticks": self.ticks,
            "catchups": self.catchups,
            "max_behind": self.max_behind,
            "stepping_wall": self.stepping_wall,
            "events": self.events,
            "sim_stepped": self.sim_stepped,
            "sim_rate": self.sim_rate,
            "behind": self.behind,
            "sim_now": self.env.now,
        }

    # -- the loop -------------------------------------------------------

    def _step_due(self, target: float) -> int:
        """Step up to one batch of events due at or before ``target``;
        returns how many were stepped."""
        env = self.env
        peek = env.peek
        t0 = perf_counter()
        sim0 = env.now
        n = 0
        while n < self.batch:
            nxt = peek()
            if nxt > target or nxt == math.inf:
                break
            env.step()
            n += 1
        self.stepping_wall += perf_counter() - t0
        self.sim_stepped += env.now - sim0
        self.events += n
        if n:
            self.ticks += 1
        return n

    async def _sleep(self, delay: Optional[float]) -> None:
        """Sleep up to ``delay`` wall seconds (``None`` = ``max_tick``),
        returning early when :meth:`kick` fires."""
        assert self._wake is not None
        delay = self.max_tick if delay is None else min(delay, self.max_tick)
        if delay <= 0.0:
            await asyncio.sleep(0)
            return
        try:
            await asyncio.wait_for(self._wake.wait(), timeout=delay)
        except asyncio.TimeoutError:
            pass

    async def run(self, until: Optional[float] = None) -> None:
        """Drive the kernel until :meth:`stop` (or sim time ``until``).

        In paced mode virtual time tracks the wall clock at ``rate``
        sim-seconds per wall-second; in turbo mode (``rate is None``)
        the heap drains in bounded batches with a yield between them.
        With ``until=None`` an empty heap is *idle*, not done — the
        runner parks until injected work kicks it.
        """
        if self._running:
            raise LiveError("PacedRunner.run() is already active")
        env = self.env
        self._running = True
        self._stopping = False
        self._wake = asyncio.Event()
        previous_hook = env.on_schedule
        env.on_schedule = self.kick
        self._rebase()
        try:
            while not self._stopping:
                if self.rate is None:
                    target = math.inf if until is None else until
                else:
                    wall = perf_counter()
                    target = self._anchor_sim + (wall - self._anchor_wall) * self.rate
                    if until is not None:
                        target = min(target, until)
                stepped = self._step_due(target)
                nxt = env.peek()
                if nxt <= target and nxt < math.inf:
                    # A full batch and still behind: catch-up pressure.
                    self.catchups += 1
                    if self.rate is not None:
                        lag = (target - nxt) / self.rate
                        if lag > self.max_behind:
                            self.max_behind = lag
                    await asyncio.sleep(0)
                    continue
                # Caught up.  Mirror Environment.run(): a reached
                # deadline advances the clock even with nothing left.
                if self.rate is not None and target > env.now:
                    env.now = target
                if until is not None:
                    if self.rate is None:
                        # Turbo caught-up means nothing due before the
                        # deadline remains — jump straight to it.
                        env.now = until
                        break
                    if env.now >= until:
                        env.now = until
                        break
                self._wake.clear()
                if self.rate is None:
                    if stepped:
                        await asyncio.sleep(0)
                    else:
                        await self._sleep(None)  # idle: park until kicked
                elif (nxt := env.peek()) < math.inf:
                    ahead = (nxt - target) / self.rate
                    await self._sleep(ahead)
                else:
                    await self._sleep(None)
        finally:
            env.on_schedule = previous_hook
            self._running = False
            self._wake = None

    async def finish(self, grace: float = 60.0) -> dict:
        """Graceful drain after :meth:`run` returns: run the remaining
        schedule as fast as possible up to ``now + grace`` sim seconds
        (in bounded batches, yielding between them), so sessions in
        flight at shutdown complete instead of being torn mid-protocol.
        Returns ``{"events": stepped, "drained": fully_drained}``.
        """
        if self._running:
            raise LiveError("finish() while run() is active; call stop() first")
        if grace < 0.0:
            raise LiveError(f"drain grace must be non-negative, got {grace!r}")
        env = self.env
        deadline = env.now + grace
        stepped = 0
        while env.peek() <= deadline:
            stepped += self._step_due(deadline)
            await asyncio.sleep(0)
        return {"events": stepped, "drained": not env.pending}
