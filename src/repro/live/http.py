"""Minimal HTTP/1.1 over asyncio streams — stdlib only, sans-io core.

The live control plane needs exactly enough HTTP to speak JSON with
curl, a browser and the seeded stress client: request/response framing
with ``Content-Length`` bodies, keep-alive, and nothing else (no chunked
transfer, no multipart, no TLS).  Rather than pull in a framework, the
codec is ~200 lines split into a **pure** head parser/encoder — unit
testable byte-for-byte without sockets — and two thin asyncio wrappers
(:func:`read_request` / :func:`read_response`) that frame messages off a
``StreamReader``.

Hard bounds (:data:`MAX_HEAD_BYTES`, :data:`MAX_BODY_BYTES`) make the
server safe to expose on a dev box: an oversized or malformed message
raises :class:`HttpError` with the status the handler should answer
with, and the connection is closed.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional
from urllib.parse import parse_qsl, urlsplit

from repro.errors import LiveError

#: request/status line + headers must fit here (64 KiB, nginx's default)
MAX_HEAD_BYTES = 64 * 1024
#: largest accepted Content-Length (1 MiB — steering bodies are tiny)
MAX_BODY_BYTES = 1 << 20

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_METHODS = {"GET", "HEAD", "POST", "PUT", "PATCH", "DELETE", "OPTIONS"}


class HttpError(LiveError):
    """A message the codec refuses; ``status`` is the answer to send."""

    def __init__(self, status: int, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class Request:
    """One parsed HTTP request (headers lower-cased, body raw bytes)."""

    method: str
    target: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def path(self) -> str:
        return urlsplit(self.target).path

    @property
    def query(self) -> dict[str, str]:
        return dict(parse_qsl(urlsplit(self.target).query))

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    def json(self) -> dict:
        """The body as a JSON object ({} when empty); 400 on garbage."""
        if not self.body:
            return {}
        try:
            doc = json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise HttpError(400, "JSON body must be an object")
        return doc


@dataclass
class Response:
    """One parsed HTTP response (the stress client's half)."""

    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        return json.loads(self.body) if self.body else {}


# -- pure head parsing -------------------------------------------------------


def _parse_headers(lines: list[bytes], what: str) -> dict[str, str]:
    headers: dict[str, str] = {}
    for raw in lines:
        if not raw.strip():
            continue
        if raw[:1].isspace():
            raise HttpError(400, f"{what}: obsolete header line folding")
        name, sep, value = raw.partition(b":")
        if not sep or not name.strip():
            raise HttpError(400, f"{what}: malformed header line {raw[:60]!r}")
        try:
            headers[name.strip().decode("ascii").lower()] = value.strip().decode("latin-1")
        except UnicodeDecodeError:
            raise HttpError(400, f"{what}: non-ASCII header name {name[:60]!r}") from None
    return headers


def parse_request_head(head: bytes) -> Request:
    """Request line + headers -> a body-less :class:`Request`.

    ``head`` is everything up to and including the blank line.  Raises
    :class:`HttpError` carrying the status a server should answer with.
    """
    lines = head.split(b"\r\n")
    parts = lines[0].split(b" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0][:80]!r}")
    try:
        method, target, version = (p.decode("ascii") for p in parts)
    except UnicodeDecodeError:
        raise HttpError(400, "non-ASCII request line") from None
    if method not in _METHODS:
        raise HttpError(405, f"unsupported method {method!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported version {version!r}")
    if not target.startswith("/"):
        raise HttpError(400, f"request target must be origin-form, got {target!r}")
    return Request(method, target, version, _parse_headers(lines[1:], "request"))


def parse_response_head(head: bytes) -> Response:
    """Status line + headers -> a body-less :class:`Response`."""
    lines = head.split(b"\r\n")
    parts = lines[0].split(b" ", 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
        raise HttpError(502, f"malformed status line {lines[0][:80]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(502, f"non-numeric status {parts[1][:10]!r}") from None
    reason = parts[2].decode("latin-1") if len(parts) == 3 else ""
    return Response(status, reason, _parse_headers(lines[1:], "response"))


def _body_length(headers: dict[str, str], what: str) -> int:
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, f"{what}: chunked transfer encoding not supported")
    raw = headers.get("content-length", "0")
    try:
        length = int(raw)
    except ValueError:
        raise HttpError(400, f"{what}: bad Content-Length {raw!r}") from None
    if length < 0:
        raise HttpError(400, f"{what}: negative Content-Length {length}")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"{what}: body of {length} bytes exceeds {MAX_BODY_BYTES}")
    return length


# -- encoding ----------------------------------------------------------------


def json_body(obj: object) -> bytes:
    """The canonical wire form of a JSON payload (sorted keys, compact)."""
    return (json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


def encode_response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Iterable[tuple[str, str]] = (),
    keep_alive: bool = True,
) -> bytes:
    """Serialise one complete response, framing included."""
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if body:
        lines.append(f"Content-Type: {content_type}")
    lines.append(f"Content-Length: {len(body)}")
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def encode_request(
    method: str,
    target: str,
    body: bytes = b"",
    host: str = "localhost",
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> bytes:
    """Serialise one complete request (the stress client's half)."""
    lines = [f"{method} {target} HTTP/1.1", f"Host: {host}"]
    if body:
        lines.append(f"Content-Type: {content_type}")
        lines.append(f"Content-Length: {len(body)}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


# -- asyncio framing ---------------------------------------------------------


async def _read_head(reader: asyncio.StreamReader) -> Optional[bytes]:
    try:
        return await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial.strip():
            return None  # clean EOF between requests
        raise HttpError(400, "connection closed mid-head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"head exceeds {MAX_HEAD_BYTES} bytes") from None


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Frame one request off the stream; None on clean EOF."""
    head = await _read_head(reader)
    if head is None:
        return None
    request = parse_request_head(head)
    length = _body_length(request.headers, "request")
    if length:
        try:
            request.body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body") from None
    return request


async def read_response(reader: asyncio.StreamReader) -> Response:
    """Frame one response off the stream (client side)."""
    head = await _read_head(reader)
    if head is None:
        raise HttpError(502, "connection closed before the response head")
    response = parse_response_head(head)
    length = _body_length(response.headers, "response")
    if length:
        response.body = await reader.readexactly(length)
    return response
