"""Arrival-trace capture and deterministic replay.

Every arrival the live front end offers — admitted *or* rejected — is
appended to a JSONL trace whose line 1 is a header carrying the server's
fabric configuration (sites, queue bounds, placement policy, pacing
rate).  An arrival record keeps both clocks (wall for forensics, sim
for replay), the SLO class, the offer outcome, and the **complete**
:class:`~repro.fleet.spec.ScenarioSpec` constructor fields — name, seed,
step budget, op mix — so replay re-offers the exact sessions, not
look-alikes minted from a suite.

That closes the loop with the campaign layer: :func:`trace_campaign`
turns a trace file into a one-cell
:class:`~repro.campaign.spec.CampaignSpec` whose arrival axis is the
``trace:`` builder (:func:`repro.campaign.axes.build_arrivals` kind
``"trace-file"``), so a production incident replays byte-identically
under ``python -m repro.campaign run`` — same fabric, same admission
decisions, same :class:`~repro.campaign.matrix.MatrixReport` — across
repeated replays and across worker counts.

The file discipline mirrors :class:`repro.campaign.store.ResultStore`:
every append rewrites to a sibling ``.tmp`` and ``os.replace``-s it over
the original, so a killed server never leaves a half-written record
behind a committed one; a torn *trailing* line is dropped on load, a
corrupt interior line is refused loudly.  (The quadratic rewrite cost is
fine at control-plane arrival rates — tens per second, not thousands.)
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import LiveError
from repro.fleet.spec import ScenarioSpec
from repro.load.arrivals import RecordedArrivals

TRACE_SCHEMA = "repro.live/trace-v1"

#: ScenarioSpec constructor fields a trace record round-trips.  ``steps``
#: rides along explicitly so the replayed spec cannot silently re-derive
#: a different budget if the derivation rule ever changes.
SPEC_FIELDS = (
    "name",
    "sim",
    "profile",
    "participants",
    "cadence",
    "duration",
    "steps",
    "sample_interval",
    "compute_time",
    "admission_offset",
    "seed",
    "sim_args",
)


def spec_fields(spec: ScenarioSpec) -> dict:
    """The JSON-able constructor fields of a spec, for a trace record."""
    doc = {name: getattr(spec, name) for name in SPEC_FIELDS}
    doc["sim_args"] = dict(doc["sim_args"])
    return doc


def spec_from_fields(doc: dict) -> ScenarioSpec:
    """Rebuild the exact spec a trace record captured."""
    unknown = set(doc) - set(SPEC_FIELDS)
    if unknown:
        raise LiveError(f"trace spec record has unknown fields {sorted(unknown)}")
    try:
        return ScenarioSpec(**doc)
    except TypeError as exc:
        raise LiveError(f"trace spec record is incomplete: {exc}") from None


class TraceRecorder:
    """Append-only JSONL recorder for one live run's arrivals."""

    def __init__(self, path: pathlib.Path | str, config: dict) -> None:
        self.path = pathlib.Path(path)
        self.arrivals = 0
        self._records: list[dict] = [
            {"kind": "header", "schema": TRACE_SCHEMA, "config": dict(config)}
        ]
        self._closed = False
        self._rewrite()

    @staticmethod
    def _dumps(record: dict) -> str:
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    def _rewrite(self) -> None:
        tmp = self.path.parent / (self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text("\n".join(self._dumps(r) for r in self._records) + "\n")
        os.replace(tmp, self.path)

    def _append(self, record: dict) -> None:
        if self._closed:
            raise LiveError(f"{self.path}: trace already closed")
        self._records.append(record)
        self._rewrite()

    def record_arrival(
        self,
        spec: ScenarioSpec,
        sim: float,
        wall: float,
        cls: str,
        outcome: str,
    ) -> dict:
        """One offered session: ``outcome`` is ``queued`` or ``rejected``."""
        if outcome not in ("queued", "rejected"):
            raise LiveError(f"arrival outcome must be queued|rejected, got {outcome!r}")
        record = {
            "kind": "arrival",
            "index": self.arrivals,
            "wall": wall,
            "sim": sim,
            "cls": cls,
            "outcome": outcome,
            "spec": spec_fields(spec),
        }
        self.arrivals += 1
        self._append(record)
        return record

    def record_event(self, event: str, sim: float, wall: float, **detail) -> None:
        """An observability breadcrumb (admit/abandon/steer/cancel ...).

        Events carry site affinity and queue waits for forensics; replay
        ignores them — the admission stack re-derives every decision.
        """
        self._append({"kind": "event", "event": event, "sim": sim, "wall": wall, **detail})

    def close(self, sim: float, wall: float) -> None:
        """Seal the trace with an end record (idempotent)."""
        if self._closed:
            return
        self._append({"kind": "end", "sim": sim, "wall": wall, "arrivals": self.arrivals})
        self._closed = True


@dataclass
class Trace:
    """A loaded trace: header config, arrival records, breadcrumbs."""

    path: pathlib.Path
    config: dict
    arrivals: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    end: Optional[dict] = None
    #: torn trailing lines dropped on load (0 or 1 normally)
    dropped_lines: int = 0

    @property
    def sealed(self) -> bool:
        return self.end is not None

    def entries(self) -> list[tuple[float, ScenarioSpec]]:
        """Every offered arrival as ``(sim_time, spec)``, replay-ready."""
        return [(rec["sim"], spec_from_fields(rec["spec"])) for rec in self.arrivals]

    @property
    def horizon(self) -> float:
        """The replay horizon: the sealed end time, else just past the
        last arrival (mirroring :class:`TraceArrivals`)."""
        if self.end is not None and self.arrivals:
            return max(float(self.end["sim"]), self.arrivals[-1]["sim"] + 1e-9)
        if self.arrivals:
            return self.arrivals[-1]["sim"] + 1e-9
        raise LiveError(f"{self.path}: trace recorded no arrivals; nothing to replay")

    def arrival_process(self) -> RecordedArrivals:
        return RecordedArrivals(self.entries(), horizon=self.horizon)


def load_trace(path: pathlib.Path | str) -> Trace:
    """Parse and validate a trace file (tolerating one torn tail line)."""
    path = pathlib.Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        raise LiveError(f"cannot read trace {path}: {exc}") from None
    records: list[dict] = []
    bad: list[int] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            bad.append(i)
    if bad:
        if bad != [len(lines) - 1]:
            raise LiveError(
                f"{path}: corrupt non-trailing trace record(s) at line(s) {[i + 1 for i in bad]}"
            )
    if not records:
        raise LiveError(f"{path}: empty trace file")
    head, *rest = records
    if head.get("kind") != "header" or head.get("schema") != TRACE_SCHEMA:
        raise LiveError(f"{path}: first record is not a {TRACE_SCHEMA} header")
    trace = Trace(path=path, config=dict(head.get("config", {})), dropped_lines=len(bad))
    expected_index = 0
    for rec in rest:
        kind = rec.get("kind")
        if kind == "arrival":
            if rec.get("index") != expected_index:
                raise LiveError(
                    f"{path}: arrival record out of order "
                    f"(index {rec.get('index')!r}, expected {expected_index})"
                )
            if "spec" not in rec or "sim" not in rec:
                raise LiveError(f"{path}: arrival record {expected_index} missing sim/spec")
            expected_index += 1
            trace.arrivals.append(rec)
        elif kind == "event":
            trace.events.append(rec)
        elif kind == "end":
            if trace.end is not None:
                raise LiveError(f"{path}: duplicate end record")
            trace.end = rec
        else:
            raise LiveError(f"{path}: unknown trace record kind {kind!r}")
    return trace


#: server-config keys that map straight onto campaign base config
_BASE_KEYS = ("n_sites", "queue_slots", "queue_limit", "registry_shards", "broker_port")


def trace_campaign(path: pathlib.Path | str, name: Optional[str] = None):
    """A one-cell :class:`~repro.campaign.spec.CampaignSpec` replaying a
    recorded trace under the fabric configuration it was captured on.

    The arrival axis point is named ``trace:<stem>`` and carries the
    ``trace-file`` builder kind, so the cell re-reads the trace at run
    time — in any worker process, at any later date.
    """
    from repro.campaign.spec import AxisPoint, CampaignSpec

    trace = load_trace(path)
    config = trace.config
    base = {key: config[key] for key in _BASE_KEYS if key in config}
    base["horizon"] = trace.horizon
    policy_params: dict = {"placement": config.get("placement", "least-loaded")}
    if config.get("autoscale"):
        policy_params["autoscale"] = config["autoscale"]
    stem = pathlib.Path(path).stem
    return CampaignSpec(
        name=name or f"replay-{stem}",
        seed=int(config.get("seed", 0)),
        base=base,
        scenarios=[AxisPoint("live", {})],
        arrivals=[AxisPoint(f"trace:{stem}", {"kind": "trace-file", "path": str(path)})],
        faults=[AxisPoint("none", {})],
        policies=[AxisPoint(config.get("placement", "least-loaded"), policy_params)],
    )
