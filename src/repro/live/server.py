"""The live control plane: HTTP/JSON steering over the paced fabric.

One :class:`LiveServer` owns exactly the stack a campaign cell builds —
:class:`~repro.fleet.driver.FleetDriver` fabric, broker pool,
:class:`~repro.load.admission.AdmissionController` with a placement
policy and optional autoscaler — but drives it with a
:class:`~repro.live.pacing.PacedRunner` instead of
``Environment.run()``, and accepts sessions from the network instead of
an arrival process:

    POST   /sessions              offer a new steering session
    GET    /sessions/{name}       session state + telemetry
    POST   /sessions/{name}/steer queue a live parameter override
    DELETE /sessions/{name}       cancel a running session
    GET    /healthz               liveness probe
    GET    /statsz                counters, pacing stats, backpressure
    GET    /metricsz              Prometheus text exposition (repro.obs)

Everything shares one asyncio thread: handlers mutate the DES world
only between runner ticks, and each mutation lands on the kernel heap
through ``Environment._enqueue``, whose ``on_schedule`` hook wakes the
runner — so admission is a plain synchronous call, exactly the code
path batch campaigns exercise.  A full admission queue answers **429**
with a ``Retry-After`` derived from the queue's minimum remaining
patience.  When a trace path is given, every offer (admitted or not)
is recorded for deterministic replay (:mod:`repro.live.trace`).
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Optional

from repro.campaign.spec import derive_seed
from repro.errors import LiveError, ReproError, SteeringError
from repro.fleet import BrokerPool, FleetDriver
from repro.fleet.spec import ScenarioSpec, mint_spec
from repro.live.http import (
    MAX_HEAD_BYTES,
    HttpError,
    Request,
    encode_response,
    json_body,
    read_request,
)
from repro.live.pacing import PacedRunner
from repro.live.trace import TraceRecorder
from repro.load import AdmissionController, ReactiveAutoscaler, make_policy
from repro.obs import Observability
from repro.obs.protect import BackpressureSignal

#: fabric/pacing knobs; mirrors repro.campaign.runner.DEFAULT_BASE so a
#: recorded trace replays on the fabric it was captured on
DEFAULT_CONFIG = {
    "n_sites": 3,
    "queue_slots": 2,
    "queue_limit": 12,
    "registry_shards": 4,
    "broker_port": 7100,
    "placement": "least-loaded",
    #: ReactiveAutoscaler kwargs, True for defaults, or None/False = off
    "autoscale": None,
    #: sim-seconds per wall-second; None = as fast as possible
    "rate": 1.0,
    "seed": 0,
    #: observability (repro.obs): tracing is False, True, or a path the
    #: span JSONL is written to on shutdown; breakers is True for the
    #: default broker+registry set, a dict of name -> kwargs, or False;
    #: quota is a per-tenant inflight cap (None = unlimited).  These
    #: keys never reach the replay campaign cell (trace_campaign keeps
    #: only the fabric base keys), so traced runs replay unchanged.
    "tracing": False,
    "metrics": True,
    "breakers": True,
    "quota": None,
}

#: hard ceiling on the advertised Retry-After, in wall seconds — deep
#: backlogs and non-finite patience bounds saturate here instead of
#: telling a client to go away for hours (or 500ing on ``ceil(inf)``)
RETRY_AFTER_CAP = 60

#: POST /sessions body keys, passed through to the ScenarioSpec
_SESSION_FIELDS = (
    "sim",
    "profile",
    "participants",
    "duration",
    "cadence",
    "compute_time",
    "sample_interval",
    "sim_args",
)


class LiveServer:
    """Serve the steering fabric over HTTP against the wall clock."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[dict] = None,
        trace_path=None,
        max_tick: float = 0.05,
    ) -> None:
        merged = dict(DEFAULT_CONFIG)
        unknown = set(config or ()) - set(merged)
        if unknown:
            raise LiveError(
                f"unknown live config keys {sorted(unknown)} (allowed: {sorted(merged)})"
            )
        merged.update(config or {})
        self.host = host
        self.port = port
        self.config = merged

        tracing = merged["tracing"]
        self._trace_export = tracing if isinstance(tracing, str) else None
        self.obs = Observability(
            tracing=bool(tracing),
            metrics=bool(merged["metrics"]),
            breakers=merged["breakers"],
            quota=merged["quota"],
        )
        driver = FleetDriver(
            n_sites=int(merged["n_sites"]),
            queue_slots=int(merged["queue_slots"]),
            registry_shards=int(merged["registry_shards"]),
            obs=self.obs,
        )
        self.driver = driver
        self.pool = BrokerPool.build(
            driver.net,
            [site.svc_name for site in driver.sites],
            port=int(merged["broker_port"]),
        )
        self.obs.attach_pool(self.pool)
        self.controller = AdmissionController(
            driver,
            placement=make_policy(merged["placement"], seed=self._placement_seed(trace_path)),
            queue_limit=int(merged["queue_limit"]),
        )
        self.runner = PacedRunner(driver.env, rate=merged["rate"], max_tick=max_tick)
        self.obs.attach_runner(self.runner)
        self.backpressure_signal = BackpressureSignal(self.controller, runner=self.runner)
        self.obs.attach_backpressure(self.backpressure_signal)
        autoscale = merged["autoscale"]
        if autoscale not in (None, False):
            kwargs = dict(autoscale) if isinstance(autoscale, dict) else {}
            if kwargs.pop("use_backpressure", False) and "pressure" not in kwargs:
                kwargs["pressure"] = self.backpressure_signal
            ReactiveAutoscaler(self.controller, **kwargs)

        self.recorder: Optional[TraceRecorder] = None
        if trace_path is not None:
            self.recorder = TraceRecorder(trace_path, config=merged)
        self.controller.observers.append(self._on_queue_event)
        driver.session_observers.append(self._on_session_event)

        #: every session ever offered: name -> latest lifecycle state
        self.session_states: dict[str, str] = {}
        self._counter = 0
        self.stats = {
            "requests": 0,
            "admitted": 0,
            "rejected": 0,
            "steers": 0,
            "cancels": 0,
            "bad_requests": 0,
        }
        self.obs.attach_http_stats(self.stats)
        self._server: Optional[asyncio.AbstractServer] = None
        self._run_task: Optional[asyncio.Task] = None

    def _placement_seed(self, trace_path) -> int:
        """The placement sub-seed the *replay* campaign cell will derive,
        so seeded policies (p2c) make identical choices live and
        replayed.  Mirrors ``trace_campaign`` + ``CellSpec.subseed``."""
        seed = int(self.config["seed"])
        if trace_path is None:
            return derive_seed(seed, "placement")
        import pathlib

        cell_id = "/".join(
            ("live", f"trace:{pathlib.Path(trace_path).stem}", "none", self.config["placement"])
        )
        return derive_seed(derive_seed(seed, cell_id), "placement")

    # -- trace observers -----------------------------------------------

    def _on_queue_event(self, kind: str, **detail) -> None:
        spec = detail.get("spec")
        name = spec.name if spec is not None else None
        if kind in ("offer", "reject", "abandon", "admit") and name is not None:
            self.session_states[name] = {
                "offer": "queued",
                "reject": "rejected",
                "abandon": "abandoned",
                "admit": "running",
            }[kind]
        if self.recorder is None:
            return
        if kind == "admit":
            self.recorder.record_event(
                "admit",
                sim=self.driver.env.now,
                wall=time.time(),
                name=name,
                cls=detail.get("cls"),
                site=detail.get("site"),
                wait=detail.get("wait"),
            )
        elif kind == "abandon":
            self.recorder.record_event(
                "abandon",
                sim=self.driver.env.now,
                wall=time.time(),
                name=name,
                cls=detail.get("cls"),
            )

    def _on_session_event(self, kind: str, name: str, site_index: int) -> None:
        if kind in ("complete", "fail", "cancel"):
            self.session_states[name] = {
                "complete": "completed",
                "fail": "failed",
                "cancel": "cancelled",
            }[kind]
            if self.recorder is not None:
                self.recorder.record_event(
                    kind, sim=self.driver.env.now, wall=time.time(), name=name, site=site_index
                )

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the paced kernel."""
        if self._server is not None:
            raise LiveError("server already started")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=MAX_HEAD_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._run_task = asyncio.create_task(self.runner.run())

    async def shutdown(self, grace: float = 60.0) -> dict:
        """Stop accepting, drain the schedule, seal the trace."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._run_task is not None:
            self.runner.stop()
            await self._run_task
            self._run_task = None
        drain = await self.runner.finish(grace)
        if self.recorder is not None:
            self.recorder.close(sim=self.driver.env.now, wall=time.time())
        if self._trace_export is not None:
            self.obs.write_trace(self._trace_export)
        return drain

    async def serve_until(self, stop: asyncio.Event, grace: float = 60.0) -> dict:
        """Convenience: start, wait for the stop signal, shut down."""
        await self.start()
        try:
            await stop.wait()
        finally:
            return await self.shutdown(grace)

    # -- connection handling ---------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    self.stats["bad_requests"] += 1
                    writer.write(
                        encode_response(
                            exc.status, json_body({"error": exc.detail}), keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, body, content_type, extra = self._route(request)
                writer.write(
                    encode_response(
                        status,
                        body,
                        content_type=content_type,
                        extra_headers=extra,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _route(self, request: Request) -> tuple[int, bytes, str, list]:
        """Dispatch one request; synchronous on purpose — the DES world
        is only ever touched between runner awaits.  Returns the encoded
        body and its content type: JSON everywhere except ``/metricsz``,
        whose Prometheus exposition is plain text."""
        self.stats["requests"] += 1
        try:
            status, payload, extra = self._dispatch(request)
        except HttpError as exc:
            self.stats["bad_requests"] += 1
            status, payload, extra = exc.status, {"error": exc.detail}, []
        except (SteeringError, LiveError) as exc:
            self.stats["bad_requests"] += 1
            status, payload, extra = 400, {"error": str(exc)}, []
        except ReproError as exc:
            status, payload, extra = 500, {"error": f"{type(exc).__name__}: {exc}"}, []
        if isinstance(payload, bytes):
            return status, payload, "text/plain; version=0.0.4; charset=utf-8", extra
        return status, json_body(payload), "application/json", extra

    def _dispatch(self, request: Request) -> tuple[int, dict, list]:
        method, path = request.method, request.path
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, f"{method} {path}")
            return 200, self._healthz(), []
        if path == "/statsz":
            if method != "GET":
                raise HttpError(405, f"{method} {path}")
            return 200, self.statsz(), []
        if path == "/metricsz":
            if method != "GET":
                raise HttpError(405, f"{method} {path}")
            return 200, self.metricsz(), []
        if path == "/sessions":
            if method != "POST":
                raise HttpError(405, f"{method} {path}")
            return self._post_session(request)
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "sessions":
            name = parts[1]
            if len(parts) == 2:
                if method == "GET":
                    return 200, self._get_session(name), []
                if method == "DELETE":
                    return self._delete_session(name)
                raise HttpError(405, f"{method} {path}")
            if len(parts) == 3 and parts[2] == "steer":
                if method != "POST":
                    raise HttpError(405, f"{method} {path}")
                return self._steer_session(name, request)
        raise HttpError(404, f"no route for {method} {path}")

    # -- endpoints -------------------------------------------------------

    def _healthz(self) -> dict:
        return {
            "ok": True,
            "sim_now": self.driver.env.now,
            "active": len(self.driver.active),
            "queued": self.controller.queue_depth,
        }

    def metricsz(self) -> bytes:
        """The Prometheus text exposition, UTF-8 encoded.

        503 when the server was built with ``metrics: False`` — a
        scraper must see the difference between "no metrics here" and an
        empty-but-healthy registry."""
        if self.obs.metrics is None:
            raise HttpError(503, "metrics are disabled in this server's config")
        return self.obs.metrics.render().encode("utf-8")

    def statsz(self) -> dict:
        queue = self.driver.telemetry.queue
        return {
            "server": dict(self.stats),
            "sessions": {
                "offered": self._counter,
                "active": len(self.driver.active),
                "states": dict(self.session_states),
            },
            "pacing": self.runner.stats(),
            "backpressure": self.controller.backpressure(),
            "queue": {
                "offered": queue.offered,
                "admitted": queue.admitted,
                "rejected": queue.rejected,
                "abandoned": queue.abandoned,
            }
            if queue is not None
            else None,
            "sites": len(self.driver.sites),
            "config": dict(self.config),
        }

    def _retry_after_wall(self) -> int:
        """The 429 Retry-After header, in whole wall seconds (>= 1).

        Paced mode converts the controller's sim-second bound at the
        pacing rate.  Turbo mode (``rate is None``) has no fixed
        sim->wall mapping, so the bound is converted at the kernel's
        *measured* drain throughput (:attr:`PacedRunner.sim_rate`, the
        catch-up-pressure signal); before any throughput has been
        measured the backpressure scalar scales the ceiling instead —
        a fuller queue backs clients off harder.  Either way the
        result is clamped to :data:`RETRY_AFTER_CAP`, so a pathological
        (infinite-patience) sim bound saturates the header instead of
        overflowing ``math.ceil`` into a 500 on the 429 path.
        """
        sim = self.controller.retry_after()
        rate = self.runner.rate
        if rate is None:
            rate = self.runner.sim_rate
        if rate is not None and math.isfinite(sim):
            return max(1, min(RETRY_AFTER_CAP, math.ceil(sim / rate)))
        pressure = self.backpressure_signal.pressure()
        return max(1, math.ceil(pressure * RETRY_AFTER_CAP))

    def _post_session(self, request: Request) -> tuple[int, dict, list]:
        doc = request.json()
        unknown = set(doc) - set(_SESSION_FIELDS)
        if unknown:
            raise HttpError(
                400,
                f"unknown session fields {sorted(unknown)} (allowed: {sorted(_SESSION_FIELDS)})",
            )
        try:
            proto = ScenarioSpec(name="live-proto", **doc)
        except (SteeringError, TypeError) as exc:
            raise HttpError(400, f"bad session spec: {exc}") from None
        spec = mint_spec(proto, self._counter, "live", digits=5)
        self._counter += 1
        cls = self.controller.classifier(spec)
        env = self.driver.env
        accepted = self.controller.offer(spec)
        if self.recorder is not None:
            self.recorder.record_arrival(
                spec,
                sim=env.now,
                wall=time.time(),
                cls=cls.name,
                outcome="queued" if accepted else "rejected",
            )
        if not accepted:
            self.stats["rejected"] += 1
            retry = self._retry_after_wall()
            payload = {
                "error": "admission queue full",
                "name": spec.name,
                "retry_after": retry,
                "backpressure": self.controller.backpressure(),
            }
            return 429, payload, [("Retry-After", str(retry))]
        self.stats["admitted"] += 1
        payload = {
            "name": spec.name,
            "class": cls.name,
            "state": "queued",
            "sim_now": env.now,
        }
        return 202, payload, []

    def _get_session(self, name: str) -> dict:
        state = self.session_states.get(name)
        if state is None:
            raise HttpError(404, f"unknown session {name!r}")
        payload = {
            "name": name,
            "state": state,
            "site": self.driver.site_of.get(name),
            "sim_now": self.driver.env.now,
        }
        tel = self.driver.telemetry.sessions.get(name)
        if tel is not None:
            payload["telemetry"] = {
                "ops": tel.ops,
                "timeouts": tel.timeouts,
                "errors": tel.errors,
                "completed": tel.completed,
                "failure": tel.failure,
                "admitted_at": tel.admitted_at,
                "finished_at": tel.finished_at,
            }
        return payload

    def _steer_session(self, name: str, request: Request) -> tuple[int, dict, list]:
        if name not in self.session_states:
            raise HttpError(404, f"unknown session {name!r}")
        value = request.json().get("value")
        if not self.driver.request_steer(name, value):
            state = self.session_states[name]
            raise HttpError(409, f"session {name!r} is not running (state: {state})")
        self.stats["steers"] += 1
        if self.recorder is not None:
            self.recorder.record_event(
                "steer", sim=self.driver.env.now, wall=time.time(), name=name, value=value
            )
        pending = len(self.driver.steer_requests.get(name, ()))
        return 202, {"name": name, "state": "running", "pending_steers": pending}, []

    def _delete_session(self, name: str) -> tuple[int, dict, list]:
        if name not in self.session_states:
            raise HttpError(404, f"unknown session {name!r}")
        if not self.driver.cancel_session(name, reason="client request"):
            state = self.session_states[name]
            raise HttpError(409, f"session {name!r} is not running (state: {state})")
        self.stats["cancels"] += 1
        if self.recorder is not None:
            self.recorder.record_event(
                "cancel_request", sim=self.driver.env.now, wall=time.time(), name=name
            )
        return 202, {"name": name, "state": "cancelling"}, []
