"""The steering control protocol: commands, replies, sample messages.

Messages are plain dataclasses with a symmetric wire form (dicts through
:mod:`repro.wire.codec`) so the same protocol rides every transport in the
paper: direct links, VISIT receive-requests, the UNICORE proxy relay, and
OGSA service calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ProtocolError


@dataclass
class SetParam:
    """Change a steered parameter (the miscibility slider of section 2.2)."""

    name: str
    value: Any
    seq: int = 0
    sender: str = ""


@dataclass
class Pause:
    seq: int = 0
    sender: str = ""


@dataclass
class Resume:
    seq: int = 0
    sender: str = ""


@dataclass
class Stop:
    seq: int = 0
    sender: str = ""


@dataclass
class CheckpointCmd:
    """Request a checkpoint; the ack carries its id (migration input)."""

    seq: int = 0
    sender: str = ""


@dataclass
class GetStatus:
    seq: int = 0
    sender: str = ""


@dataclass
class Ack:
    """Reply to a command: ok/error plus an optional result payload."""

    seq: int
    ok: bool
    command: str
    error: str = ""
    result: Any = None


@dataclass
class StatusReport:
    """Monitored values + steered-parameter snapshot, sent on request."""

    step: int
    time: float
    observables: dict = field(default_factory=dict)
    parameters: dict = field(default_factory=dict)
    paused: bool = False


@dataclass
class SampleMsg:
    """One emitted visualization sample (section 2.1: the simulation
    "periodically ... emits 'samples' for consumption by the
    visualization component")."""

    seq: int
    step: int
    data: dict = field(default_factory=dict)
    source: str = ""


_TYPES = {
    cls.__name__: cls
    for cls in (
        SetParam,
        Pause,
        Resume,
        Stop,
        CheckpointCmd,
        GetStatus,
        Ack,
        StatusReport,
        SampleMsg,
    )
}

COMMAND_TYPES = (SetParam, Pause, Resume, Stop, CheckpointCmd, GetStatus)


def encode_message(msg: Any) -> dict:
    """Dataclass -> wire dict with a ``_kind`` discriminator."""
    kind = type(msg).__name__
    if kind not in _TYPES:
        raise ProtocolError(f"not a steering message: {msg!r}")
    out = {"_kind": kind}
    out.update(msg.__dict__)
    return out


def decode_message(payload: dict) -> Any:
    """Wire dict -> dataclass instance."""
    if not isinstance(payload, dict) or "_kind" not in payload:
        raise ProtocolError(f"malformed steering message: {payload!r}")
    kind = payload["_kind"]
    cls = _TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown steering message kind {kind!r}")
    kwargs = {k: v for k, v in payload.items() if k != "_kind"}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ProtocolError(f"bad fields for {kind}: {exc}") from None
