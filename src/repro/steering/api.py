"""Application-side steering instrumentation.

:class:`SteeredApplication` wraps any :class:`repro.sims.base.Simulation`
and gives it the RealityGrid/VISIT application surface:

* parameters are auto-registered from ``sim.steerable_parameters()`` and
  ``sim.observables()``;
* the main loop calls :meth:`step_once`, which polls attached control
  links, applies commands, advances the simulation if not paused, and
  emits samples every ``sample_interval`` steps;
* *everything is initiated by the application* — a dead or slow steering
  client can never block the simulation, which is the central VISIT design
  goal (section 3.2).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SteeringError
from repro.steering.control import (
    Ack,
    CheckpointCmd,
    GetStatus,
    Pause,
    Resume,
    SampleMsg,
    SetParam,
    StatusReport,
    Stop,
)
from repro.steering.params import ParameterDef, ParameterRegistry
from repro.util.ids import IdAllocator


class LinkAdapter:
    """Adapts a :class:`repro.net.Connection` to the poll-style duplex
    interface (``send`` / ``poll``) the steering layer uses.

    In-memory :class:`repro.net.SyncPipe` endpoints already satisfy the
    interface and need no adapter.  ``poll`` is the connection's
    ``try_recv`` bound directly — service pumps call it hundreds of
    thousands of times, so the extra frame of a forwarding method is
    measurable.
    """

    __slots__ = ("_conn", "poll")

    def __init__(self, conn) -> None:
        self._conn = conn
        self.poll = conn.try_recv

    def send(self, obj: Any, size: Optional[int] = None) -> None:
        self._conn.send(obj, size=size)

    # -- parked-pump support (see :func:`parked_tick`) ---------------------

    def arrival(self):
        """DES event resolving with the next delivered payload.

        Consumes the head of the connection's inbox; pumps that park on
        this must hand the payload back via :meth:`requeue` before
        resuming their normal poll loop.
        """
        return self._conn.inbox.get()

    def requeue(self, item: Any) -> None:
        """Put a consumed arrival back at the head of the inbox."""
        self._conn.inbox.items.appendleft(item)


def parked_tick(env, link, tick: float):
    """Generator: suspend an idle poll-loop until its next useful round.

    A pump that polls ``link`` every ``tick`` seconds spends nearly all
    of its rounds finding nothing — at fleet scale those empty rounds
    dominate the event count.  This helper is virtual-time-equivalent to
    the polling loop but costs events only when messages actually flow:
    it parks on the link's arrival event, then wakes at the first point
    of the pump's tick grid at or after the arrival.

    The grid is replayed by repeated float addition from the time of the
    idle round (exactly the additions the polling loop would have
    performed), and the wake uses :meth:`Environment.timeout_until`, so
    the poll times — and therefore every downstream latency — are
    bit-identical to the polling implementation.  The consumed arrival
    is pushed back at the head of the link's queue, preserving order,
    and any close-sentinel is re-examined by the caller's normal
    ``poll`` path at the grid time, exactly as before.
    """
    t = env.now
    item = yield link.arrival()
    now = env.now
    t = t + tick
    while t < now:
        t = t + tick
    if t > now:
        yield env.timeout_until(t)
    link.requeue(item)


class SteeredApplication:
    """A simulation instrumented for (collaborative) steering."""

    def __init__(
        self,
        sim,
        name: str = "app",
        sample_interval: int = 1,
        param_defs: Optional[list[ParameterDef]] = None,
    ) -> None:
        if sample_interval < 1:
            raise SteeringError("sample_interval must be >= 1")
        self.sim = sim
        self.name = name
        self.sample_interval = sample_interval
        self.registry = ParameterRegistry()
        self._control_links: list = []
        self._sample_sinks: list = []
        self.paused = False
        self.stopped = False
        self.commands_applied = 0
        self.samples_emitted = 0
        self._sample_seq = 0
        self._ckpt_ids = IdAllocator(f"{name}-ckpt")
        self.checkpoints: dict[str, dict] = {}

        overrides = {d.name: d for d in (param_defs or [])}
        for pname in sim.steerable_parameters():
            definition = overrides.get(
                pname, ParameterDef(pname, kind="steered")
            )
            self.registry.register(
                definition,
                getter=lambda n=pname: self.sim.steerable_parameters()[n],
                setter=lambda v, n=pname: self.sim.set_parameter(n, v),
            )
        for oname in sim.observables():
            if oname in self.registry:
                continue
            self.registry.register(
                ParameterDef(oname, kind="monitored"),
                getter=lambda n=oname: self.sim.observables()[n],
            )

    # -- wiring -----------------------------------------------------------

    def attach_control(self, link) -> None:
        """Attach a duplex control link (client, service, or proxy end)."""
        self._control_links.append(link)

    def attach_sample_sink(self, link) -> None:
        """Attach a sink that receives emitted samples."""
        self._sample_sinks.append(link)

    # -- command processing -----------------------------------------------------

    def process_control(self) -> int:
        """Drain all control links and apply commands; returns how many.

        Non-blocking by construction; failures are reported back as error
        acks, never raised into the simulation loop.
        """
        applied = 0
        for link in self._control_links:
            while True:
                ok, msg = link.poll()
                if not ok:
                    break
                applied += self._apply(link, msg)
        return applied

    def _apply(self, link, msg) -> int:
        if isinstance(msg, SetParam):
            try:
                self.registry.set(msg.name, msg.value)
            except SteeringError as exc:
                link.send(Ack(msg.seq, False, "SetParam", error=str(exc)))
                return 0
            link.send(
                Ack(msg.seq, True, "SetParam", result=self.registry.get(msg.name))
            )
        elif isinstance(msg, Pause):
            self.paused = True
            link.send(Ack(msg.seq, True, "Pause"))
        elif isinstance(msg, Resume):
            self.paused = False
            link.send(Ack(msg.seq, True, "Resume"))
        elif isinstance(msg, Stop):
            self.stopped = True
            link.send(Ack(msg.seq, True, "Stop"))
        elif isinstance(msg, CheckpointCmd):
            try:
                ckpt_id = self._ckpt_ids.next()
                self.checkpoints[ckpt_id] = self.sim.checkpoint()
                link.send(Ack(msg.seq, True, "CheckpointCmd", result=ckpt_id))
            except SteeringError as exc:
                link.send(Ack(msg.seq, False, "CheckpointCmd", error=str(exc)))
                return 0
        elif isinstance(msg, GetStatus):
            link.send(self.status())
        else:
            link.send(
                Ack(
                    getattr(msg, "seq", -1),
                    False,
                    type(msg).__name__,
                    error="unknown command",
                )
            )
            return 0
        self.commands_applied += 1
        return 1

    def status(self) -> StatusReport:
        return StatusReport(
            step=self.sim.step_count,
            time=self.sim.time,
            observables=self.sim.observables(),
            parameters={
                n: self.registry.get(n) for n in self.registry.names("steered")
            },
            paused=self.paused,
        )

    # -- sample emission -------------------------------------------------------

    def emit_sample(self) -> SampleMsg:
        """Emit one sample to every sink regardless of the interval."""
        self._sample_seq += 1
        msg = SampleMsg(
            seq=self._sample_seq,
            step=self.sim.step_count,
            data=self.sim.sample(),
            source=self.name,
        )
        for sink in self._sample_sinks:
            sink.send(msg)
        self.samples_emitted += 1
        return msg

    # -- main loop ---------------------------------------------------------------

    def step_once(self) -> bool:
        """One instrumented iteration; returns False once stopped."""
        self.process_control()
        if self.stopped:
            return False
        if not self.paused:
            self.sim.step()
            if self.sim.step_count % self.sample_interval == 0:
                self.emit_sample()
        return True

    def run(self, max_steps: int) -> int:
        """Run until stopped or ``max_steps`` simulation steps advanced.

        Note that a paused application still polls its control links (that
        is how it can be resumed).
        """
        advanced = 0
        while advanced < max_steps:
            before = self.sim.step_count
            if not self.step_once():
                break
            if self.sim.step_count > before:
                advanced += 1
            elif self.paused:
                # Paused and nothing to do: in the synchronous harness the
                # caller decides when to poll again.
                break
        return advanced
