"""Application-side steering instrumentation.

:class:`SteeredApplication` wraps any :class:`repro.sims.base.Simulation`
and gives it the RealityGrid/VISIT application surface:

* parameters are auto-registered from ``sim.steerable_parameters()`` and
  ``sim.observables()``;
* the main loop calls :meth:`step_once`, which polls attached control
  links, applies commands, advances the simulation if not paused, and
  emits samples every ``sample_interval`` steps;
* *everything is initiated by the application* — a dead or slow steering
  client can never block the simulation, which is the central VISIT design
  goal (section 3.2).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SteeringError
from repro.steering.control import (
    Ack,
    CheckpointCmd,
    GetStatus,
    Pause,
    Resume,
    SampleMsg,
    SetParam,
    StatusReport,
    Stop,
)
from repro.steering.params import ParameterDef, ParameterRegistry
from repro.util.ids import IdAllocator


class LinkAdapter:
    """Adapts a :class:`repro.net.Connection` to the poll-style duplex
    interface (``send`` / ``poll``) the steering layer uses.

    In-memory :class:`repro.net.SyncPipe` endpoints already satisfy the
    interface and need no adapter.
    """

    def __init__(self, conn) -> None:
        self._conn = conn

    def send(self, obj: Any, size: Optional[int] = None) -> None:
        self._conn.send(obj, size=size)

    def poll(self):
        return self._conn.try_recv()


class SteeredApplication:
    """A simulation instrumented for (collaborative) steering."""

    def __init__(
        self,
        sim,
        name: str = "app",
        sample_interval: int = 1,
        param_defs: Optional[list[ParameterDef]] = None,
    ) -> None:
        if sample_interval < 1:
            raise SteeringError("sample_interval must be >= 1")
        self.sim = sim
        self.name = name
        self.sample_interval = sample_interval
        self.registry = ParameterRegistry()
        self._control_links: list = []
        self._sample_sinks: list = []
        self.paused = False
        self.stopped = False
        self.commands_applied = 0
        self.samples_emitted = 0
        self._sample_seq = 0
        self._ckpt_ids = IdAllocator(f"{name}-ckpt")
        self.checkpoints: dict[str, dict] = {}

        overrides = {d.name: d for d in (param_defs or [])}
        for pname in sim.steerable_parameters():
            definition = overrides.get(
                pname, ParameterDef(pname, kind="steered")
            )
            self.registry.register(
                definition,
                getter=lambda n=pname: self.sim.steerable_parameters()[n],
                setter=lambda v, n=pname: self.sim.set_parameter(n, v),
            )
        for oname in sim.observables():
            if oname in self.registry:
                continue
            self.registry.register(
                ParameterDef(oname, kind="monitored"),
                getter=lambda n=oname: self.sim.observables()[n],
            )

    # -- wiring -----------------------------------------------------------

    def attach_control(self, link) -> None:
        """Attach a duplex control link (client, service, or proxy end)."""
        self._control_links.append(link)

    def attach_sample_sink(self, link) -> None:
        """Attach a sink that receives emitted samples."""
        self._sample_sinks.append(link)

    # -- command processing -----------------------------------------------------

    def process_control(self) -> int:
        """Drain all control links and apply commands; returns how many.

        Non-blocking by construction; failures are reported back as error
        acks, never raised into the simulation loop.
        """
        applied = 0
        for link in self._control_links:
            while True:
                ok, msg = link.poll()
                if not ok:
                    break
                applied += self._apply(link, msg)
        return applied

    def _apply(self, link, msg) -> int:
        if isinstance(msg, SetParam):
            try:
                self.registry.set(msg.name, msg.value)
            except SteeringError as exc:
                link.send(Ack(msg.seq, False, "SetParam", error=str(exc)))
                return 0
            link.send(
                Ack(msg.seq, True, "SetParam", result=self.registry.get(msg.name))
            )
        elif isinstance(msg, Pause):
            self.paused = True
            link.send(Ack(msg.seq, True, "Pause"))
        elif isinstance(msg, Resume):
            self.paused = False
            link.send(Ack(msg.seq, True, "Resume"))
        elif isinstance(msg, Stop):
            self.stopped = True
            link.send(Ack(msg.seq, True, "Stop"))
        elif isinstance(msg, CheckpointCmd):
            try:
                ckpt_id = self._ckpt_ids.next()
                self.checkpoints[ckpt_id] = self.sim.checkpoint()
                link.send(Ack(msg.seq, True, "CheckpointCmd", result=ckpt_id))
            except SteeringError as exc:
                link.send(Ack(msg.seq, False, "CheckpointCmd", error=str(exc)))
                return 0
        elif isinstance(msg, GetStatus):
            link.send(self.status())
        else:
            link.send(
                Ack(
                    getattr(msg, "seq", -1),
                    False,
                    type(msg).__name__,
                    error="unknown command",
                )
            )
            return 0
        self.commands_applied += 1
        return 1

    def status(self) -> StatusReport:
        return StatusReport(
            step=self.sim.step_count,
            time=self.sim.time,
            observables=self.sim.observables(),
            parameters={
                n: self.registry.get(n) for n in self.registry.names("steered")
            },
            paused=self.paused,
        )

    # -- sample emission -------------------------------------------------------

    def emit_sample(self) -> SampleMsg:
        """Emit one sample to every sink regardless of the interval."""
        self._sample_seq += 1
        msg = SampleMsg(
            seq=self._sample_seq,
            step=self.sim.step_count,
            data=self.sim.sample(),
            source=self.name,
        )
        for sink in self._sample_sinks:
            sink.send(msg)
        self.samples_emitted += 1
        return msg

    # -- main loop ---------------------------------------------------------------

    def step_once(self) -> bool:
        """One instrumented iteration; returns False once stopped."""
        self.process_control()
        if self.stopped:
            return False
        if not self.paused:
            self.sim.step()
            if self.sim.step_count % self.sample_interval == 0:
                self.emit_sample()
        return True

    def run(self, max_steps: int) -> int:
        """Run until stopped or ``max_steps`` simulation steps advanced.

        Note that a paused application still polls its control links (that
        is how it can be resumed).
        """
        advanced = 0
        while advanced < max_steps:
            before = self.sim.step_count
            if not self.step_once():
                break
            if self.sim.step_count > before:
                advanced += 1
            elif self.paused:
                # Paused and nothing to do: in the synchronous harness the
                # caller decides when to poll again.
                break
        return advanced
