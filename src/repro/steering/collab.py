"""The external control-state server of section 3.3.

"Like video and audio, the exchange of control information between the
visualizations is sensitive to latency if a 'sense of presence' is to be
created...  Therefore we do currently not use UNICORE communication
mechanisms for that purpose.  Instead, we have implemented an external
server that collects and redistributes the control data.  This server
allows to assign different roles to the participants: one role allows to
change visualization parameters like the view angle and a second role is
just for passive viewers."

The server keeps a keyed state dictionary (view angle, cutting-plane
position, thresholds...).  Controllers may update keys; every update is
redistributed to all other participants.  Viewers only receive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SteeringError


@dataclass
class StateUpdate:
    """One control-state change: key, value, origin, version."""

    key: str
    value: Any
    origin: str
    version: int = 0


@dataclass
class _Member:
    name: str
    link: object
    role: str  # "controller" | "viewer"
    updates_sent: int = 0
    updates_received: int = 0
    rejected: int = 0


class ControlStateServer:
    """Collects and redistributes low-latency control data."""

    ROLES = ("controller", "viewer")

    def __init__(self) -> None:
        self._members: dict[str, _Member] = {}
        self.state: dict[str, Any] = {}
        self.versions: dict[str, int] = {}
        self._version_counter = 0

    # -- membership --------------------------------------------------------

    def join(self, name: str, link, role: str = "viewer") -> None:
        if role not in self.ROLES:
            raise SteeringError(f"role must be one of {self.ROLES}, got {role!r}")
        if name in self._members:
            raise SteeringError(f"member {name!r} already joined")
        self._members[name] = _Member(name, link, role)
        # Late joiners get the full current state so their view converges.
        for key in sorted(self.state):
            link.send(
                StateUpdate(key, self.state[key], origin="<server>",
                            version=self.versions[key])
            )

    def leave(self, name: str) -> None:
        if name not in self._members:
            raise SteeringError(f"unknown member {name!r}")
        del self._members[name]

    def set_role(self, name: str, role: str) -> None:
        if role not in self.ROLES:
            raise SteeringError(f"bad role {role!r}")
        member = self._members.get(name)
        if member is None:
            raise SteeringError(f"unknown member {name!r}")
        member.role = role

    def members(self) -> dict[str, str]:
        return {m.name: m.role for m in self._members.values()}

    # -- traffic -----------------------------------------------------------------

    def pump(self) -> dict:
        """Collect updates from controllers; redistribute to everyone else."""
        stats = {"applied": 0, "rejected": 0, "redistributed": 0}
        for member in list(self._members.values()):
            while True:
                ok, msg = member.link.poll()
                if not ok:
                    break
                if not isinstance(msg, StateUpdate):
                    member.rejected += 1
                    stats["rejected"] += 1
                    continue
                if member.role != "controller":
                    member.rejected += 1
                    stats["rejected"] += 1
                    continue
                self._version_counter += 1
                update = StateUpdate(
                    msg.key, msg.value, origin=member.name,
                    version=self._version_counter,
                )
                self.state[msg.key] = msg.value
                self.versions[msg.key] = update.version
                member.updates_sent += 1
                stats["applied"] += 1
                for other in self._members.values():
                    if other.name == member.name:
                        continue
                    other.link.send(update)
                    other.updates_received += 1
                    stats["redistributed"] += 1
        return stats
