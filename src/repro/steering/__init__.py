"""The steering core: the paper's primary contribution.

RealityGrid-style computational steering (section 2): an application is
*instrumented* with a lean API — it registers steerable parameters, emits
samples for visualization, and polls for control messages at points it
chooses (so steering can never preempt the simulation, matching both the
RealityGrid API and VISIT's simulation-initiates-everything rule).

On top of the per-application surface sit the *collaborative* pieces
(sections 2.4, 3.3, 4): a session with master/observer roles and
master-token passing, and the low-latency control-state server that
"collects and redistributes the control data" (view angles, cutting-plane
parameters) outside the heavyweight middleware path.

Mid-session migration of the computation (section 2.4: "RealityGrid is
developing the ability to migrate both computation and visualization
within a session without any disturbance") is implemented over the
checkpoint/restore surface.
"""

from repro.steering.params import ParameterDef, ParameterRegistry
from repro.steering.control import (
    Ack,
    CheckpointCmd,
    GetStatus,
    Pause,
    Resume,
    SampleMsg,
    SetParam,
    StatusReport,
    Stop,
    decode_message,
    encode_message,
)
from repro.steering.api import LinkAdapter, SteeredApplication
from repro.steering.client import SteeringClient
from repro.steering.session import CollaborativeSession, Role
from repro.steering.collab import ControlStateServer
from repro.steering.migration import migrate_simulation
from repro.steering.runner import steered_app_process
from repro.steering.orchestrator import (
    RealityGridOrchestrator,
    make_outbound_app_factory,
)

__all__ = [
    "ParameterDef",
    "ParameterRegistry",
    "SetParam",
    "Pause",
    "Resume",
    "Stop",
    "CheckpointCmd",
    "GetStatus",
    "Ack",
    "StatusReport",
    "SampleMsg",
    "encode_message",
    "decode_message",
    "SteeredApplication",
    "LinkAdapter",
    "SteeringClient",
    "CollaborativeSession",
    "Role",
    "ControlStateServer",
    "migrate_simulation",
    "steered_app_process",
    "RealityGridOrchestrator",
    "make_outbound_app_factory",
]
