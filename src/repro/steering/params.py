"""Steerable / monitored parameter definitions.

The RealityGrid project "has defined APIs for the steering calls which can
be used to link from the application to the services" (section 2.3).
Parameters are the core of that API: each has a name, a kind (steered
parameters can be changed by the client; monitored are read-only
diagnostics), an optional numeric range, and a current value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import SteeringError


@dataclass
class ParameterDef:
    """Declaration of one steerable or monitored parameter."""

    name: str
    kind: str = "steered"  # "steered" | "monitored"
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("steered", "monitored"):
            raise SteeringError(f"parameter kind must be steered/monitored, got {self.kind!r}")
        if self.minimum is not None and self.maximum is not None:
            if self.minimum > self.maximum:
                raise SteeringError(f"{self.name}: minimum exceeds maximum")

    def validate(self, value: Any) -> None:
        """Range-check scalar values; arrays/vectors pass through."""
        if isinstance(value, (int, float, np.floating, np.integer)):
            if self.minimum is not None and value < self.minimum:
                raise SteeringError(
                    f"{self.name}={value} below minimum {self.minimum}"
                )
            if self.maximum is not None and value > self.maximum:
                raise SteeringError(
                    f"{self.name}={value} above maximum {self.maximum}"
                )


class ParameterRegistry:
    """The set of parameters an application has published."""

    def __init__(self) -> None:
        self._defs: dict[str, ParameterDef] = {}
        self._getters: dict[str, Callable[[], Any]] = {}
        self._setters: dict[str, Callable[[Any], None]] = {}

    def register(
        self,
        definition: ParameterDef,
        getter: Callable[[], Any],
        setter: Optional[Callable[[Any], None]] = None,
    ) -> None:
        name = definition.name
        if name in self._defs:
            raise SteeringError(f"parameter {name!r} already registered")
        if definition.kind == "steered" and setter is None:
            raise SteeringError(f"steered parameter {name!r} needs a setter")
        self._defs[name] = definition
        self._getters[name] = getter
        if setter is not None:
            self._setters[name] = setter

    def names(self, kind: Optional[str] = None) -> list[str]:
        return sorted(
            n for n, d in self._defs.items() if kind is None or d.kind == kind
        )

    def definition(self, name: str) -> ParameterDef:
        try:
            return self._defs[name]
        except KeyError:
            raise SteeringError(f"unknown parameter {name!r}") from None

    def get(self, name: str) -> Any:
        self.definition(name)
        return self._getters[name]()

    def set(self, name: str, value: Any) -> None:
        d = self.definition(name)
        if d.kind != "steered":
            raise SteeringError(f"parameter {name!r} is monitored (read-only)")
        d.validate(value)
        self._setters[name](value)

    def snapshot(self) -> dict[str, Any]:
        """Current values of every registered parameter."""
        return {n: self._getters[n]() for n in sorted(self._defs)}

    def __len__(self) -> int:
        return len(self._defs)

    def __contains__(self, name: str) -> bool:
        return name in self._defs
