"""User-facing steering client.

The "steering client, i.e. the part that can be integrated into the
collaborative environment" (section 2.2).  Poll-driven like everything
else: commands go out with sequence numbers; :meth:`drain` ingests acks,
status reports and samples whenever the caller (or the DES pump) decides.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SteeringError
from repro.steering.control import (
    Ack,
    CheckpointCmd,
    GetStatus,
    Pause,
    Resume,
    SampleMsg,
    SetParam,
    StatusReport,
    Stop,
)


class SteeringClient:
    """One steerer attached to an application (directly or via services)."""

    def __init__(self, link, name: str = "steerer") -> None:
        self.link = link
        self.name = name
        self._seq = 0
        self.acks: dict[int, Ack] = {}
        self.last_status: Optional[StatusReport] = None
        self.samples: list[SampleMsg] = []
        self.sample_limit = 64

    # -- outgoing commands ---------------------------------------------------

    def _send(self, msg) -> int:
        self._seq += 1
        msg.seq = self._seq
        msg.sender = self.name
        self.link.send(msg)
        return self._seq

    def set_parameter(self, name: str, value: Any) -> int:
        return self._send(SetParam(name=name, value=value))

    def pause(self) -> int:
        return self._send(Pause())

    def resume(self) -> int:
        return self._send(Resume())

    def stop(self) -> int:
        return self._send(Stop())

    def request_checkpoint(self) -> int:
        return self._send(CheckpointCmd())

    def request_status(self) -> int:
        return self._send(GetStatus())

    # -- incoming traffic ------------------------------------------------------

    def drain(self) -> int:
        """Ingest everything queued on the link; returns message count."""
        count = 0
        while True:
            ok, msg = self.link.poll()
            if not ok:
                return count
            count += 1
            if isinstance(msg, Ack):
                self.acks[msg.seq] = msg
            elif isinstance(msg, StatusReport):
                self.last_status = msg
            elif isinstance(msg, SampleMsg):
                self.samples.append(msg)
                if len(self.samples) > self.sample_limit:
                    del self.samples[: -self.sample_limit]
            else:
                raise SteeringError(f"client received unexpected {msg!r}")

    def ack_for(self, seq: int) -> Optional[Ack]:
        return self.acks.get(seq)

    def latest_sample(self) -> Optional[SampleMsg]:
        return self.samples[-1] if self.samples else None
