"""Collaborative steering session: roles, master token, fan-out.

Exactly the vbroker semantics of section 3.3, expressed at the steering
layer: "a 'multiplexer' that simply sends all VISIT send-requests to all
participating visualizations, ensuring that everyone views the same data.
Receive-requests are only sent to a 'master' visualization, so that only
that master is able to actively steer the application.  The master-role
can be moved between the [participants] allowing for a coordinated
cooperative steering."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import NotMaster, SteeringError
from repro.steering.control import COMMAND_TYPES, Ack, SampleMsg


class Role(enum.Enum):
    MASTER = "master"
    OBSERVER = "observer"


@dataclass
class Participant:
    name: str
    link: object  # duplex to that participant's client
    role: Role
    samples_forwarded: int = 0
    commands_forwarded: int = 0
    commands_rejected: int = 0


class CollaborativeSession:
    """Sits between an application and N participant clients.

    One duplex link faces the application (``app_link``); each participant
    joins with their own link.  ``pump()`` moves traffic: samples and
    status from the app fan out to everyone; commands pass through only
    from the master, others get an error ack (policy ``reject``) or are
    silently dropped (policy ``drop``).
    """

    def __init__(self, app_link, reject_policy: str = "reject") -> None:
        if reject_policy not in ("reject", "drop"):
            raise SteeringError("reject_policy must be 'reject' or 'drop'")
        self.app_link = app_link
        self.reject_policy = reject_policy
        self._participants: dict[str, Participant] = {}
        self._master: Optional[str] = None
        self.master_handovers = 0

    # -- membership -----------------------------------------------------------

    def join(self, name: str, link) -> Participant:
        if name in self._participants:
            raise SteeringError(f"participant {name!r} already joined")
        role = Role.MASTER if self._master is None else Role.OBSERVER
        p = Participant(name, link, role)
        self._participants[name] = p
        if role is Role.MASTER:
            self._master = name
        return p

    def leave(self, name: str) -> None:
        p = self._participants.pop(name, None)
        if p is None:
            raise SteeringError(f"unknown participant {name!r}")
        if self._master == name:
            # Master left: promote the longest-standing observer, if any.
            self._master = next(iter(self._participants), None)
            if self._master is not None:
                self._participants[self._master].role = Role.MASTER
                self.master_handovers += 1

    @property
    def master(self) -> Optional[str]:
        return self._master

    def participants(self) -> list[str]:
        return list(self._participants)

    def pass_master(self, from_name: str, to_name: str) -> None:
        """Coordinated hand-over of the steering token."""
        if self._master != from_name:
            raise NotMaster(f"{from_name!r} does not hold the master token")
        if to_name not in self._participants:
            raise SteeringError(f"unknown participant {to_name!r}")
        self._participants[from_name].role = Role.OBSERVER
        self._participants[to_name].role = Role.MASTER
        self._master = to_name
        self.master_handovers += 1

    # -- traffic ------------------------------------------------------------

    def pump(self) -> dict:
        """Move queued traffic once; returns counters for this pass."""
        stats = {"fanned_out": 0, "forwarded": 0, "rejected": 0, "replies": 0}

        # App -> participants: samples fan out to all; command replies
        # (acks, status) go only to the master, who issued the commands.
        while True:
            ok, msg = self.app_link.poll()
            if not ok:
                break
            if isinstance(msg, SampleMsg):
                for p in self._participants.values():
                    p.link.send(msg)
                    p.samples_forwarded += 1
                stats["fanned_out"] += 1
            else:
                # Command replies route to the current master.
                if self._master is not None:
                    self._participants[self._master].link.send(msg)
                stats["replies"] += 1

        # Participants -> app: master passes, observers bounce.
        for p in list(self._participants.values()):
            while True:
                ok, msg = p.link.poll()
                if not ok:
                    break
                if not isinstance(msg, COMMAND_TYPES):
                    p.commands_rejected += 1
                    stats["rejected"] += 1
                    continue
                if p.role is Role.MASTER:
                    self.app_link.send(msg)
                    p.commands_forwarded += 1
                    stats["forwarded"] += 1
                else:
                    p.commands_rejected += 1
                    stats["rejected"] += 1
                    if self.reject_policy == "reject":
                        p.link.send(
                            Ack(
                                getattr(msg, "seq", -1),
                                False,
                                type(msg).__name__,
                                error=f"{p.name} is an observer; master is "
                                f"{self._master!r}",
                            )
                        )
        return stats
