"""Mid-session migration of the computation.

Section 2.4: "RealityGrid is developing the ability to migrate both
computation and visualization within a session without any disturbance or
intervention on the part of the participating clients."

Implemented over the checkpoint/restore surface: checkpoint the running
simulation, construct its replacement (nominally on another host), restore
the state, and splice the new simulation into the existing
:class:`~repro.steering.api.SteeredApplication` so attached clients and
sample sinks never notice — sequence numbers and registered parameters
carry straight over.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import SteeringError
from repro.steering.api import SteeredApplication


def migrate_simulation(
    app: SteeredApplication,
    factory: Callable[[], object],
) -> object:
    """Swap ``app``'s simulation for a fresh instance built by ``factory``.

    Returns the new simulation.  The factory builds an *uninitialized*
    compatible simulation (same class/configuration); its state is then
    overwritten from the live checkpoint.  Raises
    :class:`~repro.errors.SteeringError` and leaves the original in place
    if anything goes wrong — failed migration must not kill the session.
    """
    state = app.sim.checkpoint()
    replacement = factory()
    try:
        replacement.restore(state)
    except Exception as exc:
        raise SteeringError(f"migration restore failed: {exc}") from exc

    if replacement.step_count != app.sim.step_count:
        raise SteeringError(
            "migration produced inconsistent step counts "
            f"({replacement.step_count} != {app.sim.step_count})"
        )

    old_params = set(app.sim.steerable_parameters())
    new_params = set(replacement.steerable_parameters())
    if old_params != new_params:
        raise SteeringError(
            f"migration changed the steerable surface: {old_params ^ new_params}"
        )

    app.sim = replacement
    return replacement
