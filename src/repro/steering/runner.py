"""DES process driving a steered application with a compute-cost model.

The synchronous :meth:`SteeredApplication.run` is fine for unit tests;
distributed scenarios need the simulation to *cost virtual time* so that
steering latency, sample latency and feedback loops are measurable.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.steering.api import SteeredApplication


def steered_app_process(
    env,
    app: SteeredApplication,
    compute_time: Union[float, Callable] = 0.01,
    max_steps: Optional[int] = None,
    idle_poll: float = 0.05,
):
    """Generator: the instrumented main loop under virtual time.

    ``compute_time`` is seconds of virtual compute per simulation step,
    or a callable ``f(sim) -> seconds`` for size-dependent cost models.
    A paused application keeps polling its control links every
    ``idle_poll`` seconds — that is how it hears the Resume.
    """
    steps = 0
    while not app.stopped and (max_steps is None or steps < max_steps):
        app.process_control()
        if app.stopped:
            break
        if app.paused:
            yield env.timeout(idle_poll)
            continue
        cost = compute_time(app.sim) if callable(compute_time) else compute_time
        yield env.timeout(cost)
        app.sim.step()
        if app.sim.step_count % app.sample_interval == 0:
            app.emit_sample()
        steps += 1
    return steps
