"""The RealityGrid orchestrator: UNICORE launch + OGSA service wiring.

Section 2.2: "The orchestration of the compute and visualization servers
and the file transfer was handled by UNICORE ...  This allowed the
application to simulate the behaviour of a possible OGSA service before
the OGSI working group had formulated its standards recommendations."

:class:`RealityGridOrchestrator` packages that whole workflow: it
consigns the steered application as a UNICORE job on the compute vsite,
accepts the application's outbound control/sample links on the service
host, deploys the steering + visualization services into an OGSI::Lite
container, publishes them to the registry, and binds the handle resolver
— leaving the user with nothing to do but `find -> bind -> steer`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SteeringError
from repro.steering.api import LinkAdapter

# The ogsa/unicore imports happen inside the methods: the steering package
# must stay importable on its own (ogsa's services import steering.control,
# so eager imports here would be circular).


class RealityGridOrchestrator:
    """Wires one steered application into the full Figure 1/2 fabric.

    Parameters
    ----------
    unicore_client:
        An authenticated client whose gateway fronts the compute vsite.
    container:
        The OGSI::Lite container on the visualization/service host.
    resolver:
        The handle resolver shared with steering clients.
    control_port / sample_port:
        Ports on the container host where the launched application will
        connect its control and sample links (outbound from the HPC
        centre: firewall-friendly).
    """

    def __init__(
        self,
        unicore_client,
        container,
        resolver,
        control_port: int = 7001,
        sample_port: int = 7002,
        field_key: str = "order_parameter",
    ) -> None:
        self.unicore = unicore_client
        self.container = container
        self.resolver = resolver
        self.control_port = control_port
        self.sample_port = sample_port
        self.field_key = field_key
        self.job_id: Optional[str] = None
        self.handles: dict[str, str] = {}
        #: per-sample callback ``cb(step)`` handed to the deployed
        #: visualization service (observability's viz-frame span events);
        #: None — the default — deploys the service exactly as before
        self.on_viz_frame: Optional[Callable[[int], None]] = None

    def launch(
        self,
        application: str,
        vsite: str,
        arguments: Optional[dict] = None,
        job_name: str = "realitygrid",
        registry_id: str = "registry",
    ):
        """Generator: run the whole orchestration; resolves to the
        published handle strings ``{"steering": gsh, "viz": gsh}``.

        The incarnated application is expected to open two outbound
        connections to the container host (control then samples) — the
        contract the RealityGrid API imposes on instrumented codes.
        """
        from repro.ogsa.container import ServiceConnection
        from repro.ogsa.steering_service import SteeringService
        from repro.ogsa.viz_service import VisualizationService
        from repro.unicore.ajo import AbstractJobObject, ExecuteTask

        svc_host = self.container.host
        control_listener = svc_host.listen(self.control_port)
        sample_listener = svc_host.listen(self.sample_port)

        # 1. Consign the job through the gateway.
        ajo = AbstractJobObject(job_name, vsite)
        ajo.add_task(
            ExecuteTask("run", application, arguments=dict(arguments or {}),
                        steered=True)
        )
        self.job_id = yield from self.unicore.consign(ajo)

        # 2. Accept the application's outbound links.
        control_conn = yield from control_listener.accept(timeout=60.0)
        sample_conn = yield from sample_listener.accept(timeout=60.0)
        control_listener.close()
        sample_listener.close()

        # 3. Deploy + publish the services.
        steer = SteeringService(
            f"steer-{job_name}", LinkAdapter(control_conn),
            application_name=application,
        )
        viz = VisualizationService(
            f"viz-{job_name}", LinkAdapter(sample_conn),
            field_key=self.field_key,
        )
        if self.on_viz_frame is not None:
            viz.on_frame = self.on_viz_frame
        steer_ref = self.container.deploy(steer)
        viz_ref = self.container.deploy(viz)
        self.resolver.bind(steer_ref)
        self.resolver.bind(viz_ref)

        reg_conn = ServiceConnection(
            svc_host, svc_host.name, self.container.port
        )
        yield from reg_conn.open()
        yield from reg_conn.invoke(
            registry_id, "publish", handle=str(steer_ref.handle),
            metadata={"type": "steering", "application": application,
                      "job": self.job_id},
        )
        yield from reg_conn.invoke(
            registry_id, "publish", handle=str(viz_ref.handle),
            metadata={"type": "viz-steering", "application": application,
                      "job": self.job_id},
        )
        reg_conn.close()
        self.handles = {"steering": str(steer_ref.handle),
                        "viz": str(viz_ref.handle)}
        return dict(self.handles)

    def job_status(self, vsite: str):
        """Generator -> (JobStatus, task states) for the launched job."""
        if self.job_id is None:
            raise SteeringError("no job launched yet")
        result = yield from self.unicore.status(vsite, self.job_id)
        return result


def make_outbound_app_factory(
    sim_factory: Callable[[], object],
    service_host_name: str,
    control_port: int = 7001,
    sample_port: int = 7002,
    compute_time: float = 0.05,
    sample_interval: int = 2,
    max_steps: int = 10_000,
):
    """Build a TSI application factory implementing the orchestrator's
    link contract: the incarnated app dials out to the service host and
    runs its instrumented loop until stopped.
    """
    from repro.steering.api import SteeredApplication
    from repro.steering.runner import steered_app_process

    def factory(env, host, args, uspace):
        sim = sim_factory()
        app = SteeredApplication(sim, name=args.get("name", "app"),
                                 sample_interval=sample_interval)
        conn = yield from host.connect(service_host_name, control_port)
        app.attach_control(LinkAdapter(conn))
        conn = yield from host.connect(service_host_name, sample_port)
        app.attach_sample_sink(LinkAdapter(conn))
        steps = yield from steered_app_process(
            env, app, compute_time=compute_time,
            max_steps=args.get("steps", max_steps),
        )
        return steps

    return factory
