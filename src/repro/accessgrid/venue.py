"""The venue server: virtual rooms with media addresses and app sessions.

Section 4.6: "a special venue server compatible to Access Grid 1.2 has
been implemented that allows to start application sessions such as COVISE
consistently within the Access Grid group collaboration sessions.  This
venue server stores additional information on a per room basis which
allows the start-up of shared applications...  we added support for
unicast/multicast bridges and point to point sessions."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import VenueError
from repro.net.multicast import MulticastGroup, UnicastBridge
from repro.util.ids import IdAllocator


@dataclass
class AppSession:
    """Startup info for a shared application in a venue (e.g. COVISE)."""

    app_type: str
    session_id: str
    startup_info: dict = field(default_factory=dict)
    participants: list = field(default_factory=list)


class Venue:
    """One virtual room."""

    def __init__(self, server: "VenueServer", name: str) -> None:
        self.server = server
        self.name = name
        self._occupants: dict[str, object] = {}  # site name -> AGNode-ish
        self.video = MulticastGroup(server.network, f"{name}/video")
        self.audio = MulticastGroup(server.network, f"{name}/audio")
        self._app_sessions: dict[str, AppSession] = {}
        self._bridge: Optional[UnicastBridge] = None

    # -- occupancy ---------------------------------------------------------

    def enter(self, node) -> dict:
        """A site enters the venue; returns the media/bridge description."""
        if node.site_name in self._occupants:
            raise VenueError(f"{node.site_name!r} is already in {self.name!r}")
        self._occupants[node.site_name] = node
        return {
            "video": self.video.address,
            "audio": self.audio.address,
            "bridge": self._bridge is not None,
            "app_sessions": sorted(self._app_sessions),
        }

    def exit(self, node) -> None:
        if node.site_name not in self._occupants:
            raise VenueError(f"{node.site_name!r} is not in {self.name!r}")
        del self._occupants[node.site_name]
        for session in self._app_sessions.values():
            if node.site_name in session.participants:
                session.participants.remove(node.site_name)

    def occupants(self) -> list[str]:
        return sorted(self._occupants)

    # -- bridges (for firewalled / NAT / no-multicast sites) ------------------

    def ensure_bridge(self, bridge_host) -> UnicastBridge:
        if self._bridge is None:
            self._bridge = UnicastBridge(self.video, bridge_host)
        return self._bridge

    @property
    def bridge(self) -> Optional[UnicastBridge]:
        return self._bridge

    # -- shared applications -----------------------------------------------------

    def create_app_session(self, app_type: str, startup_info: dict) -> AppSession:
        sid = self.server._session_ids.next()
        session = AppSession(app_type, sid, dict(startup_info))
        self._app_sessions[sid] = session
        return session

    def join_app_session(self, session_id: str, site_name: str) -> AppSession:
        session = self._app_sessions.get(session_id)
        if session is None:
            raise VenueError(f"no app session {session_id!r} in {self.name!r}")
        if site_name not in self._occupants:
            raise VenueError(
                f"{site_name!r} must enter the venue before joining apps"
            )
        if site_name not in session.participants:
            session.participants.append(site_name)
        return session

    def app_sessions(self) -> list[AppSession]:
        return [self._app_sessions[k] for k in sorted(self._app_sessions)]


class VenueServer:
    """Hosts the venues; one per collaboration community."""

    def __init__(self, network, host) -> None:
        self.network = network
        self.host = host
        self._venues: dict[str, Venue] = {}
        self._session_ids = IdAllocator("appsess")

    def create_venue(self, name: str) -> Venue:
        if name in self._venues:
            raise VenueError(f"venue {name!r} already exists")
        venue = Venue(self, name)
        self._venues[name] = venue
        return venue

    def venue(self, name: str) -> Venue:
        v = self._venues.get(name)
        if v is None:
            raise VenueError(f"no venue {name!r}")
        return v

    def venues(self) -> list[str]:
        return sorted(self._venues)
