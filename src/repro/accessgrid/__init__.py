"""Access Grid: venues, media streams, shared desktops, VizServer.

The collaboration fabric of the paper: "Access Grid technologies link
separate locations into a virtual environment, effectively re-instating
the audio and visual inputs on which human beings are so dependent"
(section 5).  Reproduced pieces:

* :mod:`repro.accessgrid.venue` — the venue server, including the
  HLRS-style per-room shared-application startup info (section 4.6);
* :mod:`repro.accessgrid.media` — vic/rat-like RTP streams over
  multicast;
* :mod:`repro.accessgrid.vnc` — the shared desktop used to distribute
  steering clients ("Sharing the steering client requires the use of
  vnc", section 2.4);
* :mod:`repro.accessgrid.vizserver` — OpenGL VizServer-style remote
  rendering with collaborative session sharing;
* :mod:`repro.accessgrid.node` — one participating site.
"""

from repro.accessgrid.venue import VenueServer, Venue, AppSession
from repro.accessgrid.media import MediaProducer, MediaReceiver
from repro.accessgrid.vnc import VncServer, VncClient
from repro.accessgrid.vizserver import VizServerSession
from repro.accessgrid.vtknetwork import VicViewer, VtkNetworkRenderer
from repro.accessgrid.node import AGNode

__all__ = [
    "VenueServer",
    "Venue",
    "AppSession",
    "MediaProducer",
    "MediaReceiver",
    "VncServer",
    "VncClient",
    "VizServerSession",
    "VtkNetworkRenderer",
    "VicViewer",
    "AGNode",
]
