"""vnc-style shared desktop.

"Sharing the steering client requires the use of vnc.  This is the active
mode of participating" (section 2.4); the UNICORE client and AVS control
panel are likewise "made available via vnc" (section 3.4).

Model: the server owns a framebuffer (the shared desktop).  Clients pull
updates (RFB-style framebuffer-update-request); the server answers with a
full frame first, then deltas against each client's last-acknowledged
frame.  Clients may send input events, which the server applies through a
host-side handler — that is how a remote collaborator drives the steering
GUI.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ChannelClosed, VenueError
from repro.viz.compress import compress_frame, decompress_frame
from repro.viz.framebuffer import FrameBuffer


class VncServer:
    """Shares one framebuffer with many clients."""

    def __init__(self, host, port: int, width: int = 320, height: int = 240) -> None:
        self.host = host
        self.port = port
        self.fb = FrameBuffer(width, height)
        #: called with each input event dict from any client
        self.on_input: Optional[Callable[[dict], None]] = None
        self.updates_served = 0
        self.input_events = 0
        self.bytes_served = 0

    def start(self) -> None:
        listener = self.host.listen(self.port)
        env = self.host.env

        def accept_loop():
            while True:
                conn = yield from listener.accept()
                env.process(self._serve(conn))

        env.process(accept_loop())

    def _serve(self, conn):
        last_sent: Optional[FrameBuffer] = None
        while True:
            try:
                msg = yield from conn.recv(timeout=None)
            except ChannelClosed:
                return
            if not isinstance(msg, dict):
                continue
            if msg.get("op") == "update_request":
                blob = compress_frame(self.fb, previous=last_sent)
                last_sent = self.fb.copy()
                self.updates_served += 1
                self.bytes_served += len(blob)
                conn.send({"op": "update", "frame": blob}, size=len(blob) + 64)
            elif msg.get("op") == "input":
                self.input_events += 1
                if self.on_input is not None:
                    self.on_input(msg.get("event", {}))
                conn.send({"op": "input_ack"})


class VncClient:
    """One remote viewer/controller of a shared desktop."""

    def __init__(self, host, server_host: str, port: int,
                 timeout: float = 10.0) -> None:
        self.host = host
        self.server_host = server_host
        self.port = port
        self.timeout = timeout
        self._conn = None
        self.local_fb: Optional[FrameBuffer] = None
        self._last: Optional[FrameBuffer] = None
        self.updates = 0

    def connect(self):
        self._conn = yield from self.host.connect(
            self.server_host, self.port, timeout=self.timeout
        )
        return True

    def request_update(self):
        """Generator -> the refreshed local framebuffer."""
        if self._conn is None:
            raise VenueError("vnc client is not connected")
        self._conn.send({"op": "update_request"}, size=64)
        reply = yield from self._conn.recv(timeout=self.timeout)
        fb = decompress_frame(reply["frame"], previous=self._last)
        self._last = fb.copy()
        self.local_fb = fb
        self.updates += 1
        return fb

    def send_input(self, event: dict):
        """Generator: deliver an input event (remote collaborator acting)."""
        if self._conn is None:
            raise VenueError("vnc client is not connected")
        self._conn.send({"op": "input", "event": dict(event)}, size=128)
        reply = yield from self._conn.recv(timeout=self.timeout)
        return reply.get("op") == "input_ack"

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
