"""vtkNetwork-style framebuffer multicasting (paper section 2.4).

"Collaborative visualization is also achieved by means of the vtkNetwork
extension to vtk provided by the Futures Lab, Argonne National
Laboratory...  This package provides a specialised vtk rendering class
which streams updates to its framebuffer to a multicast address.  Remote
users can then view the broadcast visualization through a standard vic
session.  The vtkNetwork classes also allow for collaboration by end
users, by sending any remote events back to the visualization application
using a patched version of vic."

:class:`VtkNetworkRenderer` wraps a renderer; every ``publish_frame``
multicasts the (delta-compressed) framebuffer into a media group, so any
:class:`~repro.accessgrid.media.MediaReceiver`-style subscriber can view
it.  The return channel for remote events (the "patched vic") is an
optional unicast event mailbox — the paper chose VizServer over this
path precisely because patching vic was clunky, and the trade-off is
testable here.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.des.resources import Mailbox
from repro.net.multicast import MulticastGroup
from repro.viz.compress import compress_frame
from repro.viz.framebuffer import FrameBuffer
from repro.viz.render import Renderer


class VtkNetworkRenderer:
    """A renderer whose framebuffer streams to a multicast address."""

    def __init__(
        self,
        host,
        group: MulticastGroup,
        width: int = 320,
        height: int = 240,
        key_frame_every: int = 30,
    ) -> None:
        self.host = host
        self.group = group
        self.renderer = Renderer(width, height)
        #: every Nth frame is a full (non-delta) frame so late joiners sync
        self.key_frame_every = max(1, int(key_frame_every))
        self._prev: Optional[FrameBuffer] = None
        self.frames_published = 0
        self.bytes_published = 0
        #: remote events sent back by "patched vic" viewers
        self.event_mailbox = Mailbox(host.env)
        self.on_remote_event: Optional[Callable[[dict], None]] = None
        host.env.process(self._event_loop())

    def publish_frame(self) -> int:
        """Multicast the current framebuffer; returns wire bytes."""
        frame = self.renderer.fb
        is_key = self.frames_published % self.key_frame_every == 0
        blob = compress_frame(frame, previous=None if is_key else self._prev)
        self._prev = frame.copy()
        payload = {
            "seq": self.frames_published,
            "key": is_key,
            "frame": blob,
            "t": self.host.env.now,
        }
        self.group.send(self.host, payload, size=len(blob) + 64)
        self.frames_published += 1
        self.bytes_published += len(blob)
        return len(blob)

    def _event_loop(self):
        while True:
            event = yield self.event_mailbox.get()
            if self.on_remote_event is not None:
                self.on_remote_event(event)


class VicViewer:
    """A standard-vic viewer of a vtkNetwork stream.

    Reconstructs frames from the multicast feed; can only decode deltas
    after its first key frame (the joining-mid-stream reality).  With
    ``patched=True`` it may send events back — the collaboration mode the
    paper mentions but avoids.
    """

    def __init__(self, host, group: MulticastGroup, patched: bool = False) -> None:
        self.host = host
        self.mailbox = group.join(host)
        self.patched = patched
        self.current: Optional[FrameBuffer] = None
        self.frames_decoded = 0
        self.frames_skipped = 0
        host.env.process(self._consume())

    def _consume(self):
        from repro.viz.compress import decompress_frame

        while True:
            payload = yield self.mailbox.get()
            if not payload["key"] and self.current is None:
                self.frames_skipped += 1  # no baseline yet
                continue
            self.current = decompress_frame(
                payload["frame"],
                previous=None if payload["key"] else self.current,
            )
            self.frames_decoded += 1

    def send_event(self, renderer: VtkNetworkRenderer, event: dict) -> None:
        """The patched-vic back channel (unicast to the renderer host)."""
        if not self.patched:
            raise PermissionError(
                "a standard vic session cannot send events back; "
                "use patched=True (or VizServer, as the paper did)"
            )
        env = self.host.env
        link = renderer.host.network.link(self.host.name, renderer.host.name)
        deliver_at = link.reserve(128, env.now)
        ev = env.timeout(deliver_at - env.now)
        ev.callbacks.append(lambda _e: renderer.event_mailbox.put(dict(event)))
