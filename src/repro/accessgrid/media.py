"""vic/rat-like media streams over multicast.

"All participating sites who have native multicast enabled will be able
to view the visualization, this can be described as passive
collaboration" (section 2.4).  A producer pushes fixed-rate frames into a
multicast group; receivers track what arrives (and when), which gives the
FIG4 bench its media-plane numbers.
"""

from __future__ import annotations

from typing import Optional

from repro.net.multicast import MulticastGroup, UnicastBridge
from repro.util.stats import RunningStats


class MediaProducer:
    """Emits frames (video) or packets (audio) at a fixed rate."""

    def __init__(
        self,
        host,
        group: MulticastGroup,
        fps: float = 25.0,
        frame_bytes: int = 8_000,
        name: str = "vic",
        bridge: Optional[UnicastBridge] = None,
    ) -> None:
        self.host = host
        self.group = group
        self.fps = fps
        self.frame_bytes = frame_bytes
        self.name = name
        self.bridge = bridge
        self.frames_sent = 0
        self.stopped = False

    def start(self) -> None:
        self.host.env.process(self._produce())

    def stop(self) -> None:
        self.stopped = True

    def _produce(self):
        env = self.host.env
        interval = 1.0 / self.fps
        while not self.stopped:
            payload = {"src": self.name, "seq": self.frames_sent, "t": env.now}
            if self.bridge is not None:
                self.bridge.send_from(self.host, payload, size=self.frame_bytes)
            else:
                self.group.send(self.host, payload, size=self.frame_bytes)
            self.frames_sent += 1
            yield env.timeout(interval)


class MediaReceiver:
    """Consumes a stream from a group mailbox (native or bridged)."""

    def __init__(self, host, mailbox, name: str = "receiver") -> None:
        self.host = host
        self.mailbox = mailbox
        self.name = name
        self.frames_received = 0
        self.latency = RunningStats()
        self.last_seq: dict[str, int] = {}
        self.gaps = 0

    def start(self) -> None:
        self.host.env.process(self._consume())

    def _consume(self):
        env = self.host.env
        while True:
            frame = yield self.mailbox.get()
            self.frames_received += 1
            self.latency.add(env.now - frame["t"])
            src = frame["src"]
            prev = self.last_seq.get(src)
            if prev is not None and frame["seq"] != prev + 1:
                self.gaps += 1
            self.last_seq[src] = frame["seq"]
