"""OpenGL VizServer-style remote rendering with session sharing.

Section 2.4: "The datasets which are being rendered as isosurfaces are
too large to be visualized on a laptop client.  VizServer allows the
output of the graphics pipes from an Onyx visual supercomputer to be
accessed remotely.  In addition this greatly reduces network traffic
since only compressed bitmaps need to be sent...  [VizServer] allows
multiple users to share the same login session on a remote machine."

Model: the session owns a server-side renderer and scene (geometry stays
on the visualization host).  Each attached client receives compressed
delta frames; any client holding the *control token* may move the shared
camera — "Participating sites able to run OpenGL VizServer will be able
to share control of the visualization".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ChannelClosed, VenueError
from repro.viz import Camera, Renderer
from repro.viz.compress import compress_frame
from repro.viz.framebuffer import FrameBuffer
from repro.viz.scene import SceneGraph

#: per-frame render cost model of the visual supercomputer (s per triangle
#: plus fixed pipeline overhead) — era-plausible numbers.
RENDER_FIXED = 0.012
RENDER_PER_TRI = 1.5e-6


class VizServerSession:
    """One shared login session on the visualization supercomputer."""

    def __init__(self, host, port: int, width: int = 320, height: int = 240) -> None:
        self.host = host
        self.port = port
        self.renderer = Renderer(width, height)
        self.scene = SceneGraph()
        self._clients: dict[str, object] = {}  # site name -> connection
        self._last_frames: dict[str, Optional[FrameBuffer]] = {}
        self.control_holder: Optional[str] = None
        self.frames_streamed = 0
        self.bytes_streamed = 0

    def start(self) -> None:
        listener = self.host.listen(self.port)
        env = self.host.env

        def accept_loop():
            while True:
                conn = yield from listener.accept()
                env.process(self._serve(conn))

        env.process(accept_loop())

    def _serve(self, conn):
        site: Optional[str] = None
        while True:
            try:
                msg = yield from conn.recv(timeout=None)
            except ChannelClosed:
                if site is not None:
                    self._clients.pop(site, None)
                    self._last_frames.pop(site, None)
                    if self.control_holder == site:
                        self.control_holder = next(iter(self._clients), None)
                return
            if not isinstance(msg, dict):
                continue
            op = msg.get("op")
            if op == "join":
                site = msg.get("site", f"anon-{id(conn)}")
                self._clients[site] = conn
                self._last_frames[site] = None
                if self.control_holder is None:
                    self.control_holder = site
                conn.send({"op": "joined", "control": self.control_holder == site})
            elif op == "move_camera":
                if site != self.control_holder:
                    conn.send({"op": "denied",
                               "error": f"control held by {self.control_holder!r}"})
                    continue
                state = msg.get("state", {})
                self.renderer.camera.apply_state(
                    {k: np.asarray(v) if isinstance(v, list) else v
                     for k, v in state.items()}
                )
                conn.send({"op": "camera_ok"})
            elif op == "pass_control":
                if site != self.control_holder:
                    conn.send({"op": "denied", "error": "not holding control"})
                    continue
                target = msg.get("to")
                if target not in self._clients:
                    conn.send({"op": "denied", "error": f"unknown site {target!r}"})
                    continue
                self.control_holder = target
                conn.send({"op": "control_passed"})

    # -- server-side rendering + streaming -----------------------------------------

    def render_and_stream(self):
        """Generator: render the scene once and push a frame to every
        client (delta-compressed per client)."""
        env = self.host.env
        self.renderer.clear()
        self.scene.render_into(self.renderer)
        ntris = self.renderer.primitives_drawn
        yield env.timeout(RENDER_FIXED + RENDER_PER_TRI * ntris)
        frame = self.renderer.fb
        for site, conn in list(self._clients.items()):
            blob = compress_frame(frame, previous=self._last_frames.get(site))
            self._last_frames[site] = frame.copy()
            try:
                conn.send({"op": "frame", "data": blob}, size=len(blob) + 64)
            except ChannelClosed:
                continue
            self.frames_streamed += 1
            self.bytes_streamed += len(blob)
        return ntris


class VizServerClient:
    """A site attached to a shared VizServer session."""

    def __init__(self, host, server_host: str, port: int, site: str,
                 timeout: float = 10.0) -> None:
        self.host = host
        self.server_host = server_host
        self.port = port
        self.site = site
        self.timeout = timeout
        self._conn = None
        self.frames_received = 0
        self.has_control = False

    def join(self):
        self._conn = yield from self.host.connect(
            self.server_host, self.port, timeout=self.timeout
        )
        self._conn.send({"op": "join", "site": self.site}, size=128)
        reply = yield from self._recv_op({"joined"})
        self.has_control = bool(reply.get("control"))
        return True

    def _recv_op(self, ops: set):
        """Generator: next control reply, buffering frames seen meanwhile."""
        while True:
            reply = yield from self._conn.recv(timeout=self.timeout)
            if isinstance(reply, dict) and reply.get("op") == "frame":
                self.frames_received += 1
                continue
            if isinstance(reply, dict) and (reply.get("op") in ops or
                                            reply.get("op") == "denied"):
                return reply

    def move_camera(self, camera: Camera):
        """Generator -> bool: steer the shared view (needs control)."""
        if self._conn is None:
            raise VenueError("not joined")
        state = {k: (v.tolist() if hasattr(v, "tolist") else v)
                 for k, v in camera.state().items()}
        self._conn.send({"op": "move_camera", "state": state}, size=256)
        reply = yield from self._recv_op({"camera_ok"})
        return reply.get("op") == "camera_ok"

    def pass_control(self, to_site: str):
        if self._conn is None:
            raise VenueError("not joined")
        self._conn.send({"op": "pass_control", "to": to_site}, size=128)
        reply = yield from self._recv_op({"control_passed"})
        ok = reply.get("op") == "control_passed"
        if ok:
            self.has_control = False
        return ok

    def drain_frames(self) -> int:
        """Count frames already delivered (non-blocking)."""
        if self._conn is None:
            return 0
        while True:
            ok, msg = self._conn.try_recv()
            if not ok:
                return self.frames_received
            if isinstance(msg, dict) and msg.get("op") == "frame":
                self.frames_received += 1
