"""An Access Grid node: one participating site.

Wraps a simulated host with the venue-side behaviours: enter a venue,
subscribe to its media (natively or via a bridge when the site lacks
multicast), and join shared application sessions.
"""

from __future__ import annotations

from typing import Optional

from repro.accessgrid.media import MediaReceiver
from repro.accessgrid.venue import Venue
from repro.errors import NetworkError, VenueError


class AGNode:
    """One site's presence in the Access Grid."""

    def __init__(self, host, site_name: Optional[str] = None) -> None:
        self.host = host
        self.site_name = site_name or host.name
        self.venue: Optional[Venue] = None
        self.video_receiver: Optional[MediaReceiver] = None
        self.bridged = False
        self.app_sessions: list[str] = []

    @property
    def can_multicast(self) -> bool:
        return self.host.multicast and self.host.firewall.allow_multicast

    def enter(self, venue: Venue, bridge_host=None) -> dict:
        """Enter a venue and wire up media reception.

        Sites without native multicast need ``bridge_host`` (the venue
        grows a unicast bridge there on demand, per section 4.6).
        """
        if self.venue is not None:
            raise VenueError(f"{self.site_name!r} is already in a venue")
        info = venue.enter(self)
        self.venue = venue
        if self.can_multicast:
            box = venue.video.join(self.host)
        else:
            if bridge_host is None:
                venue.exit(self)
                self.venue = None
                raise NetworkError(
                    f"{self.site_name!r} has no native multicast; pass a "
                    "bridge_host to enter()"
                )
            bridge = venue.ensure_bridge(bridge_host)
            box = bridge.attach(self.host)
            self.bridged = True
        self.video_receiver = MediaReceiver(self.host, box, name=self.site_name)
        self.video_receiver.start()
        return info

    def leave(self) -> None:
        if self.venue is None:
            raise VenueError(f"{self.site_name!r} is not in a venue")
        if self.bridged and self.venue.bridge is not None:
            self.venue.bridge.detach(self.host)
        elif self.can_multicast:
            self.venue.video.leave(self.host)
        self.venue.exit(self)
        self.venue = None
        self.video_receiver = None
        self.bridged = False

    def join_app(self, session_id: str):
        if self.venue is None:
            raise VenueError("enter a venue first")
        session = self.venue.join_app_session(session_id, self.site_name)
        self.app_sessions.append(session.session_id)
        return session
