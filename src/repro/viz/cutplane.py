"""Cutting planes through 3D scalar fields.

The COVISE post-processing feedback loop of section 4.3 is driven by
"modifying parameters of a visualization tool such as a cutting plane
position".  ``cut_plane`` samples an arbitrary plane with trilinear
interpolation; ``axis_slice`` is the cheap axis-aligned special case.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def axis_slice(field: np.ndarray, axis: int, position: float) -> np.ndarray:
    """Slice a 3D field normal to ``axis`` at fractional ``position`` [0, 1]."""
    field = np.asarray(field)
    if field.ndim != 3:
        raise ReproError("axis_slice needs a 3D field")
    if not 0 <= axis <= 2:
        raise ReproError("axis must be 0, 1 or 2")
    if not 0.0 <= position <= 1.0:
        raise ReproError("position must be in [0, 1]")
    idx = int(round(position * (field.shape[axis] - 1)))
    return np.take(field, idx, axis=axis).copy()


def trilinear_sample(field: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Trilinear interpolation of ``field`` at fractional grid coords.

    ``points`` is ``(N, 3)`` in *index space* (0 .. shape-1).  Out-of-range
    points clamp to the boundary.
    """
    field = np.asarray(field, dtype=np.float64)
    pts = np.asarray(points, dtype=np.float64)
    if field.ndim != 3 or pts.ndim != 2 or pts.shape[1] != 3:
        raise ReproError("need 3D field and (N, 3) points")
    maxi = np.array(field.shape, dtype=np.float64) - 1
    p = np.clip(pts, 0, maxi)
    i0 = np.floor(np.minimum(p, maxi - 1e-9)).astype(np.intp)
    i0 = np.minimum(i0, (np.array(field.shape) - 2))
    i0 = np.maximum(i0, 0)
    f = p - i0
    x0, y0, z0 = i0[:, 0], i0[:, 1], i0[:, 2]
    fx, fy, fz = f[:, 0], f[:, 1], f[:, 2]
    c000 = field[x0, y0, z0]
    c100 = field[x0 + 1, y0, z0]
    c010 = field[x0, y0 + 1, z0]
    c110 = field[x0 + 1, y0 + 1, z0]
    c001 = field[x0, y0, z0 + 1]
    c101 = field[x0 + 1, y0, z0 + 1]
    c011 = field[x0, y0 + 1, z0 + 1]
    c111 = field[x0 + 1, y0 + 1, z0 + 1]
    c00 = c000 * (1 - fx) + c100 * fx
    c10 = c010 * (1 - fx) + c110 * fx
    c01 = c001 * (1 - fx) + c101 * fx
    c11 = c011 * (1 - fx) + c111 * fx
    c0 = c00 * (1 - fy) + c10 * fy
    c1 = c01 * (1 - fy) + c11 * fy
    return c0 * (1 - fz) + c1 * fz


def cut_plane(
    field: np.ndarray,
    point: np.ndarray,
    normal: np.ndarray,
    resolution: int = 64,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``field`` on a plane through ``point`` with ``normal``.

    Returns ``(coords (res, res, 3), values (res, res))`` where coords are
    in index space.  The plane patch spans the field's bounding box
    diagonal so it always covers the volume.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 3:
        raise ReproError("cut_plane needs a 3D field")
    if resolution < 2:
        raise ReproError("resolution must be >= 2")
    point = np.asarray(point, dtype=np.float64)
    normal = np.asarray(normal, dtype=np.float64)
    nn = np.linalg.norm(normal)
    if nn == 0:
        raise ReproError("zero normal")
    normal = normal / nn
    # Build an orthonormal basis (u, v) in the plane.
    helper = np.array([1.0, 0.0, 0.0])
    if abs(normal[0]) > 0.9:
        helper = np.array([0.0, 1.0, 0.0])
    u = np.cross(normal, helper)
    u /= np.linalg.norm(u)
    v = np.cross(normal, u)
    half = 0.5 * np.linalg.norm(np.array(field.shape, dtype=np.float64))
    s = np.linspace(-half, half, resolution)
    su, sv = np.meshgrid(s, s, indexing="ij")
    coords = point[None, None, :] + su[..., None] * u + sv[..., None] * v
    values = trilinear_sample(field, coords.reshape(-1, 3)).reshape(
        resolution, resolution
    )
    return coords, values
