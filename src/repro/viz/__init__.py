"""Visualization substrate.

Stands in for the paper's AVS/Express, vtk, COVISE rendering and SGI
OpenGL VizServer stack: geometry extraction (isosurfaces, cutting planes,
particle glyphs), a software rasterizer producing framebuffers, and the
framebuffer delta/RLE compression that makes VizServer-style remote
rendering cheap on the wire ("only compressed bitmaps need to be sent",
section 2.4).
"""

from repro.viz.framebuffer import FrameBuffer
from repro.viz.compress import (
    compress_frame,
    decompress_frame,
    delta_encode,
    delta_decode,
    rle_encode,
    rle_decode,
)
from repro.viz.render import Camera, Renderer
from repro.viz.isosurface import isosurface
from repro.viz.cutplane import cut_plane, axis_slice
from repro.viz.glyphs import particle_points, diamond_glyphs, vector_glyphs, TimeHistory
from repro.viz.volume import volume_render
from repro.viz.scene import Geometry, SceneGraph, SceneNode, Avatar

__all__ = [
    "FrameBuffer",
    "compress_frame",
    "decompress_frame",
    "delta_encode",
    "delta_decode",
    "rle_encode",
    "rle_decode",
    "Camera",
    "Renderer",
    "isosurface",
    "cut_plane",
    "axis_slice",
    "particle_points",
    "diamond_glyphs",
    "vector_glyphs",
    "TimeHistory",
    "volume_render",
    "Geometry",
    "SceneGraph",
    "SceneNode",
    "Avatar",
]
