"""Framebuffer compression: byte RLE plus inter-frame delta coding.

This is the economics of OpenGL VizServer (section 2.4): isosurface
geometry too large for a laptop stays on the visualization server; the
wire carries "only compressed bitmaps", whose size tracks *screen area
and frame-to-frame change*, not dataset size.  The vnc sharing of the
steering client works the same way.

The formats are deliberately simple (run-length on raw bytes, pixel-delta
against the previous frame) — fast, dependency-free, and with the right
asymptotics for the traffic benches.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CodecError
from repro.viz.framebuffer import FrameBuffer

_MAGIC_FULL = b"VZF1"
_MAGIC_DELTA = b"VZD1"


def rle_encode(data: bytes | np.ndarray) -> bytes:
    """Run-length encode bytes as ``(count u8, value u8)`` pairs.

    Vectorized with NumPy run detection: positions where the value changes
    delimit runs; runs longer than 255 are split.
    """
    arr = np.frombuffer(
        data.tobytes() if isinstance(data, np.ndarray) else bytes(data), dtype=np.uint8
    )
    if arr.size == 0:
        return b""
    change = np.flatnonzero(arr[1:] != arr[:-1]) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [arr.size]))
    lengths = ends - starts
    values = arr[starts]
    # Split runs longer than 255 into repeats: each run of length L becomes
    # ceil(L/255) pairs — all 255 except the final remainder.
    reps = (lengths + 254) // 255
    out_vals = np.repeat(values, reps)
    out_lens = np.full(out_vals.size, 255, dtype=np.uint8)
    last_pos = np.cumsum(reps) - 1
    remainder = lengths - 255 * (reps - 1)
    out_lens[last_pos] = remainder.astype(np.uint8)
    interleaved = np.empty(out_vals.size * 2, dtype=np.uint8)
    interleaved[0::2] = out_lens
    interleaved[1::2] = out_vals
    return interleaved.tobytes()


def rle_decode(blob: bytes) -> bytes:
    """Inverse of :func:`rle_encode`."""
    if len(blob) % 2 != 0:
        raise CodecError("RLE stream has odd length")
    pairs = np.frombuffer(blob, dtype=np.uint8).reshape(-1, 2)
    return np.repeat(pairs[:, 1], pairs[:, 0]).tobytes()


def delta_encode(current: np.ndarray, previous: np.ndarray) -> np.ndarray:
    """Per-byte difference (mod 256) between two frames of equal shape."""
    if current.shape != previous.shape:
        raise CodecError("delta frames must have equal shape")
    return (current.astype(np.int16) - previous.astype(np.int16)).astype(np.uint8)


def delta_decode(delta: np.ndarray, previous: np.ndarray) -> np.ndarray:
    return (previous.astype(np.int16) + delta.astype(np.int16)).astype(np.uint8)


def compress_frame(fb: FrameBuffer, previous: FrameBuffer | None = None) -> bytes:
    """Compress a framebuffer, optionally against the previous frame.

    Header records mode and dimensions; payload is RLE of either the raw
    frame or its delta.  An unchanged region deltas to all-zero bytes,
    which RLE collapses ~500x — this is why a slowly-changing view costs
    almost nothing on the wire.
    """
    if previous is None:
        payload = rle_encode(fb.color.reshape(-1))
        return _MAGIC_FULL + struct.pack("<HH", fb.width, fb.height) + payload
    if (previous.width, previous.height) != (fb.width, fb.height):
        raise CodecError("previous frame has different dimensions")
    delta = delta_encode(fb.color.reshape(-1), previous.color.reshape(-1))
    payload = rle_encode(delta)
    return _MAGIC_DELTA + struct.pack("<HH", fb.width, fb.height) + payload


def decompress_frame(blob: bytes, previous: FrameBuffer | None = None) -> FrameBuffer:
    """Inverse of :func:`compress_frame`."""
    if len(blob) < 8:
        raise CodecError("truncated compressed frame")
    magic, dims, payload = blob[:4], blob[4:8], blob[8:]
    width, height = struct.unpack("<HH", dims)
    raw = np.frombuffer(rle_decode(payload), dtype=np.uint8)
    expected = width * height * 3
    if raw.size != expected:
        raise CodecError(f"frame payload {raw.size} != {expected} bytes")
    fb = FrameBuffer(width, height)
    if magic == _MAGIC_FULL:
        fb.color[:] = raw.reshape(height, width, 3)
    elif magic == _MAGIC_DELTA:
        if previous is None:
            raise CodecError("delta frame needs the previous frame")
        if (previous.width, previous.height) != (width, height):
            raise CodecError("previous frame has different dimensions")
        fb.color[:] = delta_decode(raw, previous.color.reshape(-1)).reshape(
            height, width, 3
        )
    else:
        raise CodecError(f"bad frame magic {magic!r}")
    return fb


def compression_ratio(fb: FrameBuffer, previous: FrameBuffer | None = None) -> float:
    """Raw bytes / compressed bytes for this frame."""
    return fb.nbytes / max(1, len(compress_frame(fb, previous)))
