"""Axis-aligned emission-absorption volume rendering.

Mentioned alongside isosurfacing as the interface requirement for
steering clients (section 1: "3D isosurfacing and volume rendering").
Simple front-to-back compositing along a principal axis — enough to give
the feedback-loop benches a realistic "volume mode" compute cost.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def transfer_function(
    values: np.ndarray, vmin: float, vmax: float
) -> tuple[np.ndarray, np.ndarray]:
    """Map scalar values to (rgb in [0,1], opacity in [0,1]) — blue->red ramp."""
    span = vmax - vmin
    if span <= 0:
        raise ReproError("vmax must exceed vmin")
    t = np.clip((values - vmin) / span, 0.0, 1.0)
    rgb = np.stack([t, 0.2 * np.ones_like(t), 1.0 - t], axis=-1)
    alpha = 0.02 + 0.25 * t**2
    return rgb, alpha


def volume_render(
    field: np.ndarray,
    axis: int = 2,
    vmin: float | None = None,
    vmax: float | None = None,
) -> np.ndarray:
    """Composite ``field`` along ``axis``; returns an (H, W, 3) uint8 image.

    Front-to-back alpha compositing, fully vectorized over the image plane
    (the loop is only over depth slices).
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 3:
        raise ReproError("volume_render needs a 3D field")
    if not 0 <= axis <= 2:
        raise ReproError("axis must be 0, 1 or 2")
    moved = np.moveaxis(field, axis, 0)  # (depth, H, W)
    if vmin is None:
        vmin = float(moved.min())
    if vmax is None:
        vmax = float(moved.max())
    if vmax <= vmin:
        vmax = vmin + 1.0
    depth = moved.shape[0]
    acc_rgb = np.zeros(moved.shape[1:] + (3,))
    acc_alpha = np.zeros(moved.shape[1:])
    for k in range(depth):
        rgb, alpha = transfer_function(moved[k], vmin, vmax)
        weight = (1.0 - acc_alpha)[..., None] * alpha[..., None]
        acc_rgb += weight * rgb
        acc_alpha += (1.0 - acc_alpha) * alpha
        if float(acc_alpha.min()) > 0.995:
            break  # early ray termination
    return np.clip(acc_rgb * 255.0, 0, 255).astype(np.uint8)
