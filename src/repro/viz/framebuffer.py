"""RGB framebuffer with depth, the unit of VizServer/vnc traffic."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


class FrameBuffer:
    """A ``(height, width, 3)`` uint8 color buffer plus float depth buffer."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise ReproError("framebuffer dimensions must be positive")
        self.width = width
        self.height = height
        self.color = np.zeros((height, width, 3), dtype=np.uint8)
        self.depth = np.full((height, width), np.inf, dtype=np.float64)

    def clear(self, color=(0, 0, 0)) -> None:
        self.color[:] = np.asarray(color, dtype=np.uint8)
        self.depth[:] = np.inf

    @property
    def nbytes(self) -> int:
        """Raw (uncompressed) color size — what a naive remoting ships."""
        return self.color.nbytes

    def copy(self) -> "FrameBuffer":
        fb = FrameBuffer(self.width, self.height)
        fb.color[:] = self.color
        fb.depth[:] = self.depth
        return fb

    def changed_fraction(self, other: "FrameBuffer") -> float:
        """Fraction of pixels differing from ``other`` (for delta stats)."""
        if (other.width, other.height) != (self.width, self.height):
            raise ReproError("framebuffer size mismatch")
        return float(np.mean(np.any(self.color != other.color, axis=2)))

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FrameBuffer)
            and self.width == other.width
            and self.height == other.height
            and bool(np.array_equal(self.color, other.color))
        )

    def __repr__(self) -> str:
        return f"FrameBuffer({self.width}x{self.height})"
