"""Isosurface extraction on uniform grids (marching tetrahedra).

The RealityGrid demo renders isosurfaces of the Lattice-Boltzmann fluid
order parameter (section 2.2); COVISE has an IsoSurface module.  Marching
tetrahedra is used instead of marching cubes: identical output class
(a triangle mesh at ``field == level``), no ambiguous cases, and a case
table small enough to audit.

Each grid cell is split into six tetrahedra; each tetrahedron contributes
0–2 triangles with vertices linearly interpolated along crossing edges.
The implementation vectorizes over *all cells at once* per (tet, case)
pair — 6 x 14 small iterations with NumPy-array bodies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

# Six tetrahedra covering the unit cube, as corner indices of the cube's
# 8 vertices (standard Kuhn subdivision along the main diagonal 0-7).
_CUBE_CORNERS = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [0, 1, 0],
        [1, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [0, 1, 1],
        [1, 1, 1],
    ],
    dtype=np.intp,
)

_TETS = np.array(
    [
        [0, 1, 3, 7],
        [0, 1, 5, 7],
        [0, 2, 3, 7],
        [0, 2, 6, 7],
        [0, 4, 5, 7],
        [0, 4, 6, 7],
    ],
    dtype=np.intp,
)

# For each of the 16 inside/outside sign patterns of a tet's 4 vertices,
# the triangles to emit, each triangle being 3 edges (pairs of local
# vertex indices) on which the surface vertex is interpolated.
_TET_CASES: dict[int, list[tuple[tuple[int, int], ...]]] = {}


def _build_cases() -> None:
    for mask in range(16):
        inside = [v for v in range(4) if mask & (1 << v)]
        outside = [v for v in range(4) if not mask & (1 << v)]
        if len(inside) in (0, 4):
            _TET_CASES[mask] = []
        elif len(inside) == 1:
            v = inside[0]
            a, b, c = outside
            _TET_CASES[mask] = [((v, a), (v, b), (v, c))]
        elif len(inside) == 3:
            v = outside[0]
            a, b, c = inside
            _TET_CASES[mask] = [((a, v), (b, v), (c, v))]
        else:  # two in, two out -> quad -> two triangles
            v0, v1 = inside
            w0, w1 = outside
            _TET_CASES[mask] = [
                ((v0, w0), (v0, w1), (v1, w0)),
                ((v1, w0), (v0, w1), (v1, w1)),
            ]


_build_cases()


def isosurface(
    field: np.ndarray,
    level: float,
    spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Extract the ``field == level`` surface from a 3D scalar grid.

    Returns ``(vertices (M, 3) float64, faces (K, 3) intp)``.  Vertices
    are *not* deduplicated across cells — the consumer is a flat-shaded
    renderer / wire-size model, where weld topology does not matter.
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 3:
        raise ReproError("isosurface needs a 3D scalar field")
    if min(field.shape) < 2:
        return np.zeros((0, 3)), np.zeros((0, 3), dtype=np.intp)

    nx, ny, nz = field.shape
    # Gather the 8 corner values for every cell: shape (8, ncells)
    cx, cy, cz = nx - 1, ny - 1, nz - 1
    corner_vals = np.empty((8, cx, cy, cz))
    for ci, (dx, dy, dz) in enumerate(_CUBE_CORNERS):
        corner_vals[ci] = field[dx : dx + cx, dy : dy + cy, dz : dz + cz]
    corner_vals = corner_vals.reshape(8, -1)

    # Cell origin coordinates, flattened in the same order.
    ix, iy, iz = np.meshgrid(
        np.arange(cx), np.arange(cy), np.arange(cz), indexing="ij"
    )
    cell_origin = np.stack([ix.ravel(), iy.ravel(), iz.ravel()], axis=1).astype(
        np.float64
    )

    spacing_arr = np.asarray(spacing, dtype=np.float64)
    origin_arr = np.asarray(origin, dtype=np.float64)
    tri_chunks: list[np.ndarray] = []

    for tet in _TETS:
        vals = corner_vals[tet]  # (4, ncells)
        inside = vals >= level
        mask = (
            inside[0].astype(np.intp)
            | (inside[1].astype(np.intp) << 1)
            | (inside[2].astype(np.intp) << 2)
            | (inside[3].astype(np.intp) << 3)
        )
        corner_offsets = _CUBE_CORNERS[tet].astype(np.float64)  # (4, 3)
        for case in range(1, 15):
            cells = np.flatnonzero(mask == case)
            if cells.size == 0:
                continue
            for tri_edges in _TET_CASES[case]:
                verts = np.empty((cells.size, 3, 3))
                for k, (a, b) in enumerate(tri_edges):
                    va = vals[a][cells]
                    vb = vals[b][cells]
                    denom = vb - va
                    t = np.where(np.abs(denom) > 1e-300, (level - va) / denom, 0.5)
                    t = np.clip(t, 0.0, 1.0)
                    pa = cell_origin[cells] + corner_offsets[a]
                    pb = cell_origin[cells] + corner_offsets[b]
                    verts[:, k, :] = pa + t[:, None] * (pb - pa)
                tri_chunks.append(verts)

    if not tri_chunks:
        return np.zeros((0, 3)), np.zeros((0, 3), dtype=np.intp)
    all_tris = np.concatenate(tri_chunks, axis=0)  # (K, 3, 3)
    vertices = all_tris.reshape(-1, 3) * spacing_arr + origin_arr
    faces = np.arange(vertices.shape[0], dtype=np.intp).reshape(-1, 3)
    return vertices, faces


def surface_area(vertices: np.ndarray, faces: np.ndarray) -> float:
    """Total area of a triangle mesh (used as a physics-free sanity probe)."""
    if len(faces) == 0:
        return 0.0
    tri = vertices[faces]
    cross = np.cross(tri[:, 1] - tri[:, 0], tri[:, 2] - tri[:, 0])
    return float(0.5 * np.linalg.norm(cross, axis=1).sum())
