"""Particle glyph generation.

Section 3.4: "Particles are displayed as points, diamond glyphs and
vectors, including time-histories over several time-steps; tree domains
as transparent or solid boxes."  These functions produce renderable
geometry for each of those display modes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import ReproError

#: Colormap used to color particles by processor number (paper ships the
#: processor number per particle precisely to see the decomposition).
_PROC_COLORS = np.array(
    [
        [230, 60, 60],
        [60, 200, 60],
        [70, 110, 250],
        [240, 200, 40],
        [200, 70, 220],
        [70, 220, 220],
        [240, 140, 40],
        [160, 160, 160],
    ],
    dtype=np.uint8,
)


def processor_colors(proc: np.ndarray) -> np.ndarray:
    """Color per particle keyed by owning processor (wraps at 8)."""
    proc = np.asarray(proc, dtype=np.intp)
    return _PROC_COLORS[proc % len(_PROC_COLORS)]


def particle_points(positions: np.ndarray, proc: np.ndarray | None = None):
    """Point-mode glyphs: ``(positions, colors)`` ready for the renderer."""
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ReproError("positions must be (N, 3)")
    if proc is None:
        colors = np.full((len(positions), 3), 255, dtype=np.uint8)
    else:
        colors = processor_colors(proc)
    return positions, colors


def diamond_glyphs(
    positions: np.ndarray, size: float = 0.05
) -> tuple[np.ndarray, np.ndarray]:
    """Octahedron ("diamond") per particle: returns (vertices, faces).

    6 vertices and 8 faces per particle, fully vectorized.
    """
    positions = np.asarray(positions, dtype=np.float64)
    n = len(positions)
    if n == 0:
        return np.zeros((0, 3)), np.zeros((0, 3), dtype=np.intp)
    offsets = size * np.array(
        [
            [1, 0, 0],
            [-1, 0, 0],
            [0, 1, 0],
            [0, -1, 0],
            [0, 0, 1],
            [0, 0, -1],
        ],
        dtype=np.float64,
    )
    vertices = (positions[:, None, :] + offsets[None, :, :]).reshape(-1, 3)
    base_faces = np.array(
        [
            [0, 2, 4],
            [2, 1, 4],
            [1, 3, 4],
            [3, 0, 4],
            [2, 0, 5],
            [1, 2, 5],
            [3, 1, 5],
            [0, 3, 5],
        ],
        dtype=np.intp,
    )
    faces = (base_faces[None, :, :] + 6 * np.arange(n)[:, None, None]).reshape(-1, 3)
    return vertices, faces


def vector_glyphs(
    positions: np.ndarray, vectors: np.ndarray, scale: float = 1.0
) -> np.ndarray:
    """Velocity vectors as line segments ``(N, 2, 3)``."""
    positions = np.asarray(positions, dtype=np.float64)
    vectors = np.asarray(vectors, dtype=np.float64)
    if positions.shape != vectors.shape:
        raise ReproError("positions and vectors must have the same shape")
    segs = np.empty((len(positions), 2, 3))
    segs[:, 0, :] = positions
    segs[:, 1, :] = positions + scale * vectors
    return segs


def domain_boxes(bounds: np.ndarray) -> np.ndarray:
    """Wireframe edges for per-processor domain boxes.

    ``bounds`` is ``(P, 2, 3)`` (lo, hi per processor); returns segments
    ``(P * 12, 2, 3)`` — the "transparent or solid boxes" of section 3.4.
    """
    bounds = np.asarray(bounds, dtype=np.float64)
    if bounds.ndim != 3 or bounds.shape[1:] != (2, 3):
        raise ReproError("bounds must be (P, 2, 3)")
    corners_unit = np.array(
        [
            [0, 0, 0],
            [1, 0, 0],
            [0, 1, 0],
            [1, 1, 0],
            [0, 0, 1],
            [1, 0, 1],
            [0, 1, 1],
            [1, 1, 1],
        ],
        dtype=np.float64,
    )
    edges = np.array(
        [
            [0, 1], [2, 3], [4, 5], [6, 7],
            [0, 2], [1, 3], [4, 6], [5, 7],
            [0, 4], [1, 5], [2, 6], [3, 7],
        ],
        dtype=np.intp,
    )
    lo = bounds[:, 0, :][:, None, :]
    hi = bounds[:, 1, :][:, None, :]
    corners = lo + corners_unit[None, :, :] * (hi - lo)  # (P, 8, 3)
    segs = corners[:, edges, :]  # (P, 12, 2, 3)
    return segs.reshape(-1, 2, 3)


class TimeHistory:
    """Rolling particle trajectories over the last ``depth`` time-steps."""

    def __init__(self, depth: int = 5) -> None:
        if depth < 2:
            raise ReproError("history depth must be >= 2")
        self.depth = depth
        self._frames: deque[np.ndarray] = deque(maxlen=depth)

    def push(self, positions: np.ndarray) -> None:
        positions = np.asarray(positions, dtype=np.float64)
        if self._frames and positions.shape != self._frames[-1].shape:
            raise ReproError("particle count changed mid-history")
        self._frames.append(positions.copy())

    def __len__(self) -> int:
        return len(self._frames)

    def trails(self) -> np.ndarray:
        """Segments ``(N * (k-1), 2, 3)`` linking consecutive frames."""
        if len(self._frames) < 2:
            return np.zeros((0, 2, 3))
        frames = list(self._frames)
        chunks = []
        for older, newer in zip(frames, frames[1:]):
            seg = np.empty((len(older), 2, 3))
            seg[:, 0, :] = older
            seg[:, 1, :] = newer
            chunks.append(seg)
        return np.concatenate(chunks, axis=0)
