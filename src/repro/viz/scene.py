"""Scene graph with local replication and avatars.

Section 4.2's conclusion is architectural: "typical distributed virtual
environments work with local scene graphs using local graphics hardware
for rendering", with remote participants shown as avatars whose position
updates tolerate latency.  This module provides that local scene graph:
named nodes with transforms and geometry, a content hash + dirty tracking
so collaborative sessions can sync *parameters* instead of content, and
avatar nodes for the participants.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.errors import ReproError


@dataclass
class Geometry:
    """Renderable geometry: points, lines or triangles.

    ``vertices`` is ``(N, 3)``; for ``lines`` it is interpreted pairwise;
    ``faces`` indexes triangles.  ``nbytes`` is what streaming this
    content over the wire would cost — the quantity VizServer avoids
    shipping.
    """

    kind: str
    vertices: np.ndarray
    faces: Optional[np.ndarray] = None
    colors: Optional[np.ndarray] = None
    base_color: tuple = (200, 200, 255)

    def __post_init__(self) -> None:
        if self.kind not in ("points", "lines", "triangles"):
            raise ReproError(f"unknown geometry kind {self.kind!r}")
        self.vertices = np.asarray(self.vertices, dtype=np.float64)
        if self.kind == "triangles" and self.faces is None:
            raise ReproError("triangle geometry needs faces")

    @property
    def nbytes(self) -> int:
        total = self.vertices.nbytes
        if self.faces is not None:
            total += self.faces.nbytes
        if self.colors is not None:
            total += self.colors.nbytes
        return total

    def content_hash(self) -> str:
        h = hashlib.sha1()
        h.update(self.kind.encode())
        h.update(np.ascontiguousarray(self.vertices).tobytes())
        if self.faces is not None:
            h.update(np.ascontiguousarray(self.faces).tobytes())
        return h.hexdigest()


class SceneNode:
    """A named node: optional geometry, a translation, children."""

    def __init__(self, name: str, geometry: Optional[Geometry] = None) -> None:
        self.name = name
        self.geometry = geometry
        self.translation = np.zeros(3)
        self.children: list["SceneNode"] = []
        self.visible = True

    def add(self, child: "SceneNode") -> "SceneNode":
        self.children.append(child)
        return child

    def walk(self) -> Iterator["SceneNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class Avatar:
    """A remote participant's presence: site name + head position/gaze."""

    site: str
    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    gaze: np.ndarray = field(default_factory=lambda: np.array([1.0, 0.0, 0.0]))

    def update(self, position, gaze) -> None:
        self.position = np.asarray(position, dtype=np.float64)
        self.gaze = np.asarray(gaze, dtype=np.float64)


class SceneGraph:
    """The local scene: content nodes plus avatar overlays."""

    def __init__(self) -> None:
        self.root = SceneNode("root")
        self._index: dict[str, SceneNode] = {"root": self.root}
        self.avatars: dict[str, Avatar] = {}
        self.version = 0

    def add_node(
        self,
        name: str,
        geometry: Optional[Geometry] = None,
        parent: str = "root",
    ) -> SceneNode:
        if name in self._index:
            raise ReproError(f"duplicate scene node {name!r}")
        if parent not in self._index:
            raise ReproError(f"unknown parent node {parent!r}")
        node = SceneNode(name, geometry)
        self._index[parent].add(node)
        self._index[name] = node
        self.version += 1
        return node

    def set_geometry(self, name: str, geometry: Geometry) -> None:
        node = self.node(name)
        node.geometry = geometry
        self.version += 1

    def node(self, name: str) -> SceneNode:
        try:
            return self._index[name]
        except KeyError:
            raise ReproError(f"unknown scene node {name!r}") from None

    def remove_node(self, name: str) -> None:
        if name == "root":
            raise ReproError("cannot remove the root")
        node = self._index.pop(name, None)
        if node is None:
            raise ReproError(f"unknown scene node {name!r}")
        for candidate in self.root.walk():
            if node in candidate.children:
                candidate.children.remove(node)
                break
        for child in node.walk():
            self._index.pop(child.name, None)
        self.version += 1

    # -- collaborative presence ------------------------------------------------

    def upsert_avatar(self, site: str, position, gaze) -> Avatar:
        av = self.avatars.get(site)
        if av is None:
            av = self.avatars[site] = Avatar(site)
        av.update(position, gaze)
        return av

    def drop_avatar(self, site: str) -> None:
        self.avatars.pop(site, None)

    # -- content accounting -----------------------------------------------------

    def total_geometry_bytes(self) -> int:
        """Wire cost of streaming the full scene content (the anti-pattern
        sections 4.2/4.6 argue against for large data)."""
        return sum(
            n.geometry.nbytes
            for n in self.root.walk()
            if n.geometry is not None and n.visible
        )

    def content_hash(self) -> str:
        """Order-independent digest of all node content.

        Two sites whose scene graphs were built from the same synchronized
        parameters must agree on this digest — the FIG4 consistency check.
        """
        digests = sorted(
            f"{n.name}:{n.geometry.content_hash()}"
            for n in self.root.walk()
            if n.geometry is not None
        )
        h = hashlib.sha1()
        for d in digests:
            h.update(d.encode())
        return h.hexdigest()

    def render_into(self, renderer) -> None:
        """Draw all visible geometry plus avatar markers."""
        for node in self.root.walk():
            if node.geometry is not None and node.visible:
                renderer.render_geometry(node.geometry)
        for av in self.avatars.values():
            renderer.draw_points(
                av.position[None, :], colors=np.array([[255, 255, 0]], dtype=np.uint8), size=2
            )
