"""Software rasterizer: camera projection + z-buffered primitives.

Stands in for the graphics pipes of the visual supercomputer.  It renders
points, lines and triangles into a :class:`FrameBuffer` with perspective
projection and a z-buffer.  Point splatting is fully vectorized (particle
clouds are the dominant workload — PEPC ships hundreds of thousands of
particles); triangles rasterize per-face with a vectorized barycentric
fill, fine for the isosurface sizes the benches use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.viz.framebuffer import FrameBuffer


def _normalize(v: np.ndarray) -> np.ndarray:
    n = np.linalg.norm(v)
    if n == 0:
        raise ReproError("zero-length vector")
    return v / n


@dataclass
class Camera:
    """Look-at perspective camera.

    ``eye``/``target``/``up`` define the view; ``fov_deg`` the vertical
    field of view.  The shareable "view point" of a collaborative session
    (section 4.2) is exactly this small parameter set.
    """

    eye: np.ndarray = field(default_factory=lambda: np.array([3.0, 3.0, 3.0]))
    target: np.ndarray = field(default_factory=lambda: np.zeros(3))
    up: np.ndarray = field(default_factory=lambda: np.array([0.0, 0.0, 1.0]))
    fov_deg: float = 60.0
    near: float = 0.01

    def __post_init__(self) -> None:
        self.eye = np.asarray(self.eye, dtype=np.float64)
        self.target = np.asarray(self.target, dtype=np.float64)
        self.up = np.asarray(self.up, dtype=np.float64)

    def basis(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        forward = _normalize(self.target - self.eye)
        right = _normalize(np.cross(forward, self.up))
        true_up = np.cross(right, forward)
        return right, true_up, forward

    def project(
        self, points: np.ndarray, width: int, height: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """World points ``(N, 3)`` -> pixel coords ``(N, 2)`` + depth ``(N,)``.

        Points behind the near plane get depth ``inf`` (culled by callers).
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        right, true_up, forward = self.basis()
        rel = pts - self.eye
        cam = np.empty_like(rel)
        cam[:, 0] = rel @ right
        cam[:, 1] = rel @ true_up
        cam[:, 2] = rel @ forward
        depth = cam[:, 2].copy()
        safe = depth > self.near
        f = 1.0 / np.tan(np.radians(self.fov_deg) / 2.0)
        aspect = width / height
        xy = np.full((len(pts), 2), np.nan)
        with np.errstate(divide="ignore", invalid="ignore"):
            ndc_x = (cam[:, 0] * f / aspect) / depth
            ndc_y = (cam[:, 1] * f) / depth
        xy[safe, 0] = (ndc_x[safe] + 1.0) * 0.5 * (width - 1)
        xy[safe, 1] = (1.0 - ndc_y[safe]) * 0.5 * (height - 1)
        depth[~safe] = np.inf
        return xy, depth

    def state(self) -> dict:
        """Serializable view parameters — the sync payload for FIG4/S42."""
        return {
            "eye": self.eye.copy(),
            "target": self.target.copy(),
            "up": self.up.copy(),
            "fov_deg": float(self.fov_deg),
        }

    def apply_state(self, state: dict) -> None:
        self.eye = np.asarray(state["eye"], dtype=np.float64)
        self.target = np.asarray(state["target"], dtype=np.float64)
        self.up = np.asarray(state["up"], dtype=np.float64)
        self.fov_deg = float(state["fov_deg"])

    def orbit(self, azimuth_rad: float) -> None:
        """Rotate the eye around the target's vertical axis (user motion)."""
        rel = self.eye - self.target
        c, s = np.cos(azimuth_rad), np.sin(azimuth_rad)
        x, y = rel[0], rel[1]
        rel[0], rel[1] = c * x - s * y, s * x + c * y
        self.eye = self.target + rel


class Renderer:
    """Rasterizes primitives through a camera into a framebuffer."""

    def __init__(self, width: int = 320, height: int = 240) -> None:
        self.fb = FrameBuffer(width, height)
        self.camera = Camera()
        #: primitives drawn since the last clear (a proxy for scene load)
        self.primitives_drawn = 0

    def clear(self, color=(0, 0, 0)) -> None:
        self.fb.clear(color)
        self.primitives_drawn = 0

    # -- points ------------------------------------------------------------

    def draw_points(self, points: np.ndarray, colors=None, size: int = 1) -> int:
        """Splat points; returns how many were visible."""
        if len(points) == 0:
            return 0
        xy, depth = self.camera.project(points, self.fb.width, self.fb.height)
        ok = np.isfinite(depth)
        ok &= (xy[:, 0] >= 0) & (xy[:, 0] < self.fb.width)
        ok &= (xy[:, 1] >= 0) & (xy[:, 1] < self.fb.height)
        if not np.any(ok):
            return 0
        px = xy[ok].astype(np.intp)
        dz = depth[ok]
        if colors is None:
            cols = np.full((len(px), 3), 255, dtype=np.uint8)
        else:
            cols = np.atleast_2d(np.asarray(colors, dtype=np.uint8))
            if len(cols) == 1:
                cols = np.repeat(cols, len(points), axis=0)
            cols = cols[ok]
        count = 0
        for dx in range(-(size - 1), size):
            for dy in range(-(size - 1), size):
                x = np.clip(px[:, 0] + dx, 0, self.fb.width - 1)
                y = np.clip(px[:, 1] + dy, 0, self.fb.height - 1)
                # z-test: sort far-to-near so the nearest point wins ties
                order = np.argsort(-dz, kind="stable")
                xs, ys, zs, cs = x[order], y[order], dz[order], cols[order]
                win = zs <= self.fb.depth[ys, xs]
                self.fb.depth[ys[win], xs[win]] = zs[win]
                self.fb.color[ys[win], xs[win]] = cs[win]
                count = int(np.sum(win))
        self.primitives_drawn += len(px)
        return count

    # -- lines --------------------------------------------------------------

    def draw_lines(self, segments: np.ndarray, color=(255, 255, 255)) -> None:
        """Draw ``(N, 2, 3)`` world-space segments, sampled per pixel-length."""
        segments = np.asarray(segments, dtype=np.float64)
        if segments.ndim != 3 or segments.shape[1:] != (2, 3):
            raise ReproError("segments must be (N, 2, 3)")
        for a, b in segments:
            steps = 24
            t = np.linspace(0.0, 1.0, steps)[:, None]
            pts = a[None, :] * (1 - t) + b[None, :] * t
            self.draw_points(pts, colors=np.asarray(color, dtype=np.uint8))
        self.primitives_drawn += len(segments)

    # -- triangles ------------------------------------------------------------

    def draw_triangles(
        self, vertices: np.ndarray, faces: np.ndarray, color=(200, 200, 255)
    ) -> None:
        """Z-buffered flat-shaded triangles (Lambert against the view ray)."""
        vertices = np.asarray(vertices, dtype=np.float64)
        faces = np.asarray(faces, dtype=np.intp)
        if len(faces) == 0:
            return
        xy, depth = self.camera.project(vertices, self.fb.width, self.fb.height)
        base = np.asarray(color, dtype=np.float64)
        _, _, forward = self.camera.basis()
        for tri in faces:
            if not np.all(np.isfinite(depth[tri])):
                continue
            p = xy[tri]
            z = depth[tri]
            # flat shading from the face normal
            a, b, c = vertices[tri]
            n = np.cross(b - a, c - a)
            nn = np.linalg.norm(n)
            if nn == 0:
                continue
            shade = 0.25 + 0.75 * abs(float(np.dot(n / nn, forward)))
            col = np.clip(base * shade, 0, 255).astype(np.uint8)
            self._fill_triangle(p, z, col)
        self.primitives_drawn += len(faces)

    def _fill_triangle(self, p: np.ndarray, z: np.ndarray, color: np.ndarray) -> None:
        xmin = max(int(np.floor(p[:, 0].min())), 0)
        xmax = min(int(np.ceil(p[:, 0].max())), self.fb.width - 1)
        ymin = max(int(np.floor(p[:, 1].min())), 0)
        ymax = min(int(np.ceil(p[:, 1].max())), self.fb.height - 1)
        if xmin > xmax or ymin > ymax:
            return
        xs, ys = np.meshgrid(
            np.arange(xmin, xmax + 1), np.arange(ymin, ymax + 1)
        )
        d = (p[1, 1] - p[2, 1]) * (p[0, 0] - p[2, 0]) + (p[2, 0] - p[1, 0]) * (
            p[0, 1] - p[2, 1]
        )
        if abs(d) < 1e-12:
            return
        w0 = ((p[1, 1] - p[2, 1]) * (xs - p[2, 0]) + (p[2, 0] - p[1, 0]) * (ys - p[2, 1])) / d
        w1 = ((p[2, 1] - p[0, 1]) * (xs - p[2, 0]) + (p[0, 0] - p[2, 0]) * (ys - p[2, 1])) / d
        w2 = 1.0 - w0 - w1
        inside = (w0 >= 0) & (w1 >= 0) & (w2 >= 0)
        if not np.any(inside):
            return
        zi = w0 * z[0] + w1 * z[1] + w2 * z[2]
        yy, xx = ys[inside], xs[inside]
        zz = zi[inside]
        win = zz < self.fb.depth[yy, xx]
        self.fb.depth[yy[win], xx[win]] = zz[win]
        self.fb.color[yy[win], xx[win]] = color

    # -- convenience ------------------------------------------------------------

    def render_geometry(self, geometry) -> None:
        """Draw a :class:`repro.viz.scene.Geometry` by kind."""
        kind = geometry.kind
        if kind == "points":
            self.draw_points(geometry.vertices, colors=geometry.colors)
        elif kind == "lines":
            self.draw_lines(geometry.vertices.reshape(-1, 2, 3), color=geometry.base_color)
        elif kind == "triangles":
            self.draw_triangles(geometry.vertices, geometry.faces, color=geometry.base_color)
        else:
            raise ReproError(f"unknown geometry kind {kind!r}")
