"""Per-session and fleet-wide steering telemetry.

Built on the mergeable accumulators of :mod:`repro.util.stats`: each
session records its own latencies into a :class:`LatencyProbe`
(Welford stats + a uniform reservoir), and the fleet aggregate is the
exact merge of the per-session stats — no raw sample stream is ever
stored, so telemetry stays O(sessions), not O(operations).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.util.stats import ReservoirSample, RunningStats


class LatencyProbe:
    """One latency series: streaming moments + a mergeable reservoir.

    Observations are buffered and folded into the accumulators in one
    tight batch when the probe is next *read* (merge, percentile, stats):
    the steering loops record latencies mid-simulation, where per-event
    accumulator math is pure hot-path overhead, while reads happen at
    report time.  The flush replays the buffer in arrival order, so the
    Welford moments and the reservoir's RNG sequence — and therefore
    every reported number — are identical to unbuffered operation.
    """

    __slots__ = ("_stats", "_sample", "_buf")

    def __init__(self, reservoir: int = 128, seed: int = 0) -> None:
        self._stats = RunningStats()
        self._sample = ReservoirSample(capacity=reservoir, seed=seed)
        self._buf: list[float] = []

    #: flush threshold: bounds buffer memory on long sweeps while still
    #: amortizing the accumulator calls (results are order-identical
    #: regardless of when the flush runs)
    _BUF_MAX = 1024

    def add(self, dt: float) -> None:
        buf = self._buf
        buf.append(dt)
        if len(buf) >= self._BUF_MAX:
            self._flush()

    def _flush(self) -> None:
        buf = self._buf
        if buf:
            stats_add = self._stats.add
            sample_add = self._sample.add
            for x in buf:
                stats_add(x)
                sample_add(x)
            buf.clear()

    @property
    def stats(self) -> RunningStats:
        self._flush()
        return self._stats

    @property
    def sample(self) -> ReservoirSample:
        self._flush()
        return self._sample

    def merge(self, other: "LatencyProbe") -> "LatencyProbe":
        self._flush()
        other._flush()
        self._stats.merge(other._stats)
        self._sample.merge(other._sample)
        return self

    def export(self) -> dict:
        """JSON-able mergeable summary: exact Welford state plus the
        reservoir's retained sample.  A campaign worker process ships
        this through the results store; the aggregator rebuilds the
        moments with :meth:`RunningStats.from_state` (exact merge) and
        re-estimates percentiles from the pooled samples."""
        self._flush()
        return {
            "stats": self._stats.state(),
            "sample": list(self._sample.items),
        }

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in [0, 100]); NaN when empty."""
        self._flush()
        if self._stats.n == 0:
            return math.nan
        return self._sample.percentile(q)

    @property
    def n(self) -> int:
        self._flush()
        return self._stats.n

    @property
    def mean(self) -> float:
        self._flush()
        return self._stats.mean


class SessionTelemetry:
    """Everything the fleet records about one steering session."""

    def __init__(self, name: str, reservoir: int = 128, seed: int = 0) -> None:
        self.name = name
        self.steer_latency = LatencyProbe(reservoir, seed=seed * 3 + 1)
        self.find_latency = LatencyProbe(reservoir, seed=seed * 3 + 2)
        self.admit_latency = LatencyProbe(reservoir, seed=seed * 3 + 3)
        self.ops = 0
        self.timeouts = 0
        self.errors = 0
        self.completed = False
        self.failure: Optional[str] = None
        self.admitted_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    # -- recording ---------------------------------------------------------

    def record_admission(self, started: float, now: float) -> None:
        self.admitted_at = now
        self.admit_latency.add(now - started)

    def record_find(self, dt: float) -> None:
        self.find_latency.add(dt)

    def record_steer(self, dt: float) -> None:
        self.steer_latency.add(dt)
        self.ops += 1

    def record_timeout(self) -> None:
        self.timeouts += 1

    def record_error(self) -> None:
        self.errors += 1

    def mark_completed(self, now: float) -> None:
        self.completed = True
        self.finished_at = now

    def mark_failed(self, reason: str, now: float) -> None:
        self.failure = reason
        self.finished_at = now

    @property
    def session_time(self) -> float:
        if self.admitted_at is None or self.finished_at is None:
            return math.nan
        return self.finished_at - self.admitted_at


class QueueTelemetry:
    """Open-loop queueing ledger: offered/admitted/rejected/abandoned
    counters, admission-wait latencies, a time-weighted queue-depth
    integral, and elastic-capacity scale events.

    Per-class breakdowns are keyed by the SLO-class *name* (plain
    strings) so this layer needs no knowledge of
    :class:`repro.load.slo.SloClass`.
    """

    def __init__(self, reservoir: int = 256) -> None:
        self.wait = LatencyProbe(reservoir, seed=20_011)
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.abandoned = 0
        #: offers that were fault-recovery requeues (subset of offered)
        self.requeued = 0
        #: admissions whose wait met the class admission-wait SLO
        self.slo_met = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.by_class: dict[str, dict] = {}
        self.depth_max = 0
        self._depth_area = 0.0
        self._depth_last_t: Optional[float] = None
        self._depth_last = 0

    def _cls(self, name: str) -> dict:
        c = self.by_class.get(name)
        if c is None:
            c = {
                "offered": 0,
                "admitted": 0,
                "rejected": 0,
                "abandoned": 0,
                "slo_met": 0,
                "requeued": 0,
                "wait": LatencyProbe(64, seed=20_011 + len(self.by_class)),
            }
            self.by_class[name] = c
        return c

    # -- recording ---------------------------------------------------------

    def record_offer(self, cls: str) -> None:
        self.offered += 1
        self._cls(cls)["offered"] += 1

    def record_requeue(self, cls: str) -> None:
        """A recovery requeue: counts as an offer (so the conservation
        law ``offered == admitted + rejected + abandoned + queued`` keeps
        holding) plus its own counter for the chaos scorecards."""
        self.record_offer(cls)
        self.requeued += 1
        self._cls(cls)["requeued"] += 1

    def record_admit(self, cls: str, wait: float, met_slo: bool) -> None:
        self.admitted += 1
        self.wait.add(wait)
        c = self._cls(cls)
        c["admitted"] += 1
        c["wait"].add(wait)
        if met_slo:
            self.slo_met += 1
            c["slo_met"] += 1

    def record_reject(self, cls: str) -> None:
        self.rejected += 1
        self._cls(cls)["rejected"] += 1

    def record_abandon(self, cls: str) -> None:
        # The abandonment wait is always the class patience, so only the
        # counters move; wait percentiles cover admitted sessions.
        self.abandoned += 1
        self._cls(cls)["abandoned"] += 1

    def record_scale(self, delta: int) -> None:
        if delta > 0:
            self.scale_ups += 1
        else:
            self.scale_downs += 1

    def record_depth(self, now: float, depth: int) -> None:
        """Integrate queue depth over virtual time (call on every change)."""
        if self._depth_last_t is not None and now > self._depth_last_t:
            self._depth_area += self._depth_last * (now - self._depth_last_t)
        self._depth_last_t = now
        self._depth_last = depth
        if depth > self.depth_max:
            self.depth_max = depth

    def finalize(self, now: float) -> None:
        """Close the depth integral at the end of the run.  Idempotent,
        and a ``now`` before the last sample (a makespan short of the
        final queue event) leaves the integral untouched."""
        if self._depth_last_t is None or now > self._depth_last_t:
            self.record_depth(now, self._depth_last)

    # -- derived -----------------------------------------------------------

    @property
    def depth_mean(self) -> float:
        if self._depth_last_t is None or self._depth_last_t <= 0:
            return 0.0
        return self._depth_area / self._depth_last_t


class FleetTelemetry:
    """The fleet-wide ledger: one SessionTelemetry per session plus
    merged aggregates computed on demand.  Open-loop runs additionally
    attach a :class:`QueueTelemetry` via :meth:`ensure_queue`."""

    def __init__(self, reservoir: int = 128) -> None:
        self.reservoir = reservoir
        self.sessions: dict[str, SessionTelemetry] = {}
        self.queue: Optional[QueueTelemetry] = None

    def ensure_queue(self) -> QueueTelemetry:
        if self.queue is None:
            self.queue = QueueTelemetry()
        return self.queue

    def session(self, name: str) -> SessionTelemetry:
        tel = self.sessions.get(name)
        if tel is None:
            tel = SessionTelemetry(name, reservoir=self.reservoir, seed=len(self.sessions))
            self.sessions[name] = tel
        return tel

    # -- aggregation -------------------------------------------------------

    def _merged(self, attr: str) -> LatencyProbe:
        out = LatencyProbe(self.reservoir, seed=10_007)
        for tel in self.sessions.values():
            out.merge(getattr(tel, attr))
        return out

    def merged_steer_latency(self) -> LatencyProbe:
        return self._merged("steer_latency")

    def merged_find_latency(self) -> LatencyProbe:
        return self._merged("find_latency")

    def merged_admit_latency(self) -> LatencyProbe:
        return self._merged("admit_latency")

    def export_mergeable(self) -> dict:
        """The fleet's latency series as JSON-able mergeable summaries
        (:meth:`LatencyProbe.export`) — the report-merging hook the
        campaign layer uses to aggregate cells across worker processes
        without shipping raw sample streams."""
        out = {
            "steer": self.merged_steer_latency().export(),
            "find": self.merged_find_latency().export(),
            "admit": self.merged_admit_latency().export(),
        }
        if self.queue is not None:
            out["wait"] = self.queue.wait.export()
        return out

    def totals(self) -> dict:
        sessions = self.sessions.values()
        return {
            "sessions": len(self.sessions),
            "completed": sum(1 for t in sessions if t.completed),
            "failed": sum(1 for t in sessions if t.failure is not None),
            "ops": sum(t.ops for t in sessions),
            "timeouts": sum(t.timeouts for t in sessions),
            "errors": sum(t.errors for t in sessions),
        }
