"""The FleetDriver: N concurrent steering sessions on one simulated grid.

The driver is the worker-fleet half of the job/worker split: it takes a
list of declarative :class:`~repro.fleet.spec.ScenarioSpec`s and runs
every one as a full paper-faithful session — UNICORE consignment through
a firewalled gateway, outbound control/sample links, OGSA service
deployment, registry publication, then a registry-find -> bind -> steer
loop — all inside a single DES :class:`~repro.des.Environment`, with
staggered admission so the fleet ramps up like real traffic.

Topology: the :func:`~repro.workloads.scenarios.sc03_showfloor` venue
fabric supplies the participant (AG) sites; the driver adds per-site HPC
hosts (single-port gateways, like the UCL Onyx) and service hosts (the
Manchester-style OGSI::Lite containers), and wires service<->participant
links so that every network profile a spec can ask for is available at
every site.  Registry traffic goes through per-site
:class:`~repro.fleet.registry_fed.FederatedRegistry` front-ends sharing
one shard set, so a session admitted at site 2 is discoverable from a
client at site 0.

Two admission modes share the same fabric:

* **closed batch** — construct with a spec list and :meth:`FleetDriver.run`
  launches every session at its ``admission_offset`` (PR 1 behaviour);
* **open loop** — construct with no specs and feed sessions one at a time
  through :meth:`FleetDriver.admit`; :mod:`repro.load` drives this mode
  from stochastic arrival streams through an admission controller, and
  may grow the fabric mid-run via :meth:`FleetDriver.add_site` /
  :meth:`FleetDriver.add_registry_shard`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.des import Environment, Interrupt
from repro.des.core import Process
from repro.errors import ReproError
from repro.fleet.registry_fed import FederatedRegistry, make_shards, shard_index
from repro.fleet.report import FleetReport
from repro.fleet.spec import ScenarioSpec
from repro.fleet.telemetry import FleetTelemetry
from repro.net import Firewall
from repro.ogsa import HandleResolver, OgsaSteeringClient, OgsiLiteContainer
from repro.ogsa.registry import RegistryService
from repro.steering.orchestrator import (
    RealityGridOrchestrator,
    make_outbound_app_factory,
)
from repro.unicore import (
    Certificate,
    Gateway,
    NetworkJobSupervisor,
    TargetSystemInterface,
    UnicoreClient,
    UserIdentity,
)
from repro.unicore.security import TrustStore
from repro.workloads.netprofiles import (
    CAMPUS,
    CONFERENCE_FLOOR,
    PROFILES,
    SUPERJANET,
    TRANSATLANTIC,
    link_with_profile,
)
from repro.workloads.scenarios import sc03_showfloor

GATEWAY_PORT = 4433
NJS_PORT = 9000
CONTAINER_PORT = 8000
SESSION_PORT_BASE = 20000

#: profiles wired between every service site and the AG sites
_SITE_PROFILE_CYCLE = (CAMPUS, SUPERJANET, TRANSATLANTIC, CONFERENCE_FLOOR)


@dataclass
class FleetSite:
    """One site's middleware stack: HPC side + service side."""

    index: int
    hpc_name: str
    svc_name: str
    vsite: str
    gateway: Gateway
    njs: NetworkJobSupervisor
    tsi: TargetSystemInterface
    container: OgsiLiteContainer
    registry: FederatedRegistry


class FleetDriver:
    """Run a fleet of scenario specs to completion and report."""

    def __init__(
        self,
        specs: Optional[list[ScenarioSpec]] = None,
        n_sites: int = 4,
        env: Optional[Environment] = None,
        registry_shards: int = 4,
        observer_ops: int = 2,
        reservoir: int = 128,
        queue_slots: Optional[int] = None,
        obs=None,
    ) -> None:
        if specs is not None and not specs:
            raise ReproError("a fleet needs at least one scenario spec")
        specs = list(specs) if specs else []
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ReproError("scenario spec names must be unique")
        self.specs = specs
        self.observer_ops = observer_ops
        self.telemetry = FleetTelemetry(reservoir=reservoir)
        #: observability wiring — every slot stays None without an
        #: attached :class:`repro.obs.Observability`, and every hook is
        #: guarded on that None, so an unobserved fleet runs the exact
        #: pre-obs code paths (byte-identical same-seed reports)
        self.obs = obs
        self._tracer = None
        self._registry_breaker = None
        self._steer_hist = None
        self._find_hist = None
        self._op_counter = None
        self._viz_counter = None
        self.resolver = HandleResolver()
        self.shards = make_shards(registry_shards)

        env, net, ag_sites = sc03_showfloor(n_sites, env=env)
        self.env = env
        self.net = net
        self.ag_sites = ag_sites
        self.sites: list[FleetSite] = []
        #: (site index, profile name) -> participant host carrying it
        self._client_for: dict[tuple[int, str], str] = {}
        #: every spec ever registered (batch placement or dynamic admit)
        self._specs_by_name: dict[str, ScenarioSpec] = {}
        #: monotone counter: unique control/sample port pair per session
        self._session_seq = 0
        self._placements: list[tuple[ScenarioSpec, FleetSite, str, int]] = []
        #: running session processes by name (started, not yet finished)
        self.active: dict[str, Process] = {}
        #: session name -> site index, for every session ever registered
        self.site_of: dict[str, int] = {}
        #: sessions told to shed their remaining steering ops (the
        #: "degrade" recovery policy); the steer loop checks membership
        self.degraded: set[str] = set()
        #: lifecycle subscribers ``cb(kind, name, site_index)`` with kind
        #: in {"start", "complete", "fail", "cancel"}
        self.session_observers: list[Callable] = []
        #: live steering overrides: session name -> FIFO of values the
        #: session's next ``set_parameter`` ops consume instead of the
        #: scripted schedule.  Batch runs never touch this, so the dict
        #: stays empty and the scripted path is byte-identical.
        self.steer_requests: dict[str, list] = {}

        if queue_slots is None:
            sessions_per_site = -(-len(specs) // n_sites) if specs else 8
            queue_slots = max(2, sessions_per_site)
        self.queue_slots = queue_slots
        for i in range(n_sites):
            self.sites.append(self._build_site(i, queue_slots=queue_slots))
        if obs is not None:
            obs.bind_driver(self)
        if self.specs:
            self._place_and_register()

    # -- fabric ------------------------------------------------------------

    def _build_site(self, i: int, queue_slots: int) -> FleetSite:
        net = self.net
        hpc_name, svc_name = f"hpc-{i}", f"svc-{i}"
        hpc = net.add_host(hpc_name, firewall=Firewall.single_port(GATEWAY_PORT))
        svc = net.add_host(svc_name)
        # The compute -> viz path (UCL Onyx -> Manchester Bezier).
        link_with_profile(net, hpc_name, svc_name, SUPERJANET)
        # Every AG site reaches this service host over a rotating link
        # class, so each site offers every profile on some participant.
        for j, ag in enumerate(self.ag_sites):
            profile = _SITE_PROFILE_CYCLE[(i + j) % len(_SITE_PROFILE_CYCLE)]
            link_with_profile(net, svc_name, ag, profile)
            self._client_for.setdefault((i, profile.name), ag)

        trust = TrustStore({"CA"})
        gateway = Gateway(hpc, GATEWAY_PORT, trust=trust)
        tsi = TargetSystemInterface(hpc, queue_slots=queue_slots)
        njs = NetworkJobSupervisor(hpc, NJS_PORT, f"SITE-{i}", tsi)
        gateway.register_vsite(f"SITE-{i}", hpc_name, NJS_PORT)
        gateway.start()
        njs.start()

        container = OgsiLiteContainer(svc, CONTAINER_PORT)
        registry = FederatedRegistry("registry", shards=self.shards)
        container.deploy(registry)
        container.start()
        return FleetSite(
            index=i,
            hpc_name=hpc_name,
            svc_name=svc_name,
            vsite=f"SITE-{i}",
            gateway=gateway,
            njs=njs,
            tsi=tsi,
            container=container,
            registry=registry,
        )

    def _client_host(self, site: FleetSite, spec: ScenarioSpec) -> str:
        """A participant host whose uplink to the site's service host has
        the spec's profile; odd profiles (lan/dsl) get a dedicated host."""
        key = (site.index, spec.profile)
        name = self._client_for.get(key)
        if name is None:
            name = f"obs-{spec.profile}-{site.index}"
            self.net.add_host(name)
            link_with_profile(self.net, site.svc_name, name, PROFILES[spec.profile])
            self._client_for[key] = name
        return name

    def _register_session(self, spec: ScenarioSpec, site: FleetSite) -> tuple[str, int]:
        """Register one session's application on a site; returns the
        participant host name and the session's control port."""
        if spec.name in self._specs_by_name:
            raise ReproError(f"session {spec.name!r} already admitted to this fleet")
        self._specs_by_name[spec.name] = spec
        self.site_of[spec.name] = site.index
        client = self._client_host(site, spec)
        control_port = SESSION_PORT_BASE + 2 * self._session_seq
        self._session_seq += 1
        factory = make_outbound_app_factory(
            spec.make_sim,
            service_host_name=site.svc_name,
            control_port=control_port,
            sample_port=control_port + 1,
            compute_time=spec.compute_time,
            sample_interval=spec.sample_interval,
            max_steps=spec.steps,
        )
        site.tsi.register_application(spec.name, factory)
        site.njs.register_application(spec.name, spec.name)
        return client, control_port

    def _place_and_register(self) -> None:
        """Round-robin sessions over sites; register one application per
        session (each spec may carry different sim arguments)."""
        for idx, spec in enumerate(self.specs):
            site = self.sites[idx % len(self.sites)]
            client, control_port = self._register_session(spec, site)
            self._placements.append((spec, site, client, control_port))

    # -- open-loop admission -----------------------------------------------

    def admit(
        self,
        spec: ScenarioSpec,
        site: Optional[Union[int, FleetSite]] = None,
        at: Optional[float] = None,
    ):
        """Admit one session dynamically; returns its DES process.

        This is the open-loop entry point: no up-front spec list, the
        session is registered and launched *now* (or at virtual time
        ``at``) on the given site — an index, a :class:`FleetSite`, or
        ``None`` for round-robin.  The returned
        :class:`~repro.des.core.Process` triggers when the session ends,
        so an admission controller can hold capacity until completion.
        """
        if site is None:
            site = self.sites[self._session_seq % len(self.sites)]
        elif isinstance(site, int):
            site = self.sites[site]
        client, control_port = self._register_session(spec, site)
        if at is None or at <= self.env.now:
            proc = self.env.process(self._session(spec, site, client, control_port))
        else:
            proc = self.env.process(self._admit_at(at, spec, site, client, control_port))
        self._track(spec, site, proc)
        return proc

    def _track(self, spec: ScenarioSpec, site: FleetSite, proc: Process) -> None:
        tracer = self._tracer
        if tracer is not None:
            root = tracer.open_session(spec.name, site=site.index)
            if tracer.admit_span(spec.name) is None:
                # Batch fleets skip the admission queue: a zero-length
                # admit keeps the span tree shape uniform across modes.
                tracer.record_admit(
                    spec.name, tracer.instant("admit", parent=root, mode="batch")
                )
        self.active[spec.name] = proc
        self._notify_session("start", spec.name, site.index)

    def _notify_session(self, kind: str, name: str, site_index: int) -> None:
        if kind in ("complete", "fail", "cancel") and self._tracer is not None:
            self._tracer.close_session(name, kind)
        for cb in self.session_observers:
            cb(kind, name, site_index)

    def _admit_at(
        self, at: float, spec: ScenarioSpec, site: FleetSite, client: str, control_port: int
    ):
        try:
            yield self.env.timeout(at - self.env.now)
        except Interrupt as intr:
            # Cancelled while waiting for its admission instant.
            self.telemetry.session(spec.name).mark_failed(
                f"cancelled: {intr.cause}", self.env.now
            )
            self.active.pop(spec.name, None)
            self._notify_session("cancel", spec.name, site.index)
            return
        yield from self._session(spec, site, client, control_port)

    # -- chaos / recovery hooks --------------------------------------------

    def spec_of(self, name: str) -> ScenarioSpec:
        try:
            return self._specs_by_name[name]
        except KeyError:
            raise ReproError(f"no session {name!r} in this fleet") from None

    def sessions_at(self, site_index: int) -> list[str]:
        """Names of *running* sessions placed on a site."""
        return sorted(name for name in self.active if self.site_of.get(name) == site_index)

    def site_of_host(self, host_name: str) -> Optional[int]:
        """The site index owning a host (HPC or service side), if any."""
        for site in self.sites:
            if host_name in (site.hpc_name, site.svc_name):
                return site.index
        return None

    def cancel_session(self, name: str, reason: str = "cancelled") -> bool:
        """Interrupt a running session (fault recovery's first move).

        The session's process unwinds at its current yield point, marks
        its telemetry failed with the reason, and releases whatever it
        held; an admission controller waiting on the process sees it
        finish normally and frees the capacity slot.  Returns False when
        the session is not running (already finished or never started).
        """
        proc = self.active.get(name)
        if proc is None or proc.triggered:
            return False
        proc.interrupt(reason)
        return True

    def request_steer(self, name: str, value=None) -> bool:
        """Queue a live steering override for a running session.

        The session's next scripted ``set_parameter`` op sends ``value``
        instead of its scheduled one (``None`` keeps the scheduled value,
        acting as a steer *nudge* that still counts as externally
        driven).  Overrides queue FIFO — one per steering op — so a
        burst of client requests is applied in arrival order.  Returns
        False when the session is not running.
        """
        proc = self.active.get(name)
        if proc is None or proc.triggered:
            return False
        self.steer_requests.setdefault(name, []).append(value)
        return True

    def degrade_session(self, name: str) -> None:
        """Tell a session to shed its remaining steering ops and wind
        down (the "degrade" recovery policy for limp-mode faults)."""
        self.degraded.add(name)

    def add_site(self, queue_slots: Optional[int] = None) -> FleetSite:
        """Grow the fabric by one service site (elastic capacity).

        The new site shares the existing registry shard set, so sessions
        already published elsewhere are immediately findable through its
        front-end.  Used by :class:`repro.load.autoscale.ReactiveAutoscaler`.
        """
        site = self._build_site(len(self.sites), queue_slots=queue_slots or self.queue_slots)
        self.sites.append(site)
        return site

    def add_registry_shard(self) -> RegistryService:
        """Grow the shared registry shard set by one and rebalance.

        Every front-end routes by ``crc32(handle) % len(shards)``, so the
        new shard must be visible to all of them at once and entries whose
        route changed must move — otherwise ``lookup`` would miss them.
        Scatter-gather ``find`` is unaffected during the move because the
        entry is always in exactly one shard.
        """
        shard = RegistryService(f"registry-shard-{len(self.shards)}")
        seen: set[int] = {id(self.shards)}
        self.shards.append(shard)
        for site in self.sites:
            lst = site.registry.shards
            if id(lst) not in seen:
                seen.add(id(lst))
                lst.append(shard)
        n = len(self.shards)
        moves = []
        for idx, src in enumerate(self.shards[:-1]):
            for handle in list(src._entries):
                new_idx = shard_index(handle, n)
                if new_idx != idx:
                    moves.append((src, self.shards[new_idx], handle))
        for src, dst, handle in moves:
            meta = src._entries[handle]
            src.unpublish(handle)
            dst.publish(handle, meta)
        return shard

    # -- session processes -------------------------------------------------

    def _session(self, spec: ScenarioSpec, site: FleetSite, client_name: str,
                 control_port: int):
        env = self.env
        tel = self.telemetry.session(spec.name)
        yield env.timeout(spec.admission_offset)
        started = env.now
        client_host = self.net.host(client_name)
        uc = UnicoreClient(
            client_host,
            UserIdentity(Certificate(f"CN={spec.name}", "CA"), spec.name),
            site.hpc_name,
            GATEWAY_PORT,
        )
        orch = RealityGridOrchestrator(
            uc,
            site.container,
            self.resolver,
            control_port=control_port,
            sample_port=control_port + 1,
        )
        if self.obs is not None:
            orch.on_viz_frame = self._viz_frame_hook(spec.name)
        client = OgsaSteeringClient(client_host, self.resolver, site.svc_name, CONTAINER_PORT)
        tracer = self._tracer
        span_connect = None
        if tracer is not None:
            parent = tracer.admit_span(spec.name) or tracer.open_session(spec.name)
            span_connect = tracer.begin("connect", cat="lifecycle", parent=parent, site=site.index)
        outcome = "fail"
        try:
            yield from uc.connect()
            yield from orch.launch(
                spec.name,
                site.vsite,
                arguments={"steps": spec.steps},
                job_name=spec.name,
            )
            tel.record_admission(started, env.now)
            if span_connect is not None:
                tracer.end(span_connect, job=orch.job_id)

            t0 = env.now
            breaker = self._registry_breaker
            if breaker is not None:
                breaker.guard(f"registry find for {spec.name!r}")
            span_find = None
            if tracer is not None:
                span_find = tracer.begin("find", cat="lifecycle", parent=span_connect)
            try:
                found = yield from client.find_services(application=spec.name)
            except ReproError:
                if breaker is not None:
                    breaker.record_failure()
                raise
            if breaker is not None:
                breaker.record_success()
            find_dt = env.now - t0
            tel.record_find(find_dt)
            if span_find is not None:
                tracer.end(span_find, results=len(found))
            if self._find_hist is not None:
                self._find_hist.observe(find_dt)
            steer = next(e["handle"] for e in found if e["metadata"]["type"] == "steering")
            yield from client.bind(steer)
            if spec.participants > 1:
                for p in range(1, spec.participants):
                    env.process(self._observer(spec, site, steer, p))

            for k in range(spec.n_ops):
                if spec.name in self.degraded:
                    # Recovery said degrade: shed the remaining steering
                    # ops, keep the session alive through a clean stop.
                    break
                t0 = env.now
                op_span = None
                if tracer is not None:
                    op_span = tracer.begin(
                        "steer-op",
                        cat="steer",
                        parent=span_connect,
                        op=k,
                        kind="set_parameter" if k % 2 == 0 else "get_status",
                    )
                op_outcome = "ok"
                try:
                    if k % 2 == 0:
                        overrides = self.steer_requests.get(spec.name)
                        value = overrides.pop(0) if overrides else None
                        if value is None:
                            value = spec.steer_value(k // 2)
                        yield from client.invoke(
                            steer,
                            "set_parameter",
                            name=spec.steer_param,
                            value=value,
                        )
                    else:
                        yield from client.invoke(steer, "get_status")
                    tel.record_steer(env.now - t0)
                    if self._steer_hist is not None:
                        self._steer_hist.observe(env.now - t0)
                except ReproError as exc:
                    if "timed out" in str(exc):
                        tel.record_timeout()
                        op_outcome = "timeout"
                    else:
                        tel.record_error()
                        op_outcome = "error"
                    # The service may have migrated out from under the
                    # stale binding — the GSH/GSR indirection makes a
                    # fresh resolve the cure, so try one before the next
                    # op.  If the fabric is simply dark, this fails
                    # quietly and the loop keeps recording timeouts.
                    try:
                        yield from client.rebind(steer)
                    except ReproError:
                        pass
                if op_span is not None:
                    tracer.end(op_span, outcome=op_outcome)
                if self._op_counter is not None:
                    self._op_counter.inc(outcome=op_outcome)
                yield env.timeout(spec.cadence)
            try:
                yield from client.invoke(steer, "stop")
            except ReproError:
                # The service may have moved since the last op: stop it
                # through a fresh binding rather than fail a session
                # whose steering work is already done.
                yield from client.rebind(steer)
                yield from client.invoke(steer, "stop")
            tel.mark_completed(env.now)
            outcome = "complete"
        except Interrupt as intr:
            tel.mark_failed(f"cancelled: {intr.cause}", env.now)
            outcome = "cancel"
        except ReproError as exc:
            tel.mark_failed(f"{type(exc).__name__}: {exc}", env.now)
        finally:
            client.close()
            uc.close()
            self.active.pop(spec.name, None)
            self.degraded.discard(spec.name)
            self.steer_requests.pop(spec.name, None)
            self._notify_session(outcome, spec.name, site.index)

    def _viz_frame_hook(self, name: str):
        """Span-event + counter callback the viz service fires per
        ingested sample (only built when observability is attached)."""
        counter = self._viz_counter
        tracer = self._tracer

        def on_frame(step: int) -> None:
            if counter is not None:
                counter.inc()
            if tracer is not None:
                root = tracer.session_root(name)
                if root is not None:
                    tracer.event(root, "viz-frame", step=step)

        return on_frame

    def _observer(self, spec: ScenarioSpec, site: FleetSite, steer: str, p: int):
        """An extra collaborator: binds the same steering service and
        watches status (the non-master participants of section 2.4)."""
        env = self.env
        tel = self.telemetry.session(spec.name)
        client_name = self._client_for.get(
            (site.index, spec.profile), self.ag_sites[p % len(self.ag_sites)]
        )
        client = OgsaSteeringClient(
            self.net.host(client_name),
            self.resolver,
            site.svc_name,
            CONTAINER_PORT,
        )
        try:
            yield from client.bind(steer)
            for _ in range(self.observer_ops):
                t0 = env.now
                try:
                    yield from client.invoke(steer, "get_status")
                    tel.record_steer(env.now - t0)
                except ReproError as exc:
                    if "timed out" in str(exc):
                        tel.record_timeout()
                    else:
                        tel.record_error()
                yield env.timeout(spec.cadence * 2)
        except ReproError:
            tel.record_error()
        finally:
            client.close()

    # -- execution ---------------------------------------------------------

    def deadline(self, grace: float = 45.0) -> float:
        """When every session should long be done: last admission offset
        plus the longest duration plus launch/teardown slack."""
        specs = self.specs or list(self._specs_by_name.values())
        if not specs:
            raise ReproError("deadline() needs at least one spec (batch or admitted)")
        last = max(s.admission_offset for s in specs)
        longest = max(s.duration + s.cadence * 2 for s in specs)
        return last + longest + grace

    def run(
        self, until: Optional[float] = None, wall_seconds: Optional[float] = None
    ) -> FleetReport:
        """Admit every session and run the world; returns the report."""
        for spec, site, client, port in self._placements:
            proc = self.env.process(self._session(spec, site, client, port))
            self._track(spec, site, proc)
        self.env.run(until=self.deadline() if until is None else until)
        return self.report(wall_seconds=wall_seconds)

    def report(self, wall_seconds: Optional[float] = None) -> FleetReport:
        finished = [
            t.finished_at for t in self.telemetry.sessions.values() if t.finished_at is not None
        ]
        makespan = max(finished) if finished else self.env.now
        if math.isnan(makespan):
            makespan = self.env.now
        return FleetReport.from_telemetry(
            self.telemetry,
            makespan=makespan,
            wall_seconds=wall_seconds,
            specs=dict(self._specs_by_name),
        )
