"""The FleetDriver: N concurrent steering sessions on one simulated grid.

The driver is the worker-fleet half of the job/worker split: it takes a
list of declarative :class:`~repro.fleet.spec.ScenarioSpec`s and runs
every one as a full paper-faithful session — UNICORE consignment through
a firewalled gateway, outbound control/sample links, OGSA service
deployment, registry publication, then a registry-find -> bind -> steer
loop — all inside a single DES :class:`~repro.des.Environment`, with
staggered admission so the fleet ramps up like real traffic.

Topology: the :func:`~repro.workloads.scenarios.sc03_showfloor` venue
fabric supplies the participant (AG) sites; the driver adds per-site HPC
hosts (single-port gateways, like the UCL Onyx) and service hosts (the
Manchester-style OGSI::Lite containers), and wires service<->participant
links so that every network profile a spec can ask for is available at
every site.  Registry traffic goes through per-site
:class:`~repro.fleet.registry_fed.FederatedRegistry` front-ends sharing
one shard set, so a session admitted at site 2 is discoverable from a
client at site 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.des import Environment
from repro.errors import ReproError
from repro.fleet.registry_fed import FederatedRegistry, make_shards
from repro.fleet.report import FleetReport
from repro.fleet.spec import ScenarioSpec
from repro.fleet.telemetry import FleetTelemetry
from repro.net import Firewall
from repro.ogsa import HandleResolver, OgsaSteeringClient, OgsiLiteContainer
from repro.steering.orchestrator import (
    RealityGridOrchestrator,
    make_outbound_app_factory,
)
from repro.unicore import (
    Certificate,
    Gateway,
    NetworkJobSupervisor,
    TargetSystemInterface,
    UnicoreClient,
    UserIdentity,
)
from repro.unicore.security import TrustStore
from repro.workloads.netprofiles import (
    CAMPUS,
    CONFERENCE_FLOOR,
    PROFILES,
    SUPERJANET,
    TRANSATLANTIC,
    link_with_profile,
)
from repro.workloads.scenarios import sc03_showfloor

GATEWAY_PORT = 4433
NJS_PORT = 9000
CONTAINER_PORT = 8000
SESSION_PORT_BASE = 20000

#: profiles wired between every service site and the AG sites
_SITE_PROFILE_CYCLE = (CAMPUS, SUPERJANET, TRANSATLANTIC, CONFERENCE_FLOOR)


@dataclass
class FleetSite:
    """One site's middleware stack: HPC side + service side."""

    index: int
    hpc_name: str
    svc_name: str
    vsite: str
    gateway: Gateway
    njs: NetworkJobSupervisor
    tsi: TargetSystemInterface
    container: OgsiLiteContainer
    registry: FederatedRegistry


class FleetDriver:
    """Run a fleet of scenario specs to completion and report."""

    def __init__(
        self,
        specs: list[ScenarioSpec],
        n_sites: int = 4,
        env: Optional[Environment] = None,
        registry_shards: int = 4,
        observer_ops: int = 2,
        reservoir: int = 128,
    ) -> None:
        if not specs:
            raise ReproError("a fleet needs at least one scenario spec")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ReproError("scenario spec names must be unique")
        self.specs = list(specs)
        self.observer_ops = observer_ops
        self.telemetry = FleetTelemetry(reservoir=reservoir)
        self.resolver = HandleResolver()
        self.shards = make_shards(registry_shards)

        env, net, ag_sites = sc03_showfloor(n_sites, env=env)
        self.env = env
        self.net = net
        self.ag_sites = ag_sites
        self.sites: list[FleetSite] = []
        #: (site index, profile name) -> participant host carrying it
        self._client_for: dict[tuple[int, str], str] = {}

        sessions_per_site = -(-len(specs) // n_sites)  # ceil
        for i in range(n_sites):
            self.sites.append(
                self._build_site(i, queue_slots=max(2, sessions_per_site))
            )
        self._place_and_register()

    # -- fabric ------------------------------------------------------------

    def _build_site(self, i: int, queue_slots: int) -> FleetSite:
        net = self.net
        hpc_name, svc_name = f"hpc-{i}", f"svc-{i}"
        hpc = net.add_host(hpc_name, firewall=Firewall.single_port(GATEWAY_PORT))
        svc = net.add_host(svc_name)
        # The compute -> viz path (UCL Onyx -> Manchester Bezier).
        link_with_profile(net, hpc_name, svc_name, SUPERJANET)
        # Every AG site reaches this service host over a rotating link
        # class, so each site offers every profile on some participant.
        for j, ag in enumerate(self.ag_sites):
            profile = _SITE_PROFILE_CYCLE[(i + j) % len(_SITE_PROFILE_CYCLE)]
            link_with_profile(net, svc_name, ag, profile)
            self._client_for.setdefault((i, profile.name), ag)

        trust = TrustStore({"CA"})
        gateway = Gateway(hpc, GATEWAY_PORT, trust=trust)
        tsi = TargetSystemInterface(hpc, queue_slots=queue_slots)
        njs = NetworkJobSupervisor(hpc, NJS_PORT, f"SITE-{i}", tsi)
        gateway.register_vsite(f"SITE-{i}", hpc_name, NJS_PORT)
        gateway.start()
        njs.start()

        container = OgsiLiteContainer(svc, CONTAINER_PORT)
        registry = FederatedRegistry("registry", shards=self.shards)
        container.deploy(registry)
        container.start()
        return FleetSite(
            index=i, hpc_name=hpc_name, svc_name=svc_name, vsite=f"SITE-{i}",
            gateway=gateway, njs=njs, tsi=tsi, container=container,
            registry=registry,
        )

    def _client_host(self, site: FleetSite, spec: ScenarioSpec) -> str:
        """A participant host whose uplink to the site's service host has
        the spec's profile; odd profiles (lan/dsl) get a dedicated host."""
        key = (site.index, spec.profile)
        name = self._client_for.get(key)
        if name is None:
            name = f"obs-{spec.profile}-{site.index}"
            self.net.add_host(name)
            link_with_profile(
                self.net, site.svc_name, name, PROFILES[spec.profile]
            )
            self._client_for[key] = name
        return name

    def _place_and_register(self) -> None:
        """Round-robin sessions over sites; register one application per
        session (each spec may carry different sim arguments)."""
        self._placements: list[tuple[ScenarioSpec, FleetSite, str, int]] = []
        for idx, spec in enumerate(self.specs):
            site = self.sites[idx % len(self.sites)]
            client = self._client_host(site, spec)
            control_port = SESSION_PORT_BASE + 2 * idx
            factory = make_outbound_app_factory(
                spec.make_sim,
                service_host_name=site.svc_name,
                control_port=control_port,
                sample_port=control_port + 1,
                compute_time=spec.compute_time,
                sample_interval=spec.sample_interval,
                max_steps=spec.steps,
            )
            site.tsi.register_application(spec.name, factory)
            site.njs.register_application(spec.name, spec.name)
            self._placements.append((spec, site, client, control_port))

    # -- session processes -------------------------------------------------

    def _session(self, spec: ScenarioSpec, site: FleetSite, client_name: str,
                 control_port: int):
        env = self.env
        tel = self.telemetry.session(spec.name)
        yield env.timeout(spec.admission_offset)
        started = env.now
        client_host = self.net.host(client_name)
        uc = UnicoreClient(
            client_host,
            UserIdentity(Certificate(f"CN={spec.name}", "CA"), spec.name),
            site.hpc_name, GATEWAY_PORT,
        )
        orch = RealityGridOrchestrator(
            uc, site.container, self.resolver,
            control_port=control_port, sample_port=control_port + 1,
        )
        client = OgsaSteeringClient(
            client_host, self.resolver, site.svc_name, CONTAINER_PORT
        )
        try:
            yield from uc.connect()
            yield from orch.launch(
                spec.name, site.vsite,
                arguments={"steps": spec.steps}, job_name=spec.name,
            )
            tel.record_admission(started, env.now)

            t0 = env.now
            found = yield from client.find_services(application=spec.name)
            tel.record_find(env.now - t0)
            steer = next(
                e["handle"] for e in found
                if e["metadata"]["type"] == "steering"
            )
            yield from client.bind(steer)
            if spec.participants > 1:
                for p in range(1, spec.participants):
                    env.process(self._observer(spec, site, steer, p))

            for k in range(spec.n_ops):
                t0 = env.now
                try:
                    if k % 2 == 0:
                        yield from client.invoke(
                            steer, "set_parameter",
                            name=spec.steer_param,
                            value=spec.steer_value(k // 2),
                        )
                    else:
                        yield from client.invoke(steer, "get_status")
                    tel.record_steer(env.now - t0)
                except ReproError as exc:
                    if "timed out" in str(exc):
                        tel.record_timeout()
                    else:
                        tel.record_error()
                yield env.timeout(spec.cadence)
            yield from client.invoke(steer, "stop")
            tel.mark_completed(env.now)
        except ReproError as exc:
            tel.mark_failed(f"{type(exc).__name__}: {exc}", env.now)
        finally:
            client.close()
            uc.close()

    def _observer(self, spec: ScenarioSpec, site: FleetSite, steer: str,
                  p: int):
        """An extra collaborator: binds the same steering service and
        watches status (the non-master participants of section 2.4)."""
        env = self.env
        tel = self.telemetry.session(spec.name)
        client_name = self._client_for.get(
            (site.index, spec.profile), self.ag_sites[p % len(self.ag_sites)]
        )
        client = OgsaSteeringClient(
            self.net.host(client_name), self.resolver,
            site.svc_name, CONTAINER_PORT,
        )
        try:
            yield from client.bind(steer)
            for _ in range(self.observer_ops):
                t0 = env.now
                try:
                    yield from client.invoke(steer, "get_status")
                    tel.record_steer(env.now - t0)
                except ReproError as exc:
                    if "timed out" in str(exc):
                        tel.record_timeout()
                    else:
                        tel.record_error()
                yield env.timeout(spec.cadence * 2)
        except ReproError:
            tel.record_error()
        finally:
            client.close()

    # -- execution ---------------------------------------------------------

    def deadline(self, grace: float = 45.0) -> float:
        """When every session should long be done: last admission offset
        plus the longest duration plus launch/teardown slack."""
        last = max(s.admission_offset for s in self.specs)
        longest = max(s.duration + s.cadence * 2 for s in self.specs)
        return last + longest + grace

    def run(self, until: Optional[float] = None,
            wall_seconds: Optional[float] = None) -> FleetReport:
        """Admit every session and run the world; returns the report."""
        for spec, site, client, port in self._placements:
            self.env.process(self._session(spec, site, client, port))
        self.env.run(until=self.deadline() if until is None else until)
        return self.report(wall_seconds=wall_seconds)

    def report(self, wall_seconds: Optional[float] = None) -> FleetReport:
        finished = [
            t.finished_at
            for t in self.telemetry.sessions.values()
            if t.finished_at is not None
        ]
        makespan = max(finished) if finished else self.env.now
        if math.isnan(makespan):
            makespan = self.env.now
        return FleetReport.from_telemetry(
            self.telemetry, makespan=makespan, wall_seconds=wall_seconds,
            specs={s.name: s for s in self.specs},
        )
