"""Declarative scenario specs for the session fleet.

The paper demonstrates *one* collaborative steering session; a 2026-scale
reproduction must answer "what happens when hundreds share the testbed?".
A :class:`ScenarioSpec` is the declarative unit of that question — which
simulation, over which link class, how many participants, what steering
cadence, for how long — in the spirit of brozzler-style job specs that a
worker fleet consumes.  Generators below sweep the paper's four
applications (LB3D, PEPC, building climatization, crowd flow) across the
2003-era network profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.errors import SteeringError
from repro.workloads.netprofiles import PROFILES

#: sim kind -> (factory kwargs used at fleet scale, steered parameter,
#: cycle of values the steerer applies)
SIM_KINDS = ("lb3d", "pepc", "building", "crowd")

_STEER_PLANS: dict[str, tuple[str, tuple]] = {
    "lb3d": ("g", (1.0, 2.0, 3.0, 1.5)),
    "pepc": ("beam_charge_scale", (1.5, 0.5, 2.0, 1.0)),
    "building": ("vent_temperature", (16.0, 20.0, 14.0, 18.0)),
    "crowd": (
        "attractiveness",
        ([2.0, 1.0, 1.0], [1.0, 2.0, 1.0], [1.0, 1.0, 2.0]),
    ),
}


def make_sim(kind: str, seed: int = 0, sim_args: Optional[dict] = None):
    """Instantiate a fleet-sized simulation of the given kind.

    Sizes are deliberately small: a fleet multiplies every per-step cost
    by hundreds of sessions, and the steering *fabric* — not the physics
    resolution — is what the fleet measures.
    """
    args = dict(sim_args or {})
    if kind == "lb3d":
        from repro.sims import LatticeBoltzmann3D

        args.setdefault("shape", (6, 6, 6))
        args.setdefault("g", 0.5)
        args.setdefault("seed", 7 + seed)
        return LatticeBoltzmann3D(**args)
    if kind == "pepc":
        from repro.sims.pepc import PlasmaSim, beam_on_sphere_setup

        setup = beam_on_sphere_setup(
            n_plasma=args.pop("n_plasma", 48),
            n_beam=args.pop("n_beam", 8),
            seed=args.pop("seed", 7 + seed),
        )
        args.setdefault("use_tree", False)
        return PlasmaSim(setup, **args)
    if kind == "building":
        from repro.sims import BuildingClimate

        args.setdefault("shape", (8, 6, 4))
        args.setdefault("seed", 11 + seed)
        return BuildingClimate(**args)
    if kind == "crowd":
        from repro.sims import CrowdSim

        args.setdefault("n_agents", 40)
        args.setdefault("seed", 23 + seed)
        return CrowdSim(**args)
    raise SteeringError(f"unknown sim kind {kind!r}; expected one of {SIM_KINDS}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One steering session, declaratively.

    ``profile`` names a :mod:`repro.workloads.netprofiles` link class for
    the participant <-> service path; the driver places the session's
    participants on a site whose uplink has that profile.
    """

    name: str
    sim: str = "lb3d"
    profile: str = "campus"
    participants: int = 2
    cadence: float = 0.75
    duration: float = 6.0
    #: safety bound on simulation steps; None -> computed so the app
    #: comfortably outlives the steering loop and is stopped by Stop
    steps: Optional[int] = None
    sample_interval: int = 4
    compute_time: float = 0.05
    admission_offset: float = 0.0
    seed: int = 0
    sim_args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sim not in SIM_KINDS:
            raise SteeringError(f"spec {self.name!r}: unknown sim kind {self.sim!r}")
        if self.profile not in PROFILES:
            raise SteeringError(
                f"spec {self.name!r}: unknown net profile {self.profile!r}; "
                f"expected one of {sorted(PROFILES)}"
            )
        if self.participants < 1:
            raise SteeringError(f"spec {self.name!r}: need >= 1 participant")
        if self.cadence <= 0 or self.duration <= 0:
            raise SteeringError(f"spec {self.name!r}: cadence and duration must be > 0")
        if self.steps is None:
            object.__setattr__(
                self,
                "steps",
                max(1, int((self.duration + 10.0) / self.compute_time)),
            )
        if self.steps < 1:
            raise SteeringError(f"spec {self.name!r}: steps must be >= 1")

    # -- derived -----------------------------------------------------------

    @property
    def steer_param(self) -> str:
        return _STEER_PLANS[self.sim][0]

    def steer_value(self, k: int) -> Any:
        values = _STEER_PLANS[self.sim][1]
        return values[k % len(values)]

    @property
    def n_ops(self) -> int:
        """Steering operations issued over the session's lifetime."""
        return max(1, int(self.duration / self.cadence))

    def make_sim(self):
        return make_sim(self.sim, seed=self.seed, sim_args=dict(self.sim_args))


# -- generators -------------------------------------------------------------


def rederive_steps(overrides: dict) -> dict:
    """A prototype's derived step budget must not survive an override of
    the inputs it was computed from; ``steps=None`` re-derives it in
    ``__post_init__``.  Mutates and returns ``overrides``."""
    if "steps" not in overrides and ("duration" in overrides or "compute_time" in overrides):
        overrides["steps"] = None
    return overrides


def mint_spec(
    proto: ScenarioSpec,
    i: int,
    prefix: str,
    admission_offset: float = 0.0,
    digits: int = 4,
    **overrides,
) -> ScenarioSpec:
    """The i-th session stamped from a prototype: unique name (the
    driver registers one application per session), per-session seed.
    Shared by :func:`fleet_of` and :mod:`repro.load.arrivals`."""
    return replace(
        proto,
        name=f"{prefix}{i:0{digits}d}-{proto.sim}",
        admission_offset=admission_offset,
        seed=i,
        **overrides,
    )


def paper_suite(**overrides) -> list[ScenarioSpec]:
    """The paper's four demonstrations as one spec each, on the link class
    each actually used: LB3D over SuperJanet (section 2), PEPC across the
    transatlantic AG path (section 3), the HLRS building + crowd pair on
    campus/CAVE-class links (section 4)."""
    pairs = [
        ("lb3d", "superjanet"),
        ("pepc", "transatlantic"),
        ("building", "campus"),
        ("crowd", "conference-floor"),
    ]
    return [
        ScenarioSpec(name=f"{sim}-{profile}", sim=sim, profile=profile,
                     seed=i, **overrides)
        for i, (sim, profile) in enumerate(pairs)
    ]


def sweep_scenarios(
    sims=SIM_KINDS,
    profiles=("campus", "superjanet", "transatlantic", "conference-floor"),
    **overrides,
) -> list[ScenarioSpec]:
    """The full cross product: every sim kind over every link class."""
    out = []
    for i, sim in enumerate(sims):
        for j, profile in enumerate(profiles):
            out.append(
                ScenarioSpec(
                    name=f"{sim}-{profile}",
                    sim=sim,
                    profile=profile,
                    seed=i * len(profiles) + j,
                    **overrides,
                )
            )
    return out


def fleet_of(
    n: int,
    suite: Optional[list[ScenarioSpec]] = None,
    stagger: float = 0.2,
    prefix: str = "s",
    **overrides,
) -> list[ScenarioSpec]:
    """N sessions cycling a base suite, with staggered admission.

    Each spec gets a unique name (the driver registers one application
    per session) and an ``admission_offset`` of ``i * stagger`` so the
    fleet ramps up instead of thundering in at t=0.
    """
    if n < 1:
        raise SteeringError("a fleet needs at least one session")
    base = suite or paper_suite()
    rederive_steps(overrides)
    return [
        mint_spec(base[i % len(base)], i, prefix,
                  admission_offset=i * stagger, **overrides)
        for i in range(n)
    ]
