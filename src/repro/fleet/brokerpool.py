"""A load-balanced pool of VISIT vbrokers for collaborative fan-out.

One vbroker multiplexes one simulation to k visualizations (paper section
3.3).  A fleet of collaborative sessions needs many, and they should not
all land on one host — so the pool places each session on the
least-loaded broker and handles the master-token when participants die:
if a session's master visualization is gone, the token moves to the next
live participant instead of stalling every steer request into timeouts.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import VisitError
from repro.visit.vbroker import VBroker


class BrokerPool:
    """Least-loaded placement of sessions onto a fixed broker set."""

    def __init__(self, brokers: list[VBroker]) -> None:
        if not brokers:
            raise VisitError("broker pool needs at least one broker")
        self.brokers = list(brokers)
        #: session name -> broker index
        self._placement: dict[str, int] = {}
        #: sessions re-placed off a dead broker (chaos recovery metric)
        self.failovers = 0
        #: observability wiring (set by Observability.attach_pool; both
        #: default None so placement is untouched without obs)
        self.tracer = None
        self.breaker = None

    @classmethod
    def build(
        cls,
        net,
        host_names: list[str],
        port: int = 7000,
        password: str = "fleet",
        brokers_per_host: int = 1,
        request_timeout: float = 2.0,
    ) -> "BrokerPool":
        """Create and start one (or more) vbrokers per named host."""
        brokers = []
        for host_name in host_names:
            for k in range(brokers_per_host):
                broker = VBroker(
                    net.host(host_name),
                    port + k,
                    password,
                    request_timeout=request_timeout,
                )
                broker.start()
                brokers.append(broker)
        return cls(brokers)

    # -- placement ---------------------------------------------------------

    def load(self, idx: int) -> tuple[int, int]:
        """Load key of a broker: (assigned sessions, live participants)."""
        broker = self.brokers[idx]
        assigned = sum(1 for b in self._placement.values() if b == idx)
        return (assigned, len(broker.participants()))

    def place(self, session: str) -> VBroker:
        """Assign a session to the least-loaded *live* broker.

        Stable on repeat for an already-placed session.  Dead brokers
        (listener closed — host crashed or drained) are skipped; live
        candidates are pruned first (:meth:`VBroker.prune_dead`) so the
        load key counts only live participants.  When every broker in
        the pool is dead there is nowhere to place the session and a
        :class:`VisitError` says so explicitly.
        """
        if session in self._placement:
            return self.brokers[self._placement[session]]
        if self.breaker is not None:
            self.breaker.guard(f"broker placement for {session!r}")
        live = [i for i, b in enumerate(self.brokers) if b.alive]
        if not live:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise VisitError(
                f"cannot place session {session!r}: all "
                f"{len(self.brokers)} vbrokers in the pool are dead"
            )
        for i in live:
            self.brokers[i].prune_dead()
        idx = min(live, key=lambda i: (self.load(i), i))
        self._placement[session] = idx
        if self.breaker is not None:
            self.breaker.record_success()
        if self.tracer is not None:
            self.tracer.instant(
                "place",
                parent=self.tracer.session_root(session),
                broker=idx,
                host=self.brokers[idx].host.name,
            )
        return self.brokers[idx]

    def broker_for(self, session: str) -> VBroker:
        idx = self._placement.get(session)
        if idx is None:
            raise VisitError(f"session {session!r} has no broker placement")
        return self.brokers[idx]

    def live_brokers(self) -> list[int]:
        return [i for i, b in enumerate(self.brokers) if b.alive]

    def sessions_on(self, idx: int) -> list[str]:
        return sorted(s for s, b in self._placement.items() if b == idx)

    def replace(self, session: str) -> VBroker:
        """Fail a session over to a live broker after its broker died.

        Drops the stale placement and places anew (least-loaded among
        live brokers); participants must be re-added through the new
        broker by the caller — the dead broker's downstream connections
        died with it.  Raises :class:`VisitError` when no live broker
        remains (nothing to fail over to).
        """
        old = self._placement.pop(session, None)
        broker = self.place(session)
        if old is not None:
            self.failovers += 1
        return broker

    def release(self, session: str) -> None:
        self._placement.pop(session, None)

    def placements(self) -> dict[str, int]:
        return dict(self._placement)

    # -- participants ------------------------------------------------------

    def add_visualization(self, session: str, viz_name: str,
                          server_host: str, port: int):
        """Generator: connect a participant through the session's broker."""
        broker = self.broker_for(session)
        result = yield from broker.add_visualization(viz_name, server_host, port)
        return result

    def ensure_master(self, session: str) -> Optional[str]:
        """Master-token-aware failover for one session's broker.

        Drops participants whose connection has died; if the master was
        among them, the broker hands the token to the next live
        participant (VBroker's removal rule).  Returns the master after
        repair, or None when nobody is left to steer.
        """
        broker = self.broker_for(session)
        broker.prune_dead()
        return broker.master

    # -- introspection -----------------------------------------------------

    def stats(self) -> list[dict]:
        out = []
        for i, broker in enumerate(self.brokers):
            assigned, participants = self.load(i)
            out.append(
                {
                    "host": broker.host.name,
                    "port": broker.port,
                    "sessions": assigned,
                    "participants": participants,
                    "master": broker.master,
                    "fanout_messages": broker.fanout_messages,
                }
            )
        return out
