"""repro.fleet: a grid-scale session-fleet engine.

The paper demonstrates one collaborative steering session across three
sites; this package asks the production question — what happens when
*hundreds* of sessions share the testbed — with the job/worker split of
modern crawler fleets applied to 2003 grid middleware:

* :mod:`repro.fleet.spec` — declarative :class:`ScenarioSpec`s plus
  generators sweeping the paper's four applications across the era's
  network profiles;
* :mod:`repro.fleet.driver` — the :class:`FleetDriver` that admits N
  concurrent sessions (full UNICORE -> OGSA -> steer workflow each) into
  one DES environment with staggered admission;
* :mod:`repro.fleet.registry_fed` — sharded registry front-ends over
  :mod:`repro.ogsa.registry`, shared-shard federation across sites;
* :mod:`repro.fleet.brokerpool` — least-loaded placement of
  collaborative sessions onto a pool of VISIT vbrokers with
  master-token-aware failover;
* :mod:`repro.fleet.telemetry` — mergeable per-session / fleet-wide
  latency accumulators (no raw sample streams retained);
* :mod:`repro.fleet.report` — the structured :class:`FleetReport`
  consumed by ``benchmarks/bench_fleet_scaling.py``.
"""

from repro.fleet.spec import (
    SIM_KINDS,
    ScenarioSpec,
    fleet_of,
    make_sim,
    paper_suite,
    sweep_scenarios,
)
from repro.fleet.registry_fed import FederatedRegistry, make_shards
from repro.fleet.brokerpool import BrokerPool
from repro.fleet.telemetry import (
    FleetTelemetry,
    LatencyProbe,
    QueueTelemetry,
    SessionTelemetry,
)
from repro.fleet.report import FleetReport, QueueSlice, SessionRow
from repro.fleet.driver import FleetDriver, FleetSite

__all__ = [
    "SIM_KINDS",
    "ScenarioSpec",
    "make_sim",
    "paper_suite",
    "sweep_scenarios",
    "fleet_of",
    "FederatedRegistry",
    "make_shards",
    "BrokerPool",
    "FleetTelemetry",
    "LatencyProbe",
    "QueueTelemetry",
    "SessionTelemetry",
    "FleetReport",
    "QueueSlice",
    "SessionRow",
    "FleetDriver",
    "FleetSite",
]
