"""Structured fleet reports: what a scaling run hands to benches and CI.

A :class:`FleetReport` freezes the interesting numbers out of a
:class:`~repro.fleet.telemetry.FleetTelemetry` — admission/steering
latency percentiles, throughput, completion counts — and renders them as
the paper-style fixed-width tables the benchmark suite already emits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.fleet.telemetry import FleetTelemetry, QueueTelemetry


def _ms(x: float) -> str:
    return "-" if math.isnan(x) else f"{x * 1e3:.1f}"


def _s(x: float) -> str:
    return "-" if math.isnan(x) else f"{x:.2f}"


@dataclass
class QueueSlice:
    """Frozen open-loop queueing numbers (admission waits in virtual
    seconds — queueing delay dominates network latency by orders of
    magnitude, so these are not millisecond quantities)."""

    offered: int
    admitted: int
    rejected: int
    abandoned: int
    slo_met: int
    requeued: int
    wait_p50: float
    wait_p90: float
    wait_p99: float
    wait_mean: float
    depth_mean: float
    depth_max: int
    scale_ups: int
    scale_downs: int
    by_class: dict = field(default_factory=dict)

    @classmethod
    def from_queue(cls, q: QueueTelemetry, now: float) -> "QueueSlice":
        q.finalize(now)
        by_class = {}
        for name, c in sorted(q.by_class.items()):
            by_class[name] = {
                "offered": c["offered"],
                "admitted": c["admitted"],
                "rejected": c["rejected"],
                "abandoned": c["abandoned"],
                "slo_met": c["slo_met"],
                "requeued": c["requeued"],
                "wait_p90_s": c["wait"].percentile(90),
            }
        return cls(
            offered=q.offered,
            admitted=q.admitted,
            rejected=q.rejected,
            abandoned=q.abandoned,
            slo_met=q.slo_met,
            requeued=q.requeued,
            wait_p50=q.wait.percentile(50),
            wait_p90=q.wait.percentile(90),
            wait_p99=q.wait.percentile(99),
            wait_mean=q.wait.mean,
            depth_mean=q.depth_mean,
            depth_max=q.depth_max,
            scale_ups=q.scale_ups,
            scale_downs=q.scale_downs,
            by_class=by_class,
        )

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def abandonment_rate(self) -> float:
        return self.abandoned / self.offered if self.offered else 0.0

    @property
    def slo_attainment(self) -> float:
        return self.slo_met / self.admitted if self.admitted else math.nan

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "abandoned": self.abandoned,
            "slo_met": self.slo_met,
            "requeued": self.requeued,
            "rejection_rate": self.rejection_rate,
            "abandonment_rate": self.abandonment_rate,
            "wait_p50_s": self.wait_p50,
            "wait_p90_s": self.wait_p90,
            "wait_p99_s": self.wait_p99,
            "wait_mean_s": self.wait_mean,
            "depth_mean": self.depth_mean,
            "depth_max": self.depth_max,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "by_class": self.by_class,
        }

    def render(self) -> str:
        lines = [
            f"admission: {self.admitted}/{self.offered} admitted, "
            f"{self.rejected} rejected ({self.rejection_rate:.0%}), "
            f"{self.abandoned} abandoned; queue depth "
            f"mean={self.depth_mean:.1f} max={self.depth_max}",
            f"admission wait s: p50={_s(self.wait_p50)} "
            f"p90={_s(self.wait_p90)} p99={_s(self.wait_p99)} "
            f"mean={_s(self.wait_mean)}   "
            f"slo attainment={self.slo_attainment:.0%}"
            if self.admitted
            else "admission wait s: (nothing admitted)",
        ]
        if self.scale_ups or self.scale_downs:
            lines.append(
                f"autoscale: +{self.scale_ups} sites grown, " f"-{self.scale_downs} drained"
            )
        if self.requeued:
            lines.append(f"recovery: {self.requeued} sessions requeued")
        return "\n".join(lines)


@dataclass
class SessionRow:
    name: str
    sim: str
    profile: str
    completed: bool
    ops: int
    timeouts: int
    errors: int
    steer_p50: float
    steer_p90: float
    session_time: float
    failure: Optional[str] = None


@dataclass
class FleetReport:
    """Aggregated outcome of one fleet run."""

    n_sessions: int
    completed: int
    failed: int
    ops: int
    timeouts: int
    errors: int
    steer_p50: float
    steer_p90: float
    steer_p99: float
    steer_mean: float
    find_p50: float
    admit_p50: float
    admit_p90: float
    makespan: float
    wall_seconds: Optional[float] = None
    per_session: list[SessionRow] = field(default_factory=list)
    #: open-loop queueing slice; None for closed-batch runs
    queue: Optional[QueueSlice] = None

    @classmethod
    def from_telemetry(
        cls,
        telemetry: FleetTelemetry,
        makespan: float,
        wall_seconds: Optional[float] = None,
        specs: Optional[dict] = None,
    ) -> "FleetReport":
        """Freeze a report; ``specs`` maps session name -> ScenarioSpec
        (for sim/profile labels in the per-session rows)."""
        steer = telemetry.merged_steer_latency()
        find = telemetry.merged_find_latency()
        admit = telemetry.merged_admit_latency()
        totals = telemetry.totals()
        rows = []
        for name, tel in sorted(telemetry.sessions.items()):
            spec = (specs or {}).get(name)
            rows.append(
                SessionRow(
                    name=name,
                    sim=spec.sim if spec else "?",
                    profile=spec.profile if spec else "?",
                    completed=tel.completed,
                    ops=tel.ops,
                    timeouts=tel.timeouts,
                    errors=tel.errors,
                    steer_p50=tel.steer_latency.percentile(50),
                    steer_p90=tel.steer_latency.percentile(90),
                    session_time=tel.session_time,
                    failure=tel.failure,
                )
            )
        return cls(
            n_sessions=totals["sessions"],
            completed=totals["completed"],
            failed=totals["failed"],
            ops=totals["ops"],
            timeouts=totals["timeouts"],
            errors=totals["errors"],
            steer_p50=steer.percentile(50),
            steer_p90=steer.percentile(90),
            steer_p99=steer.percentile(99),
            steer_mean=steer.mean,
            find_p50=find.percentile(50),
            admit_p50=admit.percentile(50),
            admit_p90=admit.percentile(90),
            makespan=makespan,
            wall_seconds=wall_seconds,
            per_session=rows,
            queue=(
                QueueSlice.from_queue(telemetry.queue, now=makespan)
                if telemetry.queue is not None
                else None
            ),
        )

    # -- views -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "sessions": self.n_sessions,
            "completed": self.completed,
            "failed": self.failed,
            "ops": self.ops,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "steer_p50_ms": self.steer_p50 * 1e3,
            "steer_p90_ms": self.steer_p90 * 1e3,
            "steer_p99_ms": self.steer_p99 * 1e3,
            "steer_mean_ms": self.steer_mean * 1e3,
            "find_p50_ms": self.find_p50 * 1e3,
            "admit_p50_ms": self.admit_p50 * 1e3,
            "admit_p90_ms": self.admit_p90 * 1e3,
            "makespan_s": self.makespan,
            "wall_seconds": self.wall_seconds,
            **({"load": self.queue.to_dict()} if self.queue else {}),
        }

    def summary_row(self) -> list:
        """One bench-table row: the scaling series across fleet sizes."""
        return [
            self.n_sessions,
            self.completed,
            self.ops,
            _ms(self.steer_p50),
            _ms(self.steer_p90),
            _ms(self.steer_p99),
            _ms(self.admit_p90),
            f"{self.makespan:.1f}",
        ]

    def render(self, per_session: bool = False) -> str:
        lines = [
            f"fleet: {self.completed}/{self.n_sessions} sessions completed, "
            f"{self.ops} steering ops "
            f"({self.timeouts} timeouts, {self.errors} errors), "
            f"virtual makespan {self.makespan:.1f}s"
            + (
                f", wall {self.wall_seconds:.2f}s"
                if self.wall_seconds is not None
                else ""
            ),
            f"steer latency ms: p50={_ms(self.steer_p50)} "
            f"p90={_ms(self.steer_p90)} p99={_ms(self.steer_p99)} "
            f"mean={_ms(self.steer_mean)}",
            f"admission ms: p50={_ms(self.admit_p50)} p90={_ms(self.admit_p90)}"
            f"   registry find ms: p50={_ms(self.find_p50)}",
        ]
        if self.queue is not None:
            lines.append(self.queue.render())
        if per_session:
            lines.append(
                f"{'session':<18} {'sim':<9} {'profile':<17} {'ok':<3} "
                f"{'ops':>4} {'p50ms':>7} {'p90ms':>7} {'dur s':>6}"
            )
            for row in self.per_session:
                lines.append(
                    f"{row.name:<18} {row.sim:<9} {row.profile:<17} "
                    f"{'yes' if row.completed else 'NO':<3} {row.ops:>4} "
                    f"{_ms(row.steer_p50):>7} {_ms(row.steer_p90):>7} "
                    f"{row.session_time:>6.1f}"
                    + (f"  ! {row.failure}" if row.failure else "")
                )
        return "\n".join(lines)
