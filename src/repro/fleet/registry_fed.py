"""A sharded/federated registry front-end over :mod:`repro.ogsa.registry`.

Fleet scale means thousands of published handles and a registry ``find``
on every session admission.  Two pressures follow:

* one registry instance becomes a hot shard — so entries are spread over
  K :class:`RegistryService` shards by a stable hash of the handle;
* every service site needs a local registry endpoint — so any number of
  :class:`FederatedRegistry` front-ends can be deployed over the *same*
  shard set, and a publish through one site is immediately visible to a
  ``find`` at every other (the shards stand in for the shared backing
  stores a real federation would replicate).

The front-end exposes the exact RegistryService portType (publish /
unpublish / find / lookup), so orchestrators and steering clients are
oblivious to the sharding.
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence

from repro.errors import OgsaError
from repro.ogsa.registry import RegistryService
from repro.ogsa.service import GridService, operation


def shard_index(handle: str, n_shards: int) -> int:
    """Stable handle -> shard routing (crc32, not the seeded ``hash``).

    The single source of truth: every front-end's :meth:`shard_for` and
    the driver's rebalance-on-growth must agree bit-for-bit, or moved
    entries become unreachable to ``lookup``.
    """
    return zlib.crc32(handle.encode("utf-8")) % n_shards


def make_shards(count: int, prefix: str = "registry-shard") -> list[RegistryService]:
    """A fresh shard set, shareable between several front-ends."""
    if count < 1:
        raise OgsaError("a federated registry needs >= 1 shard")
    return [RegistryService(f"{prefix}-{i}") for i in range(count)]


class FederatedRegistry(GridService):
    """RegistryService-compatible front-end over a set of shards."""

    def __init__(
        self,
        service_id: str = "registry",
        shards: int | Sequence[RegistryService] = 4,
    ) -> None:
        super().__init__(service_id)
        if isinstance(shards, int):
            shards = make_shards(shards, prefix=f"{service_id}-shard")
        self.shards: list[RegistryService] = list(shards)
        if not self.shards:
            raise OgsaError("a federated registry needs >= 1 shard")
        self.service_data["shard_count"] = len(self.shards)
        self.service_data["entry_count"] = self.entry_count

    # -- routing -----------------------------------------------------------

    def shard_for(self, handle: str) -> RegistryService:
        """Stable handle -> shard mapping via :func:`shard_index`."""
        return self.shards[shard_index(handle, len(self.shards))]

    @property
    def entry_count(self) -> int:
        return sum(len(s._entries) for s in self.shards)

    def _note_size(self) -> None:
        self.service_data["entry_count"] = self.entry_count

    @operation
    def get_service_data(self, name: str = ""):
        # Another front-end may have written the shared shards (or the
        # driver may have grown the shard set) since this one last did;
        # refresh the cached counts before answering.
        self._note_size()
        self.service_data["shard_count"] = len(self.shards)
        return super().get_service_data(name)

    # -- the RegistryService portType -------------------------------------

    @operation
    def publish(self, handle: str, metadata: dict) -> bool:
        if not isinstance(handle, str):
            raise OgsaError(f"publish needs a GSH string, got {handle!r}")
        ok = self.shard_for(handle).publish(handle, metadata)
        self._note_size()
        return ok

    @operation
    def unpublish(self, handle: str) -> bool:
        if not isinstance(handle, str):
            raise OgsaError(f"unpublish needs a GSH string, got {handle!r}")
        ok = self.shard_for(handle).unpublish(handle)
        self._note_size()
        return ok

    @operation
    def find(self, query: Optional[dict] = None) -> list:
        """Scatter the query to every shard, gather, merge sorted."""
        results: list = []
        for shard in self.shards:
            results.extend(shard.find(query))
        results.sort(key=lambda e: e["handle"])
        return results

    @operation
    def lookup(self, handle: str) -> dict:
        if not isinstance(handle, str):
            raise OgsaError(f"lookup needs a GSH string, got {handle!r}")
        return self.shard_for(handle).lookup(handle)

    # -- introspection -----------------------------------------------------

    def shard_sizes(self) -> list[int]:
        return [len(s._entries) for s in self.shards]
