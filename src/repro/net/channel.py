"""TCP-like connections over the simulated network.

A :class:`Connection` is a reliable, ordered, message-preserving duplex
channel.  ``send`` is asynchronous (the sending process is not delayed —
buffering is free, as in TCP with ample socket buffers); delivery time is
governed by the directed :class:`~repro.net.network.Link` between the two
hosts.  ``recv`` is a bounded-wait generator, honouring the everything-
has-a-timeout discipline that VISIT imposes on simulation-side code.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.des.resources import Mailbox
from repro.errors import (
    ChannelClosed,
    ConnectionRefused,
    FirewallBlocked,
    HostUnreachable,
    TimeoutExpired,
)
from repro.wire.codec import approx_size


class Packet:
    """A payload plus its wire size.

    Middleware messages are Python objects; their simulated size is either
    supplied explicitly (cost-model numbers) or estimated by the codec's
    :func:`~repro.wire.codec.approx_size` (exact for codec types, a
    reasonable envelope for dataclass messages).
    """

    __slots__ = ("payload", "size")

    def __init__(self, payload: Any, size: Optional[int] = None) -> None:
        self.payload = payload
        if size is None:
            if isinstance(payload, (bytes, bytearray, memoryview)):
                size = len(payload)
            else:
                size = approx_size(payload)
        self.size = int(size)

    def __repr__(self) -> str:
        return f"Packet({self.payload!r:.40}, size={self.size})"


class _Closed:
    """Sentinel queued onto a mailbox when the peer closes."""

    __slots__ = ()


_CLOSED = _Closed()

#: Wire size of connection-control messages (SYN, ACK, FIN).
CTRL_SIZE = 64

#: How long an un-timed connect waits before concluding the destination is
#: unreachable (the ICMP-less dark-partition case must still be bounded —
#: VISIT's everything-has-a-timeout rule applies to the fabric itself).
UNREACHABLE_GRACE = 3.0


class Connection:
    """One endpoint of an established duplex channel."""

    __slots__ = (
        "host", "peer_host", "port", "inbox", "peer", "closed",
        "bytes_sent", "messages_sent", "_link", "_link_ver",
    )

    def __init__(self, host, peer_host, port: int) -> None:
        self.host = host
        self.peer_host = peer_host
        self.port = port
        self.inbox = Mailbox(host.env)
        self.peer: Optional["Connection"] = None  # set by _pair
        self.closed = False
        self.bytes_sent = 0
        self.messages_sent = 0
        #: cached directed Link for host -> peer_host traffic, valid while
        #: the network's link table is unchanged (every send pays the
        #: topology lookup otherwise)
        self._link = None
        self._link_ver = -1

    @staticmethod
    def _pair(a: "Connection", b: "Connection") -> None:
        a.peer = b
        b.peer = a

    # -- sending -----------------------------------------------------------

    def send(self, payload: Any, size: Optional[int] = None) -> float:
        """Queue ``payload`` for delivery; return the delivery time.

        Never suspends the caller: the cost of a slow network is paid by
        the *receiver's* wait, not the sender (paper section 3.2: sends
        must not disturb the simulation).
        """
        if self.closed:
            raise ChannelClosed(f"send on closed connection to {self.peer_host.name}")
        pkt = payload if isinstance(payload, Packet) else Packet(payload, size)
        env = self.host.env
        network = self.host.network
        if not network.reachable(self.host.name, self.peer_host.name):
            # Partitioned mid-flow: the message is lost on the dark WAN.
            # The sender does not learn (TCP would buffer and retry until
            # its own timers fire); the receiver's recv timeout is the
            # failure signal, exactly as on a real flaky wide-area link.
            network.dropped_messages += 1
            return env.now
        link = self._link
        if link is None or self._link_ver != network._links_version:
            link = self._link = network.link(
                self.host.name, self.peer_host.name
            )
            self._link_ver = network._links_version
        deliver_at = link.reserve(pkt.size, env.now)
        self.bytes_sent += pkt.size
        self.messages_sent += 1
        peer_inbox = self.peer.inbox
        ev = env.timeout(deliver_at - env.now)
        ev.callbacks.append(lambda _ev: peer_inbox.put(pkt.payload))
        return deliver_at

    # -- receiving -----------------------------------------------------------

    def recv(self, timeout: Optional[float] = None):
        """Generator resolving to the next payload.

        Raises :class:`TimeoutExpired` on timeout and
        :class:`ChannelClosed` if the peer closed and the buffer drained.
        """
        ok, item = yield from self.inbox.recv(timeout)
        if not ok:
            raise TimeoutExpired(
                f"recv on {self.host.name}:{self.port} exceeded {timeout}s"
            )
        if isinstance(item, _Closed):
            self.closed = True
            raise ChannelClosed(f"peer {self.peer_host.name} closed the connection")
        return item

    def try_recv(self) -> tuple[bool, Any]:
        """Non-suspending receive: ``(True, payload)`` or ``(False, None)``."""
        ok, item = self.inbox.try_get()
        if ok and isinstance(item, _Closed):
            self.closed = True
            raise ChannelClosed(f"peer {self.peer_host.name} closed the connection")
        return ok, item

    def pending(self) -> int:
        """Number of already-delivered, unread messages."""
        return len(self.inbox)

    # -- teardown -----------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.peer is not None and not self.peer.closed:
            env = self.host.env
            if not self.host.network.reachable(
                self.host.name, self.peer_host.name
            ):
                # FIN lost to the partition: the peer is left half-open
                # and discovers the death through its own recv timeouts.
                self.host.network.dropped_messages += 1
                return
            link = self.host.network.link(self.host.name, self.peer_host.name)
            deliver_at = link.reserve(CTRL_SIZE, env.now)
            peer_inbox = self.peer.inbox
            ev = env.timeout(deliver_at - env.now)
            ev.callbacks.append(lambda _ev: peer_inbox.put(_CLOSED))

    def __repr__(self) -> str:
        return (
            f"Connection({self.host.name} <-> {self.peer_host.name}:{self.port}"
            f"{' closed' if self.closed else ''})"
        )


class Listener:
    """A passive socket: accepted connections arrive in a mailbox."""

    def __init__(self, host, port: int) -> None:
        self.host = host
        self.port = port
        self._backlog = Mailbox(host.env)
        self.accepted = 0

    def accept(self, timeout: Optional[float] = None):
        """Generator resolving to the next inbound :class:`Connection`."""
        ok, conn = yield from self._backlog.recv(timeout)
        if not ok:
            raise TimeoutExpired(
                f"accept on {self.host.name}:{self.port} exceeded {timeout}s"
            )
        self.accepted += 1
        return conn

    def try_accept(self) -> tuple[bool, Optional[Connection]]:
        return self._backlog.try_get()

    def close(self) -> None:
        self.host.close_port(self.port)

    def _enqueue(self, conn: Connection) -> None:
        self._backlog.put(conn)

    def __repr__(self) -> str:
        return f"Listener({self.host.name}:{self.port})"


def open_connection(src_host, dst_name: str, port: int, timeout: Optional[float]):
    """Generator implementing the connect handshake (one RTT).

    Firewall / NAT / refused outcomes are decided at the *destination*
    after the SYN propagates, and the error reaches the caller after the
    full round trip — matching what a real connect() experiences.
    """
    env = src_host.env
    network = src_host.network
    network.connect_attempts += 1
    dst_host = network.host(dst_name)

    if not network.reachable(src_host.name, dst_name):
        # The SYN vanishes into the partition; the caller waits out its
        # timeout (or the bounded grace) and learns the path is dark.
        wait = UNREACHABLE_GRACE if timeout is None else min(
            timeout, UNREACHABLE_GRACE
        )
        yield env.timeout(wait)
        raise HostUnreachable(
            f"no path {src_host.name} -> {dst_name} (partitioned)"
        )

    fwd = network.link(src_host.name, dst_name)
    rev = network.link(dst_name, src_host.name)
    syn_at = fwd.reserve(CTRL_SIZE, env.now)
    rtt_done = rev.reserve(CTRL_SIZE, syn_at) - env.now

    if timeout is not None and rtt_done > timeout:
        yield env.timeout(timeout)
        raise TimeoutExpired(
            f"connect {src_host.name} -> {dst_name}:{port} exceeded {timeout}s"
        )
    yield env.timeout(rtt_done)

    # Loopback traffic never crosses the firewall: the gateway and the
    # services behind it live inside the same protected domain.
    if src_host is not dst_host and not dst_host.accepts_inbound(port):
        raise FirewallBlocked(
            f"{dst_name} rejected inbound to port {port} "
            f"(nat={dst_host.nat}, {dst_host.firewall})"
        )
    listener = dst_host.listeners.get(port)
    if listener is None:
        raise ConnectionRefused(f"nothing listening on {dst_name}:{port}")

    local = Connection(src_host, dst_host, port)
    remote = Connection(dst_host, src_host, port)
    Connection._pair(local, remote)
    listener._enqueue(remote)
    network.log.emit(
        src_host.name, "connect", dst=dst_name, port=port, rtt=round(rtt_done, 6)
    )
    return local
