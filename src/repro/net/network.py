"""Network topology: hosts and links with latency + serialized bandwidth."""

from __future__ import annotations

from typing import Optional

from repro.des import Environment
from repro.errors import NetworkError, HostUnreachable
from repro.net.firewall import Firewall
from repro.util.eventlog import EventLog


class Link:
    """A directed link with propagation latency and finite bandwidth.

    Bandwidth is modeled with FIFO serialization: each transfer occupies
    the link for ``size / bandwidth`` seconds starting no earlier than the
    end of the previous transfer, then propagates for ``latency`` seconds.
    This captures queueing under load without per-packet simulation.
    """

    def __init__(self, src: str, dst: str, latency: float, bandwidth: float) -> None:
        if latency < 0:
            raise NetworkError(f"negative latency on {src}->{dst}")
        if bandwidth <= 0:
            raise NetworkError(f"non-positive bandwidth on {src}->{dst}")
        self.src = src
        self.dst = dst
        self.latency = latency
        self.bandwidth = bandwidth  # bytes / second
        #: healthy-state values; :meth:`restore` returns to these
        self.base_latency = latency
        self.base_bandwidth = bandwidth
        self._free_at = 0.0
        self.bytes_carried = 0
        self.transfers = 0

    # -- fault injection ---------------------------------------------------

    def degrade(self, latency_factor: float = 1.0,
                bandwidth_factor: float = 1.0) -> None:
        """Worsen the link relative to its *healthy* state.

        ``latency_factor`` multiplies the base latency (>= 1);
        ``bandwidth_factor`` scales the base bandwidth (in (0, 1]).
        Degrades do not stack — each call is absolute against the base,
        and :meth:`restore` heals completely, so transient fault windows
        cannot leave residue.
        """
        if latency_factor < 1.0:
            raise NetworkError(
                f"latency_factor must be >= 1, got {latency_factor}"
            )
        if not 0.0 < bandwidth_factor <= 1.0:
            raise NetworkError(
                f"bandwidth_factor must be in (0, 1], got {bandwidth_factor}"
            )
        self.latency = self.base_latency * latency_factor
        self.bandwidth = self.base_bandwidth * bandwidth_factor

    def restore(self) -> None:
        """Heal back to the healthy-state latency/bandwidth."""
        self.latency = self.base_latency
        self.bandwidth = self.base_bandwidth

    @property
    def degraded(self) -> bool:
        return (self.latency != self.base_latency
                or self.bandwidth != self.base_bandwidth)

    def reserve(self, nbytes: int, now: float) -> float:
        """Reserve the link for a transfer; return the *delivery* time."""
        start = max(now, self._free_at)
        serialize = nbytes / self.bandwidth
        self._free_at = start + serialize
        self.bytes_carried += nbytes
        self.transfers += 1
        return self._free_at + self.latency

    def one_way_delay(self, nbytes: int) -> float:
        """Unloaded delivery delay for a message of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth

    def __repr__(self) -> str:
        return (
            f"Link({self.src}->{self.dst}, {self.latency * 1e3:.3g} ms, "
            f"{self.bandwidth * 8 / 1e6:.4g} Mbit/s)"
        )


class Host:
    """A named machine on the simulated network."""

    def __init__(
        self,
        network: "Network",
        name: str,
        firewall: Optional[Firewall] = None,
        nat: bool = False,
        multicast: bool = True,
        cpu_count: int = 1,
    ) -> None:
        self.network = network
        self.name = name
        self.firewall = firewall or Firewall.open()
        #: NAT hosts can originate connections but never accept inbound.
        self.nat = nat
        #: whether the site has native multicast (section 2.4 distinguishes
        #: "all participating sites who have native multicast enabled").
        self.multicast = multicast
        self.listeners: dict[int, "Listener"] = {}
        self.cpu_count = cpu_count

    @property
    def env(self) -> Environment:
        return self.network.env

    def listen(self, port: int) -> "Listener":
        from repro.net.channel import Listener

        if port in self.listeners:
            raise NetworkError(f"{self.name}: port {port} already in use")
        listener = Listener(self, port)
        self.listeners[port] = listener
        return listener

    def close_port(self, port: int) -> None:
        self.listeners.pop(port, None)

    def connect(self, dst: str, port: int, timeout: Optional[float] = None):
        """Generator: open a connection to ``dst:port``.

        Yields DES events; resolves to a :class:`Connection` or raises
        (ConnectionRefused, FirewallBlocked, HostUnreachable,
        TimeoutExpired).
        """
        from repro.net.channel import open_connection

        return open_connection(self, dst, port, timeout)

    def accepts_inbound(self, port: int) -> bool:
        return not self.nat and self.firewall.allows_inbound(port)

    def __repr__(self) -> str:
        return f"Host({self.name!r})"


class Network:
    """Topology container and link-lookup/routing authority.

    Hosts without an explicit link between them communicate over an
    implicit default link (``default_latency`` / ``default_bandwidth``),
    so scenario builders only need to profile the interesting paths.
    """

    #: Delay for host-local (loopback) traffic.
    LOOPBACK_LATENCY = 10e-6
    LOOPBACK_BANDWIDTH = 10e9 / 8  # 10 Gbit/s in bytes/s

    def __init__(
        self,
        env: Environment,
        default_latency: float = 0.050,
        default_bandwidth: float = 10e6 / 8,
        log: Optional[EventLog] = None,
    ) -> None:
        self.env = env
        self.hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self.default_latency = default_latency
        self.default_bandwidth = default_bandwidth
        self.log = log or EventLog(lambda: env.now)
        if log is not None:
            log.bind_clock(lambda: env.now)
        self.connect_attempts = 0
        #: bumped whenever the link table changes; connections use it to
        #: invalidate their cached Link objects
        self._links_version = 0
        #: host pairs with no connectivity (WAN partition between sites)
        self._partitions: set[frozenset] = set()
        #: hosts cut off from everyone (site-wide outage)
        self._isolated: set[str] = set()
        #: messages silently lost to partitions/isolation
        self.dropped_messages = 0

    # -- topology building ------------------------------------------------

    def add_host(self, name: str, **kwargs) -> Host:
        if name in self.hosts:
            raise NetworkError(f"duplicate host {name!r}")
        host = Host(self, name, **kwargs)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise HostUnreachable(f"unknown host {name!r}") from None

    def add_link(
        self, a: str, b: str, latency: float, bandwidth: float
    ) -> tuple[Link, Link]:
        """Create the directed link pair between two known hosts."""
        for name in (a, b):
            if name not in self.hosts:
                raise NetworkError(f"add_link references unknown host {name!r}")
        fwd = Link(a, b, latency, bandwidth)
        rev = Link(b, a, latency, bandwidth)
        self._links[(a, b)] = fwd
        self._links[(b, a)] = rev
        self._links_version += 1
        return fwd, rev

    def link(self, src: str, dst: str) -> Link:
        """The directed link used for ``src -> dst`` traffic.

        Loopback and implicit default links are created lazily so their
        traffic counters persist across calls.
        """
        if src not in self.hosts or dst not in self.hosts:
            raise HostUnreachable(f"no route {src!r} -> {dst!r}")
        key = (src, dst)
        found = self._links.get(key)
        if found is not None:
            return found
        if src == dst:
            made = Link(src, dst, self.LOOPBACK_LATENCY, self.LOOPBACK_BANDWIDTH)
        else:
            made = Link(src, dst, self.default_latency, self.default_bandwidth)
        self._links[key] = made
        return made

    # -- fault state -------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Cut connectivity between two hosts (both directions).

        In-flight messages already scheduled for delivery still arrive
        (they are on the wire); everything sent *after* the cut is lost
        and new connects fail with :class:`~repro.errors.HostUnreachable`.
        """
        for name in (a, b):
            if name not in self.hosts:
                raise NetworkError(f"partition references unknown host {name!r}")
        if a == b:
            raise NetworkError("cannot partition a host from itself")
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    def isolate(self, name: str) -> None:
        """Cut one host off from every other host (site outage)."""
        if name not in self.hosts:
            raise NetworkError(f"isolate references unknown host {name!r}")
        self._isolated.add(name)

    def rejoin(self, name: str) -> None:
        self._isolated.discard(name)

    def reachable(self, src: str, dst: str) -> bool:
        """Whether traffic can currently flow ``src -> dst``."""
        if not self._partitions and not self._isolated:
            # Unfaulted fabric: skip the per-send frozenset allocation —
            # this is every message's fast path outside chaos windows.
            return True
        if src == dst:
            return True  # loopback survives any WAN event
        if src in self._isolated or dst in self._isolated:
            return False
        return frozenset((src, dst)) not in self._partitions

    def partitions(self) -> list[tuple[str, str]]:
        return sorted(tuple(sorted(p)) for p in self._partitions)

    def isolated_hosts(self) -> list[str]:
        return sorted(self._isolated)

    def links_of(self, name: str) -> list[Link]:
        """Every existing link touching a host (both directions)."""
        return [
            link for (a, b), link in self._links.items()
            if name in (a, b)
        ]

    # -- accounting --------------------------------------------------------

    def total_bytes(self) -> int:
        return sum(link.bytes_carried for link in self._links.values())

    def bytes_between(self, a: str, b: str) -> int:
        """Bytes carried in both directions between two hosts."""
        total = 0
        for key in ((a, b), (b, a)):
            if key in self._links:
                total += self._links[key].bytes_carried
        return total

    def links(self) -> list[Link]:
        return list(self._links.values())
