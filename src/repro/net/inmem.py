"""Synchronous in-memory transport for unit-testing protocol layers.

Protocol code (VISIT messages, OGSA envelopes, steering control) is
written sans-IO where possible; :class:`SyncPipe` lets tests drive both
ends of a conversation without standing up the DES network.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional, Tuple


class SyncEndpoint:
    """One end of a :class:`SyncPipe`: ``send`` and ``poll``."""

    def __init__(self) -> None:
        self._rx: deque = deque()
        self._peer: Optional["SyncEndpoint"] = None
        self.closed = False
        self.bytes_sent = 0

    def send(self, payload: Any, size: Optional[int] = None) -> None:
        if self.closed or self._peer is None or self._peer.closed:
            raise ConnectionError("pipe closed")
        if size is None and isinstance(payload, (bytes, bytearray)):
            size = len(payload)
        self.bytes_sent += size or 0
        self._peer._rx.append(payload)

    def poll(self) -> Tuple[bool, Any]:
        """Non-blocking receive: ``(True, payload)`` or ``(False, None)``."""
        if self._rx:
            return True, self._rx.popleft()
        return False, None

    def recv(self) -> Any:
        """Receive, raising ``LookupError`` if nothing is queued.

        In a synchronous pipe "blocking" is meaningless; a missing message
        is a test bug, so fail loudly.
        """
        ok, item = self.poll()
        if not ok:
            raise LookupError("recv on empty SyncEndpoint")
        return item

    def pending(self) -> int:
        return len(self._rx)

    def close(self) -> None:
        self.closed = True


class SyncPipe:
    """A pair of connected synchronous endpoints."""

    def __init__(self) -> None:
        self.a = SyncEndpoint()
        self.b = SyncEndpoint()
        self.a._peer = self.b
        self.b._peer = self.a

    def ends(self) -> Tuple[SyncEndpoint, SyncEndpoint]:
        return self.a, self.b
