"""Simulated wide-area network substrate.

Models the 2003-era Grid fabric the paper ran on: named hosts joined by
links with latency and bandwidth (with FIFO serialization, so concurrent
transfers queue), TCP-like connections with listeners, per-host firewalls
and NAT (section 4.6 notes VR sites "are often behind firewalls which do
not support multicast and sometimes even do NAT"), multicast groups and
unicast bridges.

Everything runs in virtual time on :mod:`repro.des`, which makes latency
budgets (sections 4.2-4.4) exactly measurable and deterministic.
"""

from repro.net.channel import Connection, Listener, Packet
from repro.net.firewall import Firewall
from repro.net.multicast import MulticastGroup, UnicastBridge
from repro.net.network import Host, Link, Network
from repro.net.inmem import SyncPipe

__all__ = [
    "Network",
    "Host",
    "Link",
    "Connection",
    "Listener",
    "Packet",
    "Firewall",
    "MulticastGroup",
    "UnicastBridge",
    "SyncPipe",
]
