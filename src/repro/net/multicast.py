"""Multicast groups and unicast bridges.

Access Grid media (vic/rat) run over IP multicast; section 2.4 separates
sites "who have native multicast enabled" (passive collaboration works out
of the box) from those that need help, and section 4.6 adds
"unicast/multicast bridges and point to point sessions" for firewalled/NAT
virtual-reality sites.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.des.resources import Mailbox
from repro.errors import NetworkError
from repro.net.channel import Packet
from repro.net.network import Host, Network


class MulticastGroup:
    """A multicast address: one send fans out to every subscribed host.

    The sender pays a single uplink serialization (the defining economy of
    multicast); each receiver then sees its own link latency.  Hosts with
    ``multicast=False`` or a multicast-blocking firewall cannot join
    natively and must go through a :class:`UnicastBridge`.
    """

    def __init__(self, network: Network, address: str) -> None:
        self.network = network
        self.address = address
        self._members: dict[str, Mailbox] = {}
        self.packets_sent = 0
        self.bytes_sent = 0

    def join(self, host: Host) -> Mailbox:
        """Subscribe ``host``; returns the mailbox receiving group traffic."""
        if not host.multicast or not host.firewall.allow_multicast:
            raise NetworkError(
                f"{host.name} has no native multicast; use a UnicastBridge"
            )
        if host.name in self._members:
            return self._members[host.name]
        box = Mailbox(host.env)
        self._members[host.name] = box
        return box

    def leave(self, host: Host) -> None:
        self._members.pop(host.name, None)

    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    def send(self, src: Host, payload: Any, size: Optional[int] = None) -> None:
        """Multicast ``payload`` from ``src`` to all members (except src)."""
        pkt = payload if isinstance(payload, Packet) else Packet(payload, size)
        env = src.env
        self.packets_sent += 1
        self.bytes_sent += pkt.size
        # One uplink serialization on the sender's side...
        uplink = self.network.link(src.name, src.name)
        sent_at = env.now + pkt.size / uplink.bandwidth
        for name, box in list(self._members.items()):
            if name == src.name:
                continue
            # ...then per-receiver propagation latency (replication is done
            # by the network, not the sender, so no per-member bandwidth).
            link = self.network.link(src.name, name)
            link.bytes_carried += pkt.size
            link.transfers += 1
            delay = (sent_at - env.now) + link.latency
            ev = env.timeout(delay)
            ev.callbacks.append(lambda _ev, b=box: b.put(pkt.payload))


class UnicastBridge:
    """Relays group traffic to/from hosts without native multicast.

    The bridge host joins the group natively and forwards every packet to
    each bridged host over plain unicast — paying full per-receiver
    bandwidth, which is exactly why bridges scale worse than multicast
    (and why the bench for FIG4 can show the difference).
    """

    def __init__(self, group: MulticastGroup, bridge_host: Host) -> None:
        self.group = group
        self.bridge_host = bridge_host
        self._uplink_box = group.join(bridge_host)
        self._bridged: dict[str, Mailbox] = {}
        self.relayed_packets = 0
        self._proc = bridge_host.env.process(self._relay_loop())

    def attach(self, host: Host) -> Mailbox:
        """Bridge ``host`` into the group; returns its receive mailbox."""
        if host.name in self._bridged:
            return self._bridged[host.name]
        box = Mailbox(host.env)
        self._bridged[host.name] = box
        return box

    def detach(self, host: Host) -> None:
        self._bridged.pop(host.name, None)

    def send_from(self, host: Host, payload: Any, size: Optional[int] = None) -> None:
        """Send into the group on behalf of a bridged (unicast-only) host."""
        if host.name not in self._bridged:
            raise NetworkError(f"{host.name} is not attached to this bridge")
        pkt = payload if isinstance(payload, Packet) else Packet(payload, size)
        env = host.env
        # Unicast hop to the bridge, then native multicast out.
        link = self.group.network.link(host.name, self.bridge_host.name)
        deliver_at = link.reserve(pkt.size, env.now)
        ev = env.timeout(deliver_at - env.now)
        ev.callbacks.append(
            lambda _ev: self.group.send(self.bridge_host, pkt.payload, pkt.size)
        )

    def _relay_loop(self):
        env = self.bridge_host.env
        network = self.group.network
        while True:
            payload = yield self._uplink_box.get()
            pkt = Packet(payload)
            self.relayed_packets += 1
            # Full unicast fan-out: one serialized transfer per bridged host.
            for name, box in list(self._bridged.items()):
                link = network.link(self.bridge_host.name, name)
                deliver_at = link.reserve(pkt.size, env.now)
                ev = env.timeout(deliver_at - env.now)
                ev.callbacks.append(lambda _ev, b=box: b.put(pkt.payload))
