"""Per-host firewall policy.

UNICORE's claim to firewall-friendliness (section 3.1) is that *all*
communication is handled "over a single fixed TCP server-port"; VISIT's
weakness is its "dynamic TCP-port selection scheme [which] does not work
well with firewalls" (section 3.2).  To reproduce that trade-off the
firewall must actually block things.
"""

from __future__ import annotations

from typing import Iterable, Optional


class Firewall:
    """Inbound-port policy for a host.

    Parameters
    ----------
    open_ports:
        Ports that accept inbound connections.  ``None`` means *all* ports
        are open (an unfirewalled host); an empty set blocks everything.
    allow_multicast:
        Whether native multicast traffic may cross this firewall.
    """

    def __init__(
        self,
        open_ports: Optional[Iterable[int]] = None,
        allow_multicast: bool = True,
    ) -> None:
        self.open_ports = None if open_ports is None else frozenset(open_ports)
        self.allow_multicast = allow_multicast
        #: saved (open_ports, allow_multicast) while locked down
        self._pre_lockdown: Optional[tuple] = None

    def allows_inbound(self, port: int) -> bool:
        return self.open_ports is None or port in self.open_ports

    # -- mid-simulation transitions ----------------------------------------

    def lockdown(self) -> None:
        """Deny-all transition without rebuilding the host.

        A site's security team reacting to an incident mid-session: every
        inbound port closes and multicast stops crossing.  Established
        connections are not torn down (the policy gates new *connects*),
        which matches how stateful firewalls treat existing flows.
        Idempotent; :meth:`lift_lockdown` restores the previous policy.
        """
        if self._pre_lockdown is None:
            self._pre_lockdown = (self.open_ports, self.allow_multicast)
        self.open_ports = frozenset()
        self.allow_multicast = False

    def lift_lockdown(self) -> None:
        """Restore the policy that was in force before :meth:`lockdown`."""
        if self._pre_lockdown is not None:
            self.open_ports, self.allow_multicast = self._pre_lockdown
            self._pre_lockdown = None

    @property
    def locked_down(self) -> bool:
        return self._pre_lockdown is not None

    @classmethod
    def open(cls) -> "Firewall":
        """No restrictions at all."""
        return cls(open_ports=None, allow_multicast=True)

    @classmethod
    def single_port(cls, port: int, allow_multicast: bool = False) -> "Firewall":
        """The HPC-centre policy UNICORE was designed for: one gateway
        port open, no multicast."""
        return cls(open_ports={port}, allow_multicast=allow_multicast)

    @classmethod
    def closed(cls) -> "Firewall":
        """Deny all inbound (outbound-only site, e.g. behind NAT)."""
        return cls(open_ports=(), allow_multicast=False)

    def __repr__(self) -> str:
        ports = "all" if self.open_ports is None else sorted(self.open_ports)
        return f"Firewall(open_ports={ports}, multicast={self.allow_multicast})"
