"""Reactive elastic capacity: grow and drain service sites on queue depth.

The scaler polls the admission queue every ``interval`` virtual seconds.
A deep queue means offered load exceeds service capacity, so it grows
the fabric — reopening a previously drained site when one exists
(cheap), otherwise building a fresh site through
:meth:`~repro.fleet.driver.FleetDriver.add_site` (a full gateway + NJS +
TSI + container + registry front-end stack) and, optionally, widening
the shared registry shard set so find/publish pressure scales with the
session count.  An empty queue with idle *scaler-built* sites drains the
newest idle one; the base fabric the operator provisioned is never
touched, so capacity always returns to its floor and never below.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LoadError
from repro.load.admission import AdmissionController
from repro.load.capacity import capacity_of


class ReactiveAutoscaler:
    """Threshold scaler bound to one AdmissionController."""

    def __init__(
        self,
        controller: AdmissionController,
        max_sites: int = 8,
        high_depth: int = 4,
        low_depth: int = 0,
        interval: float = 1.0,
        cooldown: float = 2.0,
        queue_slots: Optional[int] = None,
        container_slots: int = 8,
        vbroker_slots: int = 8,
        grow_shards: bool = True,
        use_backpressure: bool = False,
        pressure=None,
        pressure_high: float = 0.75,
    ) -> None:
        if max_sites < len(controller.driver.sites):
            raise LoadError("max_sites is below the already-provisioned base fabric")
        if high_depth < 1 or low_depth < 0 or low_depth >= high_depth:
            raise LoadError("need 0 <= low_depth < high_depth, high >= 1")
        if interval <= 0 or cooldown < 0:
            raise LoadError("interval must be > 0 and cooldown >= 0")
        if not 0.0 < pressure_high <= 1.0:
            raise LoadError("pressure_high must be in (0, 1]")
        self.controller = controller
        self.driver = controller.driver
        self.env = controller.env
        self.max_sites = max_sites
        self.high_depth = high_depth
        self.low_depth = low_depth
        self.interval = interval
        self.cooldown = cooldown
        self.queue_slots = queue_slots
        self.container_slots = container_slots
        self.vbroker_slots = vbroker_slots
        self.grow_shards = grow_shards
        self.pressure_high = pressure_high
        #: optional :class:`repro.obs.protect.BackpressureSignal`; when
        #: set (directly or via ``use_backpressure``) a pressure reading
        #: at/above ``pressure_high`` forces growth and vetoes drains
        #: even while the raw queue depth looks calm — the catch-up
        #: component sees a live runner falling behind before the queue
        #: backs up.
        self.pressure = pressure
        if use_backpressure and self.pressure is None:
            from repro.obs.protect import BackpressureSignal

            self.pressure = BackpressureSignal(controller)
        #: site indices this scaler built (the only ones it may drain)
        self.added_sites: list[int] = []
        #: (virtual time, "grow" | "drain", site index) audit trail
        self.events: list[tuple[float, str, int]] = []
        self._last_action = -float("inf")
        self.env.process(self._loop())

    # -- the control loop --------------------------------------------------

    def _loop(self):
        while True:
            yield self.env.timeout(self.interval)
            self._step()

    def _step(self) -> None:
        if self.env.now - self._last_action < self.cooldown:
            return
        depth = self.controller.queue_depth
        pressured = (self.pressure is not None and self.pressure.pressure() >= self.pressure_high)
        if (depth >= self.high_depth or pressured) and self.active_sites() < self.max_sites:
            self._grow()
        elif depth <= self.low_depth and not pressured:
            self._drain_one_idle()

    def active_sites(self) -> int:
        return len(self.controller.ledger.active_sites())

    def _grow(self) -> None:
        ledger = self.controller.ledger
        drained = [i for i in self.added_sites if ledger.is_drained(i)]
        if drained:
            idx = drained[0]
            ledger.reopen(idx)
        else:
            site = self.driver.add_site(queue_slots=self.queue_slots)
            ledger.register_site(
                site.index,
                capacity_of(site, container_slots=self.container_slots,
                            vbroker_slots=self.vbroker_slots),
            )
            if self.grow_shards:
                self.driver.add_registry_shard()
            self.added_sites.append(site.index)
            idx = site.index
        self._last_action = self.env.now
        self.controller.telemetry.record_scale(+1)
        self.events.append((self.env.now, "grow", idx))
        # New capacity may unblock the head of the queue right now.
        self.controller.kick()

    def _drain_one_idle(self) -> None:
        ledger = self.controller.ledger
        idle = [i for i in self.added_sites if not ledger.is_drained(i) and ledger.inflight(i) == 0]
        if not idle:
            return
        idx = idle[-1]  # newest first: shrink back toward the base fabric
        ledger.drain(idx)
        self._last_action = self.env.now
        self.controller.telemetry.record_scale(-1)
        self.events.append((self.env.now, "drain", idx))
