"""Pluggable placement policies: which site gets the next session.

A policy sees the spec at the head of the admission queue and the
capacity ledger, and answers with a site index — or ``None`` when no
acceptable site has room, which leaves the session queued.  Policies are
deterministic given their seed, like everything else in the DES.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional

from repro.errors import LoadError
from repro.load.capacity import CapacityLedger


class PlacementPolicy:
    """Interface: ``choose(spec, ledger) -> site index or None``."""

    def choose(self, spec, ledger: CapacityLedger) -> Optional[int]:
        raise NotImplementedError


class LeastLoaded(PlacementPolicy):
    """The site with the most free slots; ties break to the lowest index.

    The classic global-knowledge baseline: best balance, but in a real
    federation it implies fresh load data from every site on every
    decision.
    """

    def choose(self, spec, ledger: CapacityLedger) -> Optional[int]:
        room = ledger.sites_with_room()
        if not room:
            return None
        return max(room, key=lambda i: (ledger.free(i), -i))


class LocalityAffine(PlacementPolicy):
    """Prefer the session's *home* site (stable hash of its link
    profile), falling back to least-loaded when home is full.

    Sessions on the same link class land together — the pattern of users
    steering from the same campus — at the cost of hotter homes.
    """

    def __init__(self) -> None:
        self._fallback = LeastLoaded()

    def home(self, spec, ledger: CapacityLedger) -> Optional[int]:
        active = ledger.active_sites()
        if not active:
            return None
        key = zlib.crc32(spec.profile.encode("utf-8"))
        return active[key % len(active)]

    def choose(self, spec, ledger: CapacityLedger) -> Optional[int]:
        home = self.home(spec, ledger)
        if home is not None and ledger.free(home) > 0:
            return home
        return self._fallback.choose(spec, ledger)


class PowerOfTwoChoices(PlacementPolicy):
    """Sample two random sites with room, take the less loaded.

    The Mitzenmacher result: two random probes get exponentially better
    balance than one, without least-loaded's global view.  Seeded RNG
    keeps runs reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose(self, spec, ledger: CapacityLedger) -> Optional[int]:
        room = ledger.sites_with_room()
        if not room:
            return None
        if len(room) == 1:
            return room[0]
        a, b = self._rng.sample(room, 2)
        # Less inflight wins; ties break to the lower index for determinism.
        return min((a, b), key=lambda i: (ledger.inflight(i), i))


POLICIES = {
    "least-loaded": LeastLoaded,
    "locality": LocalityAffine,
    "p2c": PowerOfTwoChoices,
}


def make_policy(name: str, seed: int = 0) -> PlacementPolicy:
    """Policy by name; ``p2c`` takes the seed, the others ignore it."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise LoadError(
            f"unknown placement policy {name!r}; "
            f"expected one of {sorted(POLICIES)}"
        ) from None
    return cls(seed) if cls is PowerOfTwoChoices else cls()
