"""SLO classes and goodput accounting for open-loop admission.

A session arrives belonging to a *class* that fixes how it queues: its
priority against other classes, how long the caller is willing to wait
before abandoning (``patience``), and the admission-wait SLO the grid is
judged against.  The scorecard at the end folds the per-class queueing
counters (kept in :class:`repro.fleet.telemetry.QueueTelemetry`) together
with session outcomes into a goodput number: sessions that were admitted
within their SLO *and* ran to completion, per virtual second.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import LoadError


@dataclass(frozen=True)
class SloClass:
    """One admission class: priority, patience and the wait SLO."""

    name: str
    #: lower fires first at the same instant (0 = most urgent)
    priority: int
    #: admission-wait SLO in virtual seconds
    wait_slo: float
    #: the caller gives up after queueing this long
    patience: float

    def __post_init__(self) -> None:
        if self.wait_slo <= 0 or self.patience <= 0:
            raise LoadError(f"class {self.name!r}: wait_slo and patience must be > 0")
        if self.patience < self.wait_slo:
            raise LoadError(
                f"class {self.name!r}: patience {self.patience} below the "
                f"wait SLO {self.wait_slo} means every SLO miss abandons "
                "before it can be counted — widen patience"
            )


#: a human waiting at a workstation to steer (the paper's live demo)
INTERACTIVE = SloClass("interactive", priority=0, wait_slo=3.0, patience=8.0)
#: an unattended parameter-sweep job; patient but low priority
BATCH = SloClass("batch", priority=1, wait_slo=12.0, patience=40.0)
#: fault-recovery requeues: already-admitted work displaced by an
#: outage jumps every arrival class and waits out capacity rebuilds
RETRY = SloClass("retry", priority=-1, wait_slo=30.0, patience=120.0)


def classify(spec) -> SloClass:
    """Default spec -> class mapping: collaborative sessions (several
    humans in AG venues) are interactive; single-participant runs queue
    as batch work."""
    return INTERACTIVE if spec.participants > 1 else BATCH


@dataclass
class SloScorecard:
    """End-of-run SLO verdict for an open-loop run."""

    offered: int
    admitted: int
    completed_in_slo: int
    horizon: float
    #: class name -> {offered, admitted, slo_met, attainment}
    by_class: dict

    @property
    def goodput(self) -> float:
        """Sessions completed within their admission SLO per virtual s."""
        if self.horizon <= 0:
            return math.nan
        return self.completed_in_slo / self.horizon

    def to_dict(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "completed_in_slo": self.completed_in_slo,
            "goodput_per_s": self.goodput,
            "by_class": self.by_class,
        }

    def render(self) -> str:
        lines = [
            f"goodput: {self.completed_in_slo}/{self.offered} offered "
            f"sessions completed within SLO over {self.horizon:.0f}s "
            f"-> {self.goodput:.3f}/s"
        ]
        for name, row in sorted(self.by_class.items()):
            att = row["attainment"]
            lines.append(
                f"  class {name:<12} offered={row['offered']:>4} "
                f"admitted={row['admitted']:>4} slo_met={row['slo_met']:>4} "
                f"attainment={'-' if math.isnan(att) else f'{att:.0%}'}"
            )
        return "\n".join(lines)


def scorecard(controller, horizon: float) -> SloScorecard:
    """Build the scorecard from a finished AdmissionController run.

    ``completed_in_slo`` requires both halves: the admission wait met the
    class SLO *and* the session itself ran to completion (a session that
    was admitted on time but failed mid-run is not goodput).
    """
    tel = controller.driver.telemetry
    q = tel.queue
    if q is None:
        raise LoadError("scorecard needs an open-loop (queue) telemetry")
    completed_in_slo = 0
    for name, cls, met_slo in controller.admissions:
        session = tel.sessions.get(name)
        if met_slo and session is not None and session.completed:
            completed_in_slo += 1
    by_class = {}
    for cname, c in q.by_class.items():
        by_class[cname] = {
            "offered": c["offered"],
            "admitted": c["admitted"],
            "slo_met": c["slo_met"],
            "attainment": (
                c["slo_met"] / c["admitted"] if c["admitted"] else math.nan
            ),
        }
    return SloScorecard(
        offered=q.offered,
        admitted=q.admitted,
        completed_in_slo=completed_in_slo,
        horizon=horizon,
        by_class=by_class,
    )
