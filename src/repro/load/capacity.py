"""Per-site capacity models and the in-flight session ledger.

A site can serve only so many concurrent sessions, and the binding
constraint differs by layer: the gateway's batch queue (TSI slots behind
the single open port), the OGSI::Lite container (every session deploys
two services and takes steering traffic), and the vbroker fan-out (each
collaborative session multiplexes to several visualizations).  A
:class:`SiteCapacity` records all three and the effective slot count is
their minimum; the :class:`CapacityLedger` tracks in-flight sessions
against those slots and is the single source of truth the admission
controller, placement policies and autoscaler all consult.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LoadError


@dataclass(frozen=True)
class SiteCapacity:
    """What bounds one site's concurrent sessions, layer by layer."""

    gateway_slots: int
    container_slots: int
    vbroker_slots: int

    def __post_init__(self) -> None:
        for name in ("gateway_slots", "container_slots", "vbroker_slots"):
            if getattr(self, name) < 1:
                raise LoadError(f"{name} must be >= 1")

    @property
    def slots(self) -> int:
        """The effective concurrency bound: the tightest layer wins."""
        return min(self.gateway_slots, self.container_slots, self.vbroker_slots)


def capacity_of(site, container_slots: int = 8, vbroker_slots: int = 8) -> SiteCapacity:
    """Capacity model for a :class:`~repro.fleet.driver.FleetSite`.

    The gateway bound is read off the fabric itself (the TSI batch
    queue); the container and vbroker bounds are policy knobs — the
    simulated container and broker do not enforce a hard cap, so these
    encode how far an operator is willing to load them.
    """
    return SiteCapacity(
        gateway_slots=int(site.tsi.queue.capacity),
        container_slots=container_slots,
        vbroker_slots=vbroker_slots,
    )


class CapacityLedger:
    """In-flight sessions per site, with drain/reopen for elasticity.

    Draining a site removes it from placement without touching sessions
    already running there — the autoscaler's scale-down path.  All
    methods raise :class:`~repro.errors.LoadError` on misuse (acquiring
    a full or drained site, releasing below zero) because a bookkeeping
    slip here silently corrupts every admission decision downstream.
    """

    def __init__(self) -> None:
        self._slots: dict[int, int] = {}
        self._inflight: dict[int, int] = {}
        self._drained: set[int] = set()
        #: sites lost to a fault: unplaceable like drained, but *not* an
        #: operator decision — the chaos injector flips these, and
        #: sessions that die there still release their slots cleanly
        self._failed: set[int] = set()

    # -- membership --------------------------------------------------------

    def register_site(self, index: int, capacity: "SiteCapacity | int") -> None:
        if index in self._slots:
            raise LoadError(f"site {index} already registered in the ledger")
        slots = capacity if isinstance(capacity, int) else capacity.slots
        if slots < 1:
            raise LoadError(f"site {index} needs >= 1 slot, got {slots}")
        self._slots[index] = slots
        self._inflight[index] = 0

    def drain(self, index: int) -> None:
        """Stop placing on a site; running sessions finish undisturbed."""
        self._check(index)
        self._drained.add(index)

    def reopen(self, index: int) -> None:
        self._check(index)
        self._drained.discard(index)

    def is_drained(self, index: int) -> bool:
        self._check(index)
        return index in self._drained

    def fail(self, index: int) -> None:
        """A fault took the site down: nothing places there until
        :meth:`repair`.  In-flight counts are untouched — the admission
        controller's release path still balances its acquires even when
        the sessions holding the slots died with the site."""
        self._check(index)
        self._failed.add(index)

    def repair(self, index: int) -> None:
        self._check(index)
        self._failed.discard(index)

    def is_failed(self, index: int) -> bool:
        self._check(index)
        return index in self._failed

    # -- accounting --------------------------------------------------------

    def _check(self, index: int) -> None:
        if index not in self._slots:
            raise LoadError(f"site {index} is not registered in the ledger")

    def acquire(self, index: int) -> None:
        self._check(index)
        if index in self._drained:
            raise LoadError(f"site {index} is drained; cannot place there")
        if index in self._failed:
            raise LoadError(f"site {index} is failed; cannot place there")
        if self._inflight[index] >= self._slots[index]:
            raise LoadError(
                f"site {index} is full " f"({self._inflight[index]}/{self._slots[index]})"
            )
        self._inflight[index] += 1

    def release(self, index: int) -> None:
        self._check(index)
        if self._inflight[index] == 0:
            raise LoadError(f"site {index}: release without acquire")
        self._inflight[index] -= 1

    # -- queries -----------------------------------------------------------

    def slots(self, index: int) -> int:
        self._check(index)
        return self._slots[index]

    def inflight(self, index: int) -> int:
        self._check(index)
        return self._inflight[index]

    def free(self, index: int) -> int:
        """Open slots at a site; drained and failed sites have none."""
        self._check(index)
        if index in self._drained or index in self._failed:
            return 0
        return self._slots[index] - self._inflight[index]

    def sites(self) -> list[int]:
        return sorted(self._slots)

    def active_sites(self) -> list[int]:
        return [i for i in self.sites() if i not in self._drained and i not in self._failed]

    def drained_sites(self) -> list[int]:
        return sorted(self._drained)

    def failed_sites(self) -> list[int]:
        return sorted(self._failed)

    def sites_with_room(self) -> list[int]:
        return [i for i in self.sites() if self.free(i) > 0]

    @property
    def total_slots(self) -> int:
        """Slots on active (non-drained) sites."""
        return sum(self._slots[i] for i in self.active_sites())

    @property
    def total_inflight(self) -> int:
        return sum(self._inflight.values())

    @property
    def utilization(self) -> float:
        total = self.total_slots
        if total == 0:
            return 1.0
        return self.total_inflight / total

    def snapshot(self) -> dict[int, tuple[int, int, bool]]:
        """site -> (inflight, slots, unplaceable) for reports and
        debugging; the flag covers both drained and failed sites."""
        return {
            i: (self._inflight[i], self._slots[i],
                i in self._drained or i in self._failed)
            for i in self.sites()
        }

    @classmethod
    def for_driver(
        cls, driver, container_slots: int = 8, vbroker_slots: int = 8
    ) -> "CapacityLedger":
        """A ledger covering every site the driver currently has."""
        ledger = cls()
        for site in driver.sites:
            ledger.register_site(
                site.index,
                capacity_of(site, container_slots=container_slots, vbroker_slots=vbroker_slots),
            )
        return ledger
