"""repro.load: open-loop traffic, admission control and elastic capacity.

PR 1's :mod:`repro.fleet` ran a *closed* batch of pre-declared sessions.
This package asks the production question on top of the same fabric —
what happens when sessions **arrive** rather than being scheduled:

* :mod:`repro.load.arrivals` — seeded arrival processes (Poisson,
  diurnal sinusoid, flash crowd, trace replay) minting
  :class:`~repro.fleet.spec.ScenarioSpec`s over virtual time;
* :mod:`repro.load.capacity` — per-site capacity models (gateway queue
  slots, container load, vbroker occupancy) and the
  :class:`CapacityLedger` of in-flight sessions;
* :mod:`repro.load.admission` — the :class:`AdmissionController`: a
  bounded priority-FIFO queue with per-class SLOs, caller abandonment
  and explicit reject-on-full backpressure, dispatching into
  :meth:`~repro.fleet.driver.FleetDriver.admit`;
* :mod:`repro.load.placement` — pluggable site-selection policies
  (least-loaded, locality-affine, power-of-two-choices);
* :mod:`repro.load.autoscale` — the :class:`ReactiveAutoscaler` growing
  and draining service sites (and registry shards) on queue depth;
* :mod:`repro.load.slo` — SLO classes, goodput accounting and the
  end-of-run :class:`SloScorecard`.

The quickest way in::

    driver = FleetDriver(n_sites=2, queue_slots=3)
    ctl = AdmissionController(driver, queue_limit=16)
    ReactiveAutoscaler(ctl, max_sites=5)
    report = ctl.run(PoissonArrivals(rate=1.0, horizon=30.0, seed=7))
"""

from repro.load.arrivals import (
    ARRIVAL_TUNABLES,
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    RecordedArrivals,
    TraceArrivals,
)
from repro.load.capacity import CapacityLedger, SiteCapacity, capacity_of
from repro.load.placement import (
    LeastLoaded,
    LocalityAffine,
    PlacementPolicy,
    PowerOfTwoChoices,
    make_policy,
)
from repro.load.slo import (
    BATCH,
    INTERACTIVE,
    SloClass,
    SloScorecard,
    classify,
    scorecard,
)
from repro.load.admission import AdmissionController
from repro.load.autoscale import ReactiveAutoscaler

__all__ = [
    "ARRIVAL_TUNABLES",
    "ArrivalProcess",
    "PoissonArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "TraceArrivals",
    "RecordedArrivals",
    "SiteCapacity",
    "capacity_of",
    "CapacityLedger",
    "PlacementPolicy",
    "LeastLoaded",
    "LocalityAffine",
    "PowerOfTwoChoices",
    "make_policy",
    "SloClass",
    "INTERACTIVE",
    "BATCH",
    "classify",
    "SloScorecard",
    "scorecard",
    "AdmissionController",
    "ReactiveAutoscaler",
]
