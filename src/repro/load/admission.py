"""The admission controller: a bounded queue in front of the grid.

Open-loop traffic cannot simply be launched on arrival — sites have
finite capacity (:mod:`repro.load.capacity`) and callers have finite
patience (:mod:`repro.load.slo`).  The controller is the job-queue /
worker-pool discipline in DES form:

* :meth:`AdmissionController.offer` — a session arrives; if the bounded
  queue is full it is **rejected on the spot** (explicit backpressure,
  never an unbounded queue), otherwise it queues by class priority;
* a queued caller **abandons** after its class's ``patience``;
* a dispatcher process admits the highest-priority queued session
  whenever the placement policy finds a site with a free slot, launching
  it through :meth:`repro.fleet.driver.FleetDriver.admit` and holding
  the slot until the session's process completes.

Every transition is recorded in the fleet's
:class:`~repro.fleet.telemetry.QueueTelemetry`, so the final
:class:`~repro.fleet.report.FleetReport` carries the queueing slice next
to the steering latencies.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

from repro.errors import LoadError, ReproError
from repro.fleet.report import FleetReport
from repro.load.arrivals import ArrivalProcess
from repro.load.capacity import CapacityLedger
from repro.load.placement import LeastLoaded, PlacementPolicy
from repro.load.slo import RETRY, SloClass, classify

QUEUED, ADMITTED, ABANDONED = "queued", "admitted", "abandoned"


class _Queued:
    """One waiting session."""

    __slots__ = ("spec", "cls", "offered_at", "seq", "state", "span")

    def __init__(self, spec, cls: SloClass, offered_at: float, seq: int) -> None:
        self.spec = spec
        self.cls = cls
        self.offered_at = offered_at
        self.seq = seq
        self.state = QUEUED
        self.span = None  # open "admit" span while queued (tracing only)


class AdmissionController:
    """Bounded priority-FIFO admission over a FleetDriver's fabric."""

    def __init__(
        self,
        driver,
        ledger: Optional[CapacityLedger] = None,
        placement: Optional[PlacementPolicy] = None,
        queue_limit: int = 16,
        classifier: Callable[..., SloClass] = classify,
    ) -> None:
        if queue_limit < 1:
            raise LoadError("admission queue needs at least one slot")
        self.driver = driver
        self.env = driver.env
        self.ledger = ledger or CapacityLedger.for_driver(driver)
        self.placement = placement or LeastLoaded()
        self.queue_limit = queue_limit
        self.classifier = classifier
        self.telemetry = driver.telemetry.ensure_queue()
        #: (name, class name, admission wait met the SLO) per admission,
        #: in admission order — the goodput raw material
        self.admissions: list[tuple[str, str, bool]] = []
        #: queue-transition subscribers ``cb(kind, **detail)`` — the
        #: chaos invariant monitor mirrors conservation laws off these
        self.observers: list[Callable] = []
        #: observability wiring (set by Observability.attach_controller
        #: when the driver was built with obs; both stay None otherwise
        #: and every hook below is guarded on that None)
        self.tracer = None
        self.quotas = None
        obs = getattr(driver, "obs", None)
        if obs is not None:
            obs.attach_controller(self)
        self._heap: list[tuple[int, int, _Queued]] = []
        self._queued = 0
        self._seq = 0
        self._wake = self.env.event()
        self.env.process(self._dispatch_loop())

    def _notify(self, kind: str, **detail) -> None:
        for cb in self.observers:
            cb(kind, **detail)

    # -- arrivals ----------------------------------------------------------

    def offer(self, spec) -> bool:
        """A session arrives now.  Returns False when rejected on a full
        queue (backpressure); True when it enters the queue."""
        now = self.env.now
        cls = self.classifier(spec)
        self.telemetry.record_offer(cls.name)
        self._notify("offer", spec=spec, cls=cls.name)
        if self._queued >= self.queue_limit:
            self.telemetry.record_reject(cls.name)
            self._notify("reject", spec=spec, cls=cls.name)
            self._trace_reject(spec, cls, "queue-full")
            return False
        if self.quotas is not None and not self.quotas.try_acquire(spec):
            # The tenant is over its inflight cap: shed this offer even
            # though the shared queue has room — one noisy tenant must
            # not occupy every seat.  Counts as a reject (the offered ==
            # admitted + rejected + abandoned + queued conservation law
            # keeps holding) with the reason in the observer detail.
            self.telemetry.record_reject(cls.name)
            self._notify("reject", spec=spec, cls=cls.name, reason="quota")
            self._trace_reject(spec, cls, "quota")
            return False
        self._enqueue(spec, cls, now)
        return True

    def _trace_reject(self, spec, cls: SloClass, reason: str) -> None:
        if self.tracer is None:
            return
        root = self.tracer.open_session(spec.name, cls=cls.name)
        self.tracer.instant("reject", parent=root, reason=reason)
        self.tracer.close_session(spec.name, "rejected")

    def requeue(self, spec, cls: Optional[SloClass] = None) -> None:
        """Re-enqueue a session displaced by a fault (recovery traffic).

        Unlike :meth:`offer` this never bounces on a full queue — the
        backpressure bound sheds *fresh* arrivals, but work the grid
        already accepted must not be lost to it — and it queues at
        :data:`~repro.load.slo.RETRY` priority, ahead of every arrival
        class, so recovery latency is the time to find capacity, not the
        time to out-wait the backlog.
        """
        now = self.env.now
        cls = cls or RETRY
        self.telemetry.record_requeue(cls.name)
        self._notify("requeue", spec=spec, cls=cls.name)
        self._enqueue(spec, cls, now)

    def _enqueue(self, spec, cls: SloClass, now: float) -> None:
        entry = _Queued(spec, cls, offered_at=now, seq=self._seq)
        if self.tracer is not None:
            root = self.tracer.open_session(spec.name, cls=cls.name)
            entry.span = self.tracer.record_admit(
                spec.name,
                self.tracer.begin("admit", cat="queue", parent=root, cls=cls.name),
            )
        self._seq += 1
        heapq.heappush(self._heap, (cls.priority, entry.seq, entry))
        self._queued += 1
        self.telemetry.record_depth(now, self._queued)
        self.env.process(self._patience(entry))
        # Admit synchronously when a slot is free right now — a caller
        # arriving at an idle grid must not wait on the dispatcher's
        # next wakeup, and the recorded wait is exactly zero.
        self._drain()

    def feed(self, arrivals: ArrivalProcess):
        """Offer every arrival at its instant; returns the feeder process."""
        return self.env.process(self._feed(arrivals))

    def _feed(self, arrivals):
        for at, spec in arrivals:
            if at > self.env.now:
                yield self.env.timeout(at - self.env.now)
            self.offer(spec)

    # -- queue machinery ---------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return self._queued

    def kick(self) -> None:
        """Wake the dispatcher (new arrival, freed slot, grown site)."""
        if not self._wake.triggered:
            self._wake.succeed()

    def _patience(self, entry: _Queued):
        yield self.env.timeout(entry.cls.patience)
        if entry.state == QUEUED:
            entry.state = ABANDONED
            self._queued -= 1
            self.telemetry.record_abandon(entry.cls.name)
            self.telemetry.record_depth(self.env.now, self._queued)
            if entry.span is not None:
                self.tracer.end(entry.span, outcome="abandoned")
                self.tracer.close_session(entry.spec.name, "abandoned")
            if self.quotas is not None:
                self.quotas.release(entry.spec.name)
            self._notify("abandon", spec=entry.spec, cls=entry.cls.name)

    def _peek(self) -> Optional[_Queued]:
        while self._heap and self._heap[0][2].state != QUEUED:
            heapq.heappop(self._heap)
        return self._heap[0][2] if self._heap else None

    def _dispatch_loop(self):
        while True:
            self._drain()
            self._wake = self.env.event()
            yield self._wake

    def _drain(self) -> None:
        while True:
            entry = self._peek()
            if entry is None:
                return
            site = self.placement.choose(entry.spec, self.ledger)
            if site is None:
                # Head-of-line waits for a freed slot; lower-priority
                # entries behind it must not jump the queue.
                return
            heapq.heappop(self._heap)
            self.ledger.acquire(site)
            self._notify("acquire", site=site)
            entry.state = ADMITTED
            self._queued -= 1
            now = self.env.now
            wait = now - entry.offered_at
            met_slo = wait <= entry.cls.wait_slo
            self.telemetry.record_admit(entry.cls.name, wait, met_slo)
            self.telemetry.record_depth(now, self._queued)
            if entry.span is not None:
                self.tracer.end(entry.span, outcome="admitted", site=site, wait=wait)
            self.admissions.append((entry.spec.name, entry.cls.name, met_slo))
            self._notify("admit", spec=entry.spec, cls=entry.cls.name, site=site, wait=wait)
            self.env.process(self._run_session(entry, site))

    def _run_session(self, entry: _Queued, site: int):
        proc = self.driver.admit(entry.spec, site=site)
        try:
            yield proc
        except ReproError:
            # The driver's session loop already recorded the failure in
            # its telemetry; the slot still frees below.
            pass
        finally:
            self.ledger.release(site)
            if self.quotas is not None:
                self.quotas.release(entry.spec.name)
            self._notify("release", site=site)
            self.kick()

    # -- backpressure ------------------------------------------------------

    def retry_after(self) -> float:
        """A worst-case bound, in sim seconds, on when a queue slot frees.

        Every queued entry leaves the queue by admission or by running
        out of patience, so the *minimum remaining patience* over queued
        entries bounds the time until the bounded queue has room again
        (slots usually free much sooner, when a running session
        completes).  With an empty queue the next :meth:`offer` is
        accepted immediately and the bound is zero.  This is the number
        a live front end converts to a ``Retry-After`` header.

        Entries whose patience has *already elapsed* are skipped: their
        abandonment sweep fires on the next kernel step, so their
        remaining patience clamps to zero — and a full queue of them
        used to advertise an immediate retry, inviting every rejected
        caller back at once (a thundering herd against a still-full
        queue).  The bound falls back to the next fresh entry's
        remaining patience; when *every* queued entry is expired it
        falls back to the shortest patience among them — the
        next-abandonment horizon a replacement entry would face.
        """
        now = self.env.now
        soonest = math.inf
        expired_floor = math.inf
        queued = False
        for _, _, entry in self._heap:
            if entry.state != QUEUED:
                continue
            queued = True
            remaining = entry.offered_at + entry.cls.patience - now
            if remaining > 0.0:
                if remaining < soonest:
                    soonest = remaining
            elif entry.cls.patience < expired_floor:
                expired_floor = entry.cls.patience
        if not queued:
            return 0.0
        if soonest < math.inf:
            return soonest
        if expired_floor < math.inf:
            return expired_floor
        return math.inf

    def backpressure(self) -> dict:
        """A JSON-able snapshot of the admission pressure right now."""
        return {
            "queue_depth": self._queued,
            "queue_limit": self.queue_limit,
            "saturated": self._queued >= self.queue_limit,
            "free_slots": sum(
                self.ledger.free(i) for i in self.ledger.active_sites()
            ),
            "retry_after": self.retry_after(),
        }

    # -- convenience -------------------------------------------------------

    def run(
        self,
        arrivals: ArrivalProcess,
        until: Optional[float] = None,
        grace: float = 45.0,
        wall_seconds: Optional[float] = None,
    ) -> FleetReport:
        """Feed the arrival stream, run the world, return the report.

        ``until`` defaults to the arrival horizon plus ``grace`` so
        sessions admitted near the end can finish.
        """
        self.feed(arrivals)
        self.env.run(until=arrivals.horizon + grace if until is None else until)
        return self.driver.report(wall_seconds=wall_seconds)
