"""Seeded arrival processes: ScenarioSpecs over virtual time.

An arrival process is an iterable of ``(at, spec)`` pairs with
non-decreasing absolute virtual times — the open-loop half of the
traffic question.  Specs are minted by cycling a base suite (the paper's
four applications by default) exactly like
:func:`repro.fleet.spec.fleet_of`, but with ``admission_offset=0``: *when*
a session starts is the arrival process's job, not the spec's.

Four processes cover the classic traffic shapes:

* :class:`PoissonArrivals` — memoryless arrivals at constant rate λ;
* :class:`DiurnalArrivals` — a nonhomogeneous Poisson process whose rate
  follows a day/night sinusoid (thinning method);
* :class:`FlashCrowdArrivals` — baseline Poisson with a burst window at
  a multiplied rate (the conference-demo effect);
* :class:`TraceArrivals` — replay of explicit arrival instants.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, Optional, Sequence

from repro.errors import LoadError
from repro.fleet.spec import (
    ScenarioSpec,
    mint_spec,
    paper_suite,
    rederive_steps,
)


class ArrivalProcess:
    """Base: turns a stream of arrival instants into ``(at, spec)``."""

    def __init__(
        self,
        horizon: float,
        suite: Optional[list[ScenarioSpec]] = None,
        prefix: str = "o",
        **overrides,
    ) -> None:
        if horizon <= 0:
            raise LoadError("arrival horizon must be > 0")
        self.horizon = float(horizon)
        self.prefix = prefix
        self._suite = list(suite) if suite else paper_suite()
        self._overrides = rederive_steps(overrides)

    def times(self) -> Iterator[float]:  # pragma: no cover - abstract
        raise NotImplementedError

    def spec_at(self, i: int) -> ScenarioSpec:
        # admission_offset stays 0: *when* a session starts is the
        # arrival process's job, not the spec's.
        return mint_spec(self._suite[i % len(self._suite)], i, self.prefix,
                         digits=5, **self._overrides)

    def __iter__(self) -> Iterator[tuple[float, ScenarioSpec]]:
        for i, at in enumerate(self.times()):
            yield at, self.spec_at(i)

    # -- analysis helpers --------------------------------------------------

    def count(self) -> int:
        """Arrivals over the horizon (consumes a fresh iterator)."""
        return sum(1 for _ in self.times())

    def offered_rate(self) -> float:
        return self.count() / self.horizon


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` per virtual second."""

    #: constructor parameters an adaptive campaign search may sweep
    TUNABLE: tuple[str, ...] = ("rate",)

    def __init__(self, rate: float, horizon: float, seed: int = 0, **kwargs) -> None:
        if rate <= 0:
            raise LoadError("arrival rate must be > 0")
        super().__init__(horizon, **kwargs)
        self.rate = rate
        self.seed = seed

    def times(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        t = 0.0
        while True:
            t += rng.expovariate(self.rate)
            if t >= self.horizon:
                return
            yield t


class _ThinnedArrivals(ArrivalProcess):
    """Nonhomogeneous Poisson via Lewis–Shedler thinning: generate at the
    peak rate, keep each arrival with probability rate(t)/peak."""

    def __init__(self, horizon: float, seed: int = 0, **kwargs) -> None:
        super().__init__(horizon, **kwargs)
        self.seed = seed

    def rate_at(self, t: float) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def peak_rate(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def times(self) -> Iterator[float]:
        rng = random.Random(self.seed)
        peak = self.peak_rate
        if peak <= 0:
            raise LoadError("peak arrival rate must be > 0")
        t = 0.0
        while True:
            t += rng.expovariate(peak)
            if t >= self.horizon:
                return
            if rng.random() < self.rate_at(t) / peak:
                yield t


class DiurnalArrivals(_ThinnedArrivals):
    """Rate swinging sinusoidally between ``base_rate`` and
    ``base_rate + amplitude`` with the given period (a compressed day):
    quiet at t=0, peaking mid-period."""

    #: constructor parameters an adaptive campaign search may sweep
    TUNABLE: tuple[str, ...] = ("base_rate", "amplitude", "period")

    def __init__(
        self,
        base_rate: float,
        amplitude: float,
        period: float,
        horizon: float,
        seed: int = 0,
        **kwargs,
    ) -> None:
        if base_rate < 0 or amplitude < 0 or base_rate + amplitude <= 0:
            raise LoadError("diurnal rates must be non-negative, peak > 0")
        if period <= 0:
            raise LoadError("diurnal period must be > 0")
        super().__init__(horizon, seed=seed, **kwargs)
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period = period

    def rate_at(self, t: float) -> float:
        phase = 2.0 * math.pi * t / self.period
        return self.base_rate + self.amplitude * 0.5 * (1.0 - math.cos(phase))

    @property
    def peak_rate(self) -> float:
        return self.base_rate + self.amplitude


class FlashCrowdArrivals(_ThinnedArrivals):
    """Baseline Poisson traffic with a burst window at ``burst_rate``
    (the showfloor demo moment: everyone connects at once)."""

    #: constructor parameters an adaptive campaign search may sweep
    TUNABLE: tuple[str, ...] = ("base_rate", "burst_rate", "burst_at", "burst_duration")

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        burst_at: float,
        burst_duration: float,
        horizon: float,
        seed: int = 0,
        **kwargs,
    ) -> None:
        if base_rate <= 0 or burst_rate < base_rate:
            raise LoadError("flash crowd needs base_rate > 0 and burst_rate >= base_rate")
        if burst_at < 0 or burst_duration <= 0:
            raise LoadError("burst window must lie in non-negative time")
        super().__init__(horizon, seed=seed, **kwargs)
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.burst_at = burst_at
        self.burst_duration = burst_duration

    def rate_at(self, t: float) -> float:
        if self.burst_at <= t < self.burst_at + self.burst_duration:
            return self.burst_rate
        return self.base_rate

    @property
    def peak_rate(self) -> float:
        return self.burst_rate


#: per-arrival-kind map of the continuous parameters an adaptive campaign
#: search may sweep (``arrival.<name>`` paths) — keyed by the campaign
#: ``arrival`` axis kind names, seeded kinds only (traces replay verbatim)
ARRIVAL_TUNABLES: dict[str, tuple[str, ...]] = {
    "poisson": PoissonArrivals.TUNABLE,
    "diurnal": DiurnalArrivals.TUNABLE,
    "flash": FlashCrowdArrivals.TUNABLE,
}


def _validate_instants(raw: Sequence[float], what: str = "trace") -> list[float]:
    """Coerce and validate a sequence of arrival instants, pinpointing
    the offending index and value in every error message."""
    instants: list[float] = []
    for i, value in enumerate(raw):
        try:
            t = float(value)
        except (TypeError, ValueError):
            raise LoadError(f"{what} instant [{i}] = {value!r} is not a number") from None
        if math.isnan(t) or math.isinf(t):
            raise LoadError(f"{what} instant [{i}] = {t!r} must be finite")
        if t < 0:
            raise LoadError(f"{what} instant [{i}] = {t!r} must be non-negative")
        if instants and t < instants[-1]:
            raise LoadError(
                f"{what} instant [{i}] = {t!r} goes back in time "
                f"(instant [{i - 1}] = {instants[-1]!r}); instants must "
                "be non-decreasing"
            )
        instants.append(t)
    if not instants:
        raise LoadError(f"a {what} needs at least one arrival instant")
    return instants


class TraceArrivals(ArrivalProcess):
    """Replay explicit arrival instants (e.g. recorded from a real run)."""

    def __init__(
        self, instants: Sequence[float], horizon: Optional[float] = None, **kwargs
    ) -> None:
        instants = _validate_instants(instants)
        if horizon is None:
            horizon = instants[-1] + 1e-9
        super().__init__(horizon, **kwargs)
        self.instants = instants

    def times(self) -> Iterator[float]:
        for t in self.instants:
            if t < self.horizon:
                yield t


class RecordedArrivals(ArrivalProcess):
    """Replay ``(at, spec)`` pairs captured by a live trace, verbatim.

    Where :class:`TraceArrivals` replays *instants* and mints fresh specs
    from a suite, this replays the **exact sessions** a live run offered
    — same names, seeds, durations, op mixes — which is what makes a
    recorded incident a byte-identical campaign cell
    (see :mod:`repro.live.trace`).  Rejected offers are replayed too:
    the admission controller re-decides them, and determinism makes it
    decide the same way.
    """

    def __init__(
        self, entries: Sequence[tuple[float, ScenarioSpec]], horizon: Optional[float] = None
    ) -> None:
        entries = list(entries)
        _validate_instants([at for at, _ in entries], what="recorded arrival")
        for i, (_, spec) in enumerate(entries):
            if not isinstance(spec, ScenarioSpec):
                raise LoadError(
                    f"recorded arrival [{i}] carries {type(spec).__name__}, " "not a ScenarioSpec"
                )
        names = [spec.name for _, spec in entries]
        if len(set(names)) != len(names):
            dupe = next(n for n in names if names.count(n) > 1)
            raise LoadError(
                f"recorded arrivals repeat session name {dupe!r}; a fleet "
                "registers one application per session"
            )
        if horizon is None:
            horizon = entries[-1][0] + 1e-9
        super().__init__(horizon)
        self.entries = entries

    def times(self) -> Iterator[float]:
        for at, _ in self.entries:
            if at < self.horizon:
                yield at

    def __iter__(self) -> Iterator[tuple[float, ScenarioSpec]]:
        for at, spec in self.entries:
            if at < self.horizon:
                yield at, spec
