"""Building climatization simulation (the HLRS Car-Show demo, section 4.7).

"Simulations allow determining and optimizing the climatization layout of
such a building" — architects and engineers collaboratively steer vents
while watching temperature cut-planes.

Model: temperature advection-diffusion on a 3D room grid with a
prescribed ventilation flow field (inlet jet at one wall, outlet at the
opposite wall), buoyancy-free, explicit upwind/FTCS stepping with a
stability guard.  Steerable: inlet flow speed, inlet temperature, and the
internal heat load (visitors + exhibits).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import SteeringError
from repro.sims.base import Simulation

_FULL = slice(None)


def _roll1(a: np.ndarray, s: int, axis: int) -> np.ndarray:
    """``np.roll(a, s, axis)`` for 0 < |s| < a.shape[axis], bit-identical.

    A roll is exactly ``concatenate((a[-s:], a[:-s]))`` along the axis;
    skipping np.roll's generic index arithmetic matters because the
    explicit stepper issues a dozen rolls per step on a small grid.
    """
    head = (_FULL,) * axis + (slice(-s, None),)
    tail = (_FULL,) * axis + (slice(None, -s),)
    return np.concatenate((a[head], a[tail]), axis=axis)


class BuildingClimate(Simulation):
    """Temperature field of an exhibition hall under steerable ventilation.

    Grid indices: x along the hall length (inlet at x=0 wall, outlet at
    x=-1), y across, z vertical.
    """

    STEERABLE = ("vent_speed", "vent_temperature", "heat_load")

    def __init__(
        self,
        shape: tuple[int, int, int] = (24, 16, 8),
        vent_speed: float = 0.3,
        vent_temperature: float = 18.0,
        ambient: float = 26.0,
        heat_load: float = 0.5,
        diffusivity: float = 0.08,
        dt: float = 0.5,
        seed: int = 11,
    ) -> None:
        super().__init__()
        if len(shape) != 3 or min(shape) < 4:
            raise SteeringError("building grid must be 3D with sides >= 4")
        self.shape = tuple(int(s) for s in shape)
        self.vent_speed = float(vent_speed)
        self.vent_temperature = float(vent_temperature)
        self.ambient = float(ambient)
        self.heat_load = float(heat_load)
        self.diffusivity = float(diffusivity)
        self.dt = float(dt)
        #: (vent_speed, field) memo for :meth:`flow_field`
        self._flow_cache = None
        self._check_stability()

        rng = np.random.default_rng(seed)
        self.temperature = ambient + 0.5 * rng.standard_normal(self.shape)
        # Heat sources: a few exhibit "cars" on the floor radiating heat.
        self.sources = np.zeros(self.shape)
        nx, ny, _ = self.shape
        for cx, cy in ((nx // 4, ny // 3), (nx // 2, 2 * ny // 3), (3 * nx // 4, ny // 3)):
            self.sources[cx - 1 : cx + 2, cy - 1 : cy + 2, 0:2] = 1.0

    def _check_stability(self) -> None:
        # Explicit scheme: CFL for advection and r <= 1/6 for 3D diffusion.
        if self.vent_speed * self.dt >= 1.0:
            raise SteeringError(
                f"vent_speed {self.vent_speed} * dt {self.dt} violates CFL"
            )
        if self.diffusivity * self.dt > 1.0 / 6.0:
            raise SteeringError("diffusivity * dt exceeds 3D explicit limit (1/6)")

    # -- flow field -------------------------------------------------------

    def flow_field(self) -> np.ndarray:
        """Prescribed ventilation velocity (3, X, Y, Z): an inlet jet that
        decays across the hall plus a gentle vertical recirculation.

        Depends only on the grid and the steered ``vent_speed``, so the
        field is cached and rebuilt only when the speed changes — the
        stepper would otherwise recompute identical linspace/sin arrays
        every step.
        """
        cached = self._flow_cache
        if cached is not None and cached[0] == self.vent_speed:
            return cached[1]
        nx, ny, nz = self.shape
        x = np.linspace(0.0, 1.0, nx)[:, None, None]
        z = np.linspace(0.0, 1.0, nz)[None, None, :]
        u = np.zeros((3,) + self.shape)
        # Jet strongest near the inlet wall and near the ceiling duct.
        u[0] = self.vent_speed * (1.0 - 0.6 * x) * (0.4 + 0.6 * z)
        u[2] = -0.2 * self.vent_speed * np.sin(np.pi * x) * z
        self._flow_cache = (self.vent_speed, u)
        return u

    def advance(self) -> None:
        T = self.temperature
        u = self.flow_field()
        dt = self.dt

        # First-order upwind advection (flow is predominantly +x, -z).
        dT = np.zeros_like(T)
        for axis in range(3):
            vel = u[axis]
            fwd = _roll1(T, -1, axis)
            back = _roll1(T, 1, axis)
            dT -= dt * np.where(vel > 0, vel * (T - back), vel * (fwd - T))
            # Diffusion neighbours reuse the advection shifts below; the
            # grouping mirrors the original `lap += back + fwd` loop so
            # the floating-point accumulation stays bit-identical.
            if axis == 0:
                lap = -6.0 * T + (back + fwd)
            else:
                lap += back + fwd

        # Diffusion (FTCS 7-point Laplacian), insulated walls handled by
        # the boundary overwrite below.
        dT += dt * self.diffusivity * lap

        # Internal heat load.
        dT += dt * self.heat_load * self.sources

        self.temperature = T + dT
        # Boundary conditions: inlet wall held at vent temperature over the
        # duct area; outlet wall is outflow (zero-gradient); other walls
        # relax slowly toward ambient (imperfect insulation).
        nz = self.shape[2]
        self.temperature[0, :, nz // 2 :] = self.vent_temperature
        self.temperature[-1] = self.temperature[-2]
        alpha = 0.02
        for sl in (
            (slice(None), 0),
            (slice(None), -1),
        ):
            self.temperature[sl] += alpha * (self.ambient - self.temperature[sl])
        self.temperature[:, :, -1] += alpha * (self.ambient - self.temperature[:, :, -1])

    # -- diagnostics -----------------------------------------------------------

    def mean_temperature(self) -> float:
        return float(self.temperature.mean())

    def comfort_fraction(self, lo: float = 20.0, hi: float = 24.0) -> float:
        """Fraction of occupied volume (z < half) within the comfort band."""
        occupied = self.temperature[:, :, : self.shape[2] // 2]
        ok = (occupied >= lo) & (occupied <= hi)
        return float(ok.mean())

    # -- steering surface -----------------------------------------------------

    def steerable_parameters(self) -> dict[str, Any]:
        return {
            "vent_speed": self.vent_speed,
            "vent_temperature": self.vent_temperature,
            "heat_load": self.heat_load,
        }

    def set_parameter(self, name: str, value: Any) -> None:
        if name == "vent_speed":
            value = float(value)
            if value < 0:
                raise SteeringError("vent_speed must be >= 0")
            old = self.vent_speed
            self.vent_speed = value
            try:
                self._check_stability()
            except SteeringError:
                self.vent_speed = old
                raise
        elif name == "vent_temperature":
            self.vent_temperature = float(value)
        elif name == "heat_load":
            value = float(value)
            if value < 0:
                raise SteeringError("heat_load must be >= 0")
            self.heat_load = value
        else:
            raise SteeringError(f"BuildingClimate has no steerable parameter {name!r}")

    def observables(self) -> dict[str, float]:
        out = super().observables()
        out["mean_temperature"] = self.mean_temperature()
        out["comfort_fraction"] = self.comfort_fraction()
        out["vent_temperature"] = self.vent_temperature
        return out

    def sample(self) -> dict[str, Any]:
        return {
            "step": self.step_count,
            "temperature": self.temperature.astype(np.float32),
        }

    def checkpoint(self) -> dict[str, Any]:
        return {
            "shape": self.shape,
            "temperature": self.temperature.copy(),
            "vent_speed": self.vent_speed,
            "vent_temperature": self.vent_temperature,
            "heat_load": self.heat_load,
            "time": self.time,
            "step_count": self.step_count,
        }

    def restore(self, state: dict[str, Any]) -> None:
        if tuple(state["shape"]) != self.shape:
            raise SteeringError("checkpoint grid shape mismatch")
        self.temperature = state["temperature"].copy()
        self.vent_speed = state["vent_speed"]
        self.vent_temperature = state["vent_temperature"]
        self.heat_load = state["heat_load"]
        self.time = state["time"]
        self.step_count = state["step_count"]
