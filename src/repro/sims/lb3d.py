"""D3Q19 two-component Shan-Chen lattice Boltzmann (the RealityGrid code).

Paper section 2.2: "The computation was a Lattice Boltzmann 3D code
simulating a mixture of two fluids.  The parameter used for the steering
was the miscibility of the fluids.  The simulation was on a 3D grid with
periodic boundary conditions.  As the miscibility parameter was altered,
the structures formed by the fluids changed."

The Shan-Chen pseudo-potential coupling ``g`` between the two components
*is* that miscibility knob: below the critical coupling the fluids mix;
above it they spontaneously demix and form the structures the
visualization shows as isosurfaces of the order parameter.

Implementation notes: fully vectorized over the lattice; streaming is
``np.roll`` per velocity (periodic BCs exactly as the paper states);
forcing uses the original Shan-Chen velocity shift.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import SteeringError
from repro.sims.base import Simulation

# D3Q19 velocity set and weights.
_C = np.array(
    [
        [0, 0, 0],
        [1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0], [0, 0, 1], [0, 0, -1],
        [1, 1, 0], [-1, -1, 0], [1, -1, 0], [-1, 1, 0],
        [1, 0, 1], [-1, 0, -1], [1, 0, -1], [-1, 0, 1],
        [0, 1, 1], [0, -1, -1], [0, 1, -1], [0, -1, 1],
    ],
    dtype=np.int64,
)
_W = np.array(
    [1 / 3]
    + [1 / 18] * 6
    + [1 / 36] * 12,
    dtype=np.float64,
)
_CS2 = 1.0 / 3.0

#: _C.T as float64, precomputed once — `_momentum` runs per step and the
#: astype conversion is pure per-call overhead.
_CF = _C.T.astype(np.float64)

_FULL = slice(None)


def _roll_plan(shift: tuple[int, int, int]):
    """Slice plan implementing ``np.roll(a, shift, axis=(0, 1, 2))``.

    ``np.roll`` spends ~10x the copy cost in per-call Python setup
    (normalize_axis_tuple, index arithmetic) — brutal at fleet lattice
    sizes, where a D3Q19 step issues 72 rolls of a few-KB array.  A roll
    by ``s`` along one axis is exactly ``concatenate((a[-s:], a[:-s]))``,
    element-identical, so the streaming/forcing results stay
    bit-for-bit the same.
    """
    plan = []
    for ax, s in enumerate(shift):
        if s:
            head = (_FULL,) * ax + (slice(-s, None),)
            tail = (_FULL,) * ax + (slice(None, -s),)
            plan.append((ax, head, tail))
    return tuple(plan)


#: direction index -> roll plans for streaming (+c_i) and forcing (-c_i)
_STREAM_PLANS = tuple(_roll_plan(tuple(c)) for c in _C.tolist())
_FORCE_PLANS = tuple(_roll_plan(tuple(-x for x in c)) for c in _C.tolist())


def _roll(a: np.ndarray, plan) -> np.ndarray:
    for ax, head, tail in plan:
        a = np.concatenate((a[head], a[tail]), axis=ax)
    return a


def _equilibrium(rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Second-order BGK equilibrium; rho (X,Y,Z), u (3,X,Y,Z) -> (19,X,Y,Z)."""
    cu = np.tensordot(_C, u, axes=(1, 0)) / _CS2  # (19, X, Y, Z)
    usq = np.sum(u * u, axis=0) / (2.0 * _CS2)
    feq = rho[None] * _W[:, None, None, None] * (1.0 + cu + 0.5 * cu**2 - usq[None])
    return feq


class LatticeBoltzmann3D(Simulation):
    """Two-component Shan-Chen LB mixture with steerable miscibility.

    Parameters
    ----------
    shape:
        Lattice dimensions, e.g. ``(32, 32, 32)``.
    g:
        Inter-component coupling (the steered "miscibility").  Empirically
        on this discretization the mixture stays miscible below g ~ 1.5
        and demixes above g ~ 2.0 (rho0 = 1, tau = 1); values above 4.5
        are numerically unstable and rejected.
    tau:
        BGK relaxation time (same for both components).
    seed:
        RNG seed for the initial density perturbation.
    """

    #: steerable parameter names (the demo steered ``g``)
    STEERABLE = ("g", "tau")

    def __init__(
        self,
        shape: tuple[int, int, int] = (16, 16, 16),
        g: float = 0.0,
        tau: float = 1.0,
        rho0: float = 1.0,
        perturbation: float = 0.01,
        seed: int = 12345,
    ) -> None:
        super().__init__()
        if len(shape) != 3 or min(shape) < 4:
            raise SteeringError("lattice must be 3D with every side >= 4")
        if tau <= 0.5:
            raise SteeringError("tau must exceed 0.5 for stability")
        self._validate_g(float(g))
        self.shape = tuple(int(s) for s in shape)
        self.g = float(g)
        self.tau = float(tau)
        self.rho0 = float(rho0)
        rng = np.random.default_rng(seed)
        noise = perturbation * rng.standard_normal((2,) + self.shape)
        # Component densities start near rho0/2 each with a random perturbation.
        rho_r = 0.5 * rho0 * (1.0 + noise[0])
        rho_b = 0.5 * rho0 * (1.0 - noise[0] + 0.2 * noise[1])
        zero_u = np.zeros((3,) + self.shape)
        self.f_r = _equilibrium(rho_r, zero_u)
        self.f_b = _equilibrium(rho_b, zero_u)

    # -- physics ------------------------------------------------------------

    @staticmethod
    def _density(f: np.ndarray) -> np.ndarray:
        return f.sum(axis=0)

    @staticmethod
    def _momentum(f: np.ndarray) -> np.ndarray:
        return np.tensordot(_CF, f, axes=(1, 0))

    def _shan_chen_force(self, rho_other: np.ndarray) -> np.ndarray:
        """Force on one component from the other's density field.

        F(x) = -g * psi(x) * sum_i w_i psi(x + c_i) c_i with psi = rho.
        Returns the *acceleration-like* field (3, X, Y, Z) before the
        psi(x) factor, which the caller applies per component.

        The per-axis term is ``w_i * shifted * c_ia`` with c_ia in
        {-1, 0, 1}; multiplying by +-1.0 is exact in IEEE arithmetic, so
        computing ``w_i * shifted`` once and adding/subtracting it keeps
        the accumulation bit-identical while dropping two-thirds of the
        array multiplies.
        """
        acc = np.zeros((3,) + self.shape)
        for i in range(1, len(_C)):
            shifted = _roll(rho_other, _FORCE_PLANS[i])
            weighted = _W[i] * shifted
            ci = _C[i]
            for a in range(3):
                c = ci[a]
                if c > 0:
                    acc[a] += weighted
                elif c < 0:
                    acc[a] -= weighted
        return -self.g * acc

    def advance(self) -> None:
        rho_r = self._density(self.f_r)
        rho_b = self._density(self.f_b)
        mom = self._momentum(self.f_r) + self._momentum(self.f_b)
        rho_tot = rho_r + rho_b
        u_common = mom / rho_tot[None]

        # Shan-Chen inter-component forcing via equilibrium velocity shift:
        # u_eq_sigma = u' + tau * F_sigma / rho_sigma.  With psi = rho the
        # local-density factor of F cancels against 1/rho, so the
        # acceleration is just -g * sum_i w_i rho_other(x + c_i) c_i.
        acc_r = self._shan_chen_force(rho_b)  # felt by red, sourced by blue
        acc_b = self._shan_chen_force(rho_r)
        u_r = u_common + self.tau * acc_r
        u_b = u_common + self.tau * acc_b

        omega = 1.0 / self.tau
        self.f_r += omega * (_equilibrium(rho_r, u_r) - self.f_r)
        self.f_b += omega * (_equilibrium(rho_b, u_b) - self.f_b)

        # Streaming with periodic boundary conditions.
        f_r, f_b = self.f_r, self.f_b
        for i in range(1, len(_C)):
            plan = _STREAM_PLANS[i]
            f_r[i] = _roll(f_r[i], plan)
            f_b[i] = _roll(f_b[i], plan)

    # -- fields and diagnostics ----------------------------------------------

    def densities(self) -> tuple[np.ndarray, np.ndarray]:
        return self._density(self.f_r), self._density(self.f_b)

    def order_parameter(self) -> np.ndarray:
        """phi = (rho_r - rho_b) / (rho_r + rho_b) in [-1, 1]."""
        rho_r, rho_b = self.densities()
        return (rho_r - rho_b) / (rho_r + rho_b)

    def demix_measure(self) -> float:
        """Std-dev of the order parameter: ~0 mixed, -> O(1) demixed.

        This is the scalar whose response to steering ``g`` the S44 bench
        tracks.
        """
        return float(self.order_parameter().std())

    def total_mass(self) -> float:
        rho_r, rho_b = self.densities()
        return float(rho_r.sum() + rho_b.sum())

    # -- steering surface ----------------------------------------------------

    def steerable_parameters(self) -> dict[str, Any]:
        return {"g": self.g, "tau": self.tau}

    @staticmethod
    def _validate_g(value: float) -> None:
        if not 0.0 <= value <= 4.5:
            raise SteeringError(
                f"coupling g={value} outside the numerically stable range [0, 4.5]"
            )

    def set_parameter(self, name: str, value: Any) -> None:
        if name == "g":
            value = float(value)
            self._validate_g(value)
            self.g = value
        elif name == "tau":
            value = float(value)
            if value <= 0.5:
                raise SteeringError("tau must exceed 0.5 for stability")
            self.tau = value
        else:
            raise SteeringError(f"LB3D has no steerable parameter {name!r}")

    def observables(self) -> dict[str, float]:
        out = super().observables()
        out["demix"] = self.demix_measure()
        out["mass"] = self.total_mass()
        out["g"] = self.g
        return out

    def sample(self) -> dict[str, Any]:
        """Emit the order-parameter field — what the viz isosurfaces."""
        return {
            "step": self.step_count,
            "order_parameter": self.order_parameter().astype(np.float32),
        }

    # -- checkpoint / migration ---------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        return {
            "shape": self.shape,
            "g": self.g,
            "tau": self.tau,
            "rho0": self.rho0,
            "time": self.time,
            "step_count": self.step_count,
            "f_r": self.f_r.copy(),
            "f_b": self.f_b.copy(),
        }

    def restore(self, state: dict[str, Any]) -> None:
        if tuple(state["shape"]) != self.shape:
            raise SteeringError("checkpoint lattice shape mismatch")
        self.g = state["g"]
        self.tau = state["tau"]
        self.rho0 = state["rho0"]
        self.time = state["time"]
        self.step_count = state["step_count"]
        self.f_r = state["f_r"].copy()
        self.f_b = state["f_b"].copy()
