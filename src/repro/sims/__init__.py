"""Steerable simulation codes.

The paper's three demonstrations steer three applications; each gets a
faithful synthetic equivalent:

* :mod:`repro.sims.lb3d` — the RealityGrid Lattice-Boltzmann two-fluid
  mixture with steerable miscibility (section 2.2).
* :mod:`repro.sims.pepc` — the Parallel Electrostatic Plasma
  Coulomb-solver: hierarchical tree code, O(N log N) force summation,
  beam-on-target scenario with steerable beam/laser (sections 3.4).
* :mod:`repro.sims.building` — the HLRS/DaimlerChrysler Car-Show building
  climatization simulation (section 4.7).
* :mod:`repro.sims.crowd` — visitor-behaviour simulation in the same
  building ("steer the visitors ... into certain regions", section 4.7).

All implement the :class:`repro.sims.base.Simulation` protocol so the
steering core can instrument any of them uniformly.
"""

from repro.sims.base import Simulation
from repro.sims.lb3d import LatticeBoltzmann3D
from repro.sims.building import BuildingClimate
from repro.sims.crowd import CrowdSim

__all__ = [
    "Simulation",
    "LatticeBoltzmann3D",
    "BuildingClimate",
    "CrowdSim",
]
