"""The simulation protocol every steerable code implements.

UNICORE's selling point — "it does not require any modifications of the
applications" (section 3.1) — and VISIT's — instrument with a lean API —
both rely on the application exposing a uniform surface: step forward,
report observables, expose named steerable parameters, emit samples for
the visualization, checkpoint/restore (the latter also powers
RealityGrid's mid-session migration, section 2.4).
"""

from __future__ import annotations

import abc
from typing import Any

from repro.errors import SteeringError


class Simulation(abc.ABC):
    """Abstract steerable simulation."""

    #: simulation time advanced per :meth:`step` call
    dt: float = 1.0

    def __init__(self) -> None:
        self.time = 0.0
        self.step_count = 0

    # -- evolution --------------------------------------------------------

    @abc.abstractmethod
    def advance(self) -> None:
        """Advance the physics by one step (subclass hook)."""

    def step(self) -> None:
        """Advance one step and update clocks."""
        self.advance()
        self.step_count += 1
        self.time += self.dt

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    # -- steering surface ---------------------------------------------------

    def steerable_parameters(self) -> dict[str, Any]:
        """Names -> current values of parameters a steerer may change."""
        return {}

    def set_parameter(self, name: str, value: Any) -> None:
        """Apply a steered parameter change; unknown names are errors."""
        raise SteeringError(f"{type(self).__name__} has no steerable parameter {name!r}")

    def observables(self) -> dict[str, float]:
        """Cheap scalar monitored quantities (shown in steering clients)."""
        return {"time": self.time, "step": float(self.step_count)}

    @abc.abstractmethod
    def sample(self) -> dict[str, Any]:
        """The data-space emitted for visualization ("samples", section 2.1)."""

    # -- checkpoint / migration -------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Serializable full state (migration needs an exact restart)."""
        raise SteeringError(f"{type(self).__name__} does not support checkpointing")

    def restore(self, state: dict[str, Any]) -> None:
        raise SteeringError(f"{type(self).__name__} does not support checkpointing")
