"""Diagnostics for the plasma simulation: energies, momentum, tree stats."""

from __future__ import annotations

import numpy as np

from repro.sims.pepc.tree import Octree


def kinetic_energy(velocities: np.ndarray, masses: np.ndarray) -> float:
    v2 = np.einsum("ij,ij->i", velocities, velocities)
    return float(0.5 * np.sum(np.asarray(masses) * v2))


def total_momentum(velocities: np.ndarray, masses: np.ndarray) -> np.ndarray:
    return np.asarray(masses)[:, None].T @ np.asarray(velocities)


def temperature_proxy(velocities: np.ndarray, masses: np.ndarray) -> float:
    """Mean kinetic energy per particle — the 'cold, ordered state' metric
    for the equilibrium-assist steering feature (section 3.4)."""
    n = max(1, len(velocities))
    return kinetic_energy(velocities, masses) / n


def tree_stats(tree: Octree) -> dict:
    """Structural summary shipped alongside domain boxes for debugging."""
    counts = [node.count for node in tree.walk() if node.is_leaf]
    return {
        "nodes": tree.node_count,
        "leaves": tree.leaf_count,
        "max_depth": tree.max_depth,
        "mean_leaf_occupancy": float(np.mean(counts)) if counts else 0.0,
    }
