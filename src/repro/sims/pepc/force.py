"""Coulomb field evaluation: O(N^2) direct summation and O(N log N) tree.

Plummer-softened electrostatics in Gaussian-like units (k = 1):

    E(x)   = sum_j q_j (x - x_j) / (|x - x_j|^2 + eps^2)^{3/2}
    phi(x) = sum_j q_j / sqrt(|x - x_j|^2 + eps^2)

``direct_field`` is the paper's implicit baseline ("length- and
time-scales normally possible only with particle-in-cell" — i.e. what the
tree algorithm's O(N log N) buys relative to O(N^2) direct summation).
``tree_field`` walks the Barnes-Hut octree with the s/d < theta
multipole-acceptance criterion, vectorized *node-major*: each node is
tested against every candidate target at once, so the Python-level loop
is over tree nodes, not particles.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sims.pepc.tree import Octree


def direct_field(
    positions: np.ndarray,
    charges: np.ndarray,
    eps: float = 0.05,
    targets: np.ndarray | None = None,
    exclude_self: bool = True,
    chunk: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact pairwise field: returns ``(E (N,3), phi (N,))`` at targets.

    Chunked over targets to bound memory at ``chunk * N`` pair entries.
    ``exclude_self`` skips the i == j pair when targets are the sources.
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    if eps <= 0:
        raise SimulationError("softening eps must be positive")
    self_targets = targets is None
    tgt = positions if self_targets else np.asarray(targets, dtype=np.float64)
    n_t = len(tgt)
    E = np.zeros((n_t, 3))
    phi = np.zeros(n_t)
    eps2 = eps * eps
    for start in range(0, n_t, chunk):
        stop = min(start + chunk, n_t)
        d = tgt[start:stop, None, :] - positions[None, :, :]  # (c, N, 3)
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        inv_r = 1.0 / np.sqrt(r2)
        inv_r3 = inv_r / r2
        w = charges[None, :] * inv_r3  # (c, N)
        if self_targets and exclude_self:
            idx = np.arange(start, stop)
            w[np.arange(stop - start), idx] = 0.0
        E[start:stop] = np.einsum("ij,ijk->ik", w, d)
        pw = charges[None, :] * inv_r
        if self_targets and exclude_self:
            pw[np.arange(stop - start), np.arange(start, stop)] = 0.0
        phi[start:stop] = pw.sum(axis=1)
    return E, phi


def tree_field(
    tree: Octree,
    theta: float = 0.5,
    eps: float = 0.05,
) -> tuple[np.ndarray, np.ndarray, dict]:
    """Barnes-Hut field at every source particle.

    Returns ``(E (N,3), phi (N,), stats)`` where stats counts the
    monopole and direct interactions actually evaluated — the quantity
    that scales as N log N (FIG3 bench).
    """
    if not 0 < theta < 2.0:
        raise SimulationError("theta must be in (0, 2)")
    if eps <= 0:
        raise SimulationError("softening eps must be positive")
    positions = tree.positions
    charges = tree.charges
    n = len(positions)
    E = np.zeros((n, 3))
    phi = np.zeros(n)
    eps2 = eps * eps
    stats = {"monopole_interactions": 0, "direct_interactions": 0, "nodes_visited": 0}

    stack: list[tuple] = [(tree.root, np.arange(n, dtype=np.intp))]
    while stack:
        node, tidx = stack.pop()
        stats["nodes_visited"] += 1
        if node.is_leaf:
            src = node.indices
            d = positions[tidx, None, :] - positions[None, src, :]
            r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
            inv_r = 1.0 / np.sqrt(r2)
            inv_r3 = inv_r / r2
            same = tidx[:, None] == src[None, :]
            w = charges[None, src] * inv_r3
            w[same] = 0.0
            E[tidx] += np.einsum("ij,ijk->ik", w, d)
            pw = charges[None, src] * inv_r
            pw[same] = 0.0
            phi[tidx] += pw.sum(axis=1)
            stats["direct_interactions"] += int(same.size - same.sum())
            continue
        d = positions[tidx] - node.com[None, :]
        dist2 = np.einsum("ij,ij->i", d, d)
        dist = np.sqrt(dist2)
        with np.errstate(divide="ignore"):
            accept = (node.size < theta * dist)
        far = tidx[accept]
        if far.size:
            df = d[accept]
            r2 = dist2[accept] + eps2
            inv_r = 1.0 / np.sqrt(r2)
            inv_r3 = inv_r / r2
            E[far] += node.charge * inv_r3[:, None] * df
            phi[far] += node.charge * inv_r
            stats["monopole_interactions"] += int(far.size)
        near = tidx[~accept]
        if near.size:
            for child in node.children:
                stack.append((child, near))
    return E, phi, stats


def interaction_energy(phi: np.ndarray, charges: np.ndarray) -> float:
    """Total electrostatic energy U = 1/2 sum_i q_i phi_i."""
    return float(0.5 * np.sum(np.asarray(charges) * np.asarray(phi)))
