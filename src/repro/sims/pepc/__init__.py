"""PEPC: Parallel Electrostatic Plasma Coulomb-solver (reproduction).

Paper section 3.4: "The code uses a hierarchical tree algorithm to perform
potential and force summation for charged particles in a time O(N log N),
allowing mesh-free particle simulation...  for example, a particle beam
striking a spherical plasma target."  Steerable: "the particle beam or
laser parameters (charge/intensity, direction) can be altered by the user
interactively while the application is running", and a damping assist to
drive "an initially random plasma system towards a cold, ordered state".

Modules: octree construction, tree/direct force evaluation, leapfrog
integrator with the beam-on-sphere scenario, SFC domain decomposition,
diagnostics.
"""

from repro.sims.pepc.tree import Octree, build_octree
from repro.sims.pepc.force import direct_field, tree_field, interaction_energy
from repro.sims.pepc.integrator import PlasmaSim, beam_on_sphere_setup
from repro.sims.pepc.domain import assign_domains
from repro.sims.pepc.diagnostics import kinetic_energy, total_momentum, tree_stats
from repro.sims.pepc.meshdiag import DiagnosticMesh

__all__ = [
    "Octree",
    "build_octree",
    "direct_field",
    "tree_field",
    "interaction_energy",
    "PlasmaSim",
    "beam_on_sphere_setup",
    "assign_domains",
    "kinetic_energy",
    "total_momentum",
    "tree_stats",
    "DiagnosticMesh",
]
