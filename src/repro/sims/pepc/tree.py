"""Octree construction for the Barnes-Hut force solver.

Recursive spatial bisection down to ``leaf_size`` particles per leaf.
Monopole moments per node: total charge and the |charge|-weighted centre
(using |q| keeps the expansion centre inside the charge distribution even
for near-neutral plasma nodes, where the plain charge-weighted centre
diverges).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError


class OctreeNode:
    """One node: cube ``[center - half, center + half]`` per axis."""

    __slots__ = (
        "center",
        "half",
        "children",
        "indices",
        "charge",
        "abs_charge",
        "com",
        "count",
        "depth",
    )

    def __init__(self, center: np.ndarray, half: float, depth: int) -> None:
        self.center = center
        self.half = half
        self.depth = depth
        self.children: Optional[list["OctreeNode"]] = None
        self.indices: Optional[np.ndarray] = None  # leaf payload
        self.charge = 0.0
        self.abs_charge = 0.0
        self.com = center.copy()
        self.count = 0

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def size(self) -> float:
        """Edge length of the node cube (the 's' of the s/d criterion)."""
        return 2.0 * self.half


class Octree:
    """The built tree plus global metadata."""

    def __init__(self, root: OctreeNode, positions: np.ndarray, charges: np.ndarray) -> None:
        self.root = root
        self.positions = positions
        self.charges = charges
        self.node_count = 0
        self.leaf_count = 0
        self.max_depth = 0
        for node in self.walk():
            self.node_count += 1
            self.max_depth = max(self.max_depth, node.depth)
            if node.is_leaf:
                self.leaf_count += 1

    def walk(self):
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if node.children is not None:
                stack.extend(node.children)


_MAX_DEPTH = 40


def build_octree(
    positions: np.ndarray,
    charges: np.ndarray,
    leaf_size: int = 16,
) -> Octree:
    """Build a Barnes-Hut octree over ``positions`` with ``charges``."""
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise SimulationError("positions must be (N, 3)")
    if charges.shape != (len(positions),):
        raise SimulationError("charges must be (N,)")
    if len(positions) == 0:
        raise SimulationError("cannot build a tree over zero particles")
    if leaf_size < 1:
        raise SimulationError("leaf_size must be >= 1")

    lo = positions.min(axis=0)
    hi = positions.max(axis=0)
    center = 0.5 * (lo + hi)
    half = float(0.5 * (hi - lo).max()) * 1.0001 + 1e-12

    abs_q = np.abs(charges)

    def make(indices: np.ndarray, center: np.ndarray, half: float, depth: int) -> OctreeNode:
        node = OctreeNode(center, half, depth)
        node.count = len(indices)
        q = charges[indices]
        aq = abs_q[indices]
        node.charge = float(q.sum())
        node.abs_charge = float(aq.sum())
        if node.abs_charge > 0:
            node.com = (positions[indices] * aq[:, None]).sum(axis=0) / node.abs_charge
        else:
            node.com = positions[indices].mean(axis=0)
        if len(indices) <= leaf_size or depth >= _MAX_DEPTH:
            node.indices = indices
            return node
        # Partition into octants.
        rel = positions[indices] >= center[None, :]
        octant = rel[:, 0].astype(np.intp) | (rel[:, 1].astype(np.intp) << 1) | (
            rel[:, 2].astype(np.intp) << 2
        )
        children = []
        quarter = half / 2.0
        for o in range(8):
            sub = indices[octant == o]
            if len(sub) == 0:
                continue
            offset = np.array(
                [
                    quarter if o & 1 else -quarter,
                    quarter if o & 2 else -quarter,
                    quarter if o & 4 else -quarter,
                ]
            )
            children.append(make(sub, center + offset, quarter, depth + 1))
        node.children = children
        return node

    root = make(np.arange(len(positions), dtype=np.intp), center, half, 0)
    return Octree(root, positions, charges)
