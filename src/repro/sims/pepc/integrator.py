"""Leapfrog integrator and the beam-on-sphere scenario.

The demonstration scenario (section 3.4): "a particle beam striking a
spherical plasma target", with interactive steering of beam parameters
(charge/intensity, direction), a laser field, and a damping 'assist' that
drives the plasma "towards a cold, ordered state suitable for use as
quiescent initial conditions".
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import SteeringError
from repro.sims.base import Simulation
from repro.sims.pepc.domain import assign_domains
from repro.sims.pepc.force import direct_field, tree_field
from repro.sims.pepc.tree import build_octree


def beam_on_sphere_setup(
    n_plasma: int = 512,
    n_beam: int = 64,
    sphere_radius: float = 1.0,
    beam_offset: float = 3.0,
    beam_speed: float = 1.5,
    seed: int = 7,
) -> dict[str, np.ndarray]:
    """Initial conditions: neutral plasma sphere + incoming charged beam.

    The plasma is an equal mix of +1/-1 charges uniform in a sphere at the
    origin; the beam is a thin cylinder of charge -1 particles offset
    along -x, moving in +x toward the target.
    """
    rng = np.random.default_rng(seed)
    # Uniform-in-sphere sampling via normalized Gaussians * r^(1/3).
    g = rng.standard_normal((n_plasma, 3))
    g /= np.linalg.norm(g, axis=1, keepdims=True)
    r = sphere_radius * rng.random(n_plasma) ** (1.0 / 3.0)
    plasma_pos = g * r[:, None]
    plasma_q = np.ones(n_plasma)
    plasma_q[: n_plasma // 2] = -1.0
    plasma_v = 0.05 * rng.standard_normal((n_plasma, 3))

    beam_pos = np.empty((n_beam, 3))
    beam_pos[:, 0] = -beam_offset - 0.5 * rng.random(n_beam)
    beam_pos[:, 1:] = 0.1 * rng.standard_normal((n_beam, 2))
    beam_q = -np.ones(n_beam)
    beam_v = np.zeros((n_beam, 3))
    beam_v[:, 0] = beam_speed

    return {
        "positions": np.concatenate([plasma_pos, beam_pos]),
        "velocities": np.concatenate([plasma_v, beam_v]),
        "charges": np.concatenate([plasma_q, beam_q]),
        "masses": np.ones(n_plasma + n_beam),
        "is_beam": np.concatenate(
            [np.zeros(n_plasma, dtype=bool), np.ones(n_beam, dtype=bool)]
        ),
    }


class PlasmaSim(Simulation):
    """PEPC-style plasma simulation with steerable beam/laser/damping.

    Parameters
    ----------
    setup:
        Dict from :func:`beam_on_sphere_setup` (or compatible).
    theta:
        Barnes-Hut acceptance parameter; ``0`` forces direct summation
        (the O(N^2) baseline).
    use_tree:
        If False, use direct summation regardless of theta.
    nranks:
        Virtual processor count for the SFC domain decomposition shipped
        with every sample.
    """

    STEERABLE = (
        "beam_charge_scale",
        "beam_direction",
        "laser_intensity",
        "laser_direction",
        "damping",
    )

    def __init__(
        self,
        setup: dict[str, np.ndarray] | None = None,
        dt: float = 0.01,
        theta: float = 0.5,
        eps: float = 0.05,
        use_tree: bool = True,
        leaf_size: int = 16,
        nranks: int = 4,
    ) -> None:
        super().__init__()
        setup = setup or beam_on_sphere_setup()
        self.positions = np.array(setup["positions"], dtype=np.float64)
        self.velocities = np.array(setup["velocities"], dtype=np.float64)
        self.base_charges = np.array(setup["charges"], dtype=np.float64)
        self.masses = np.array(setup["masses"], dtype=np.float64)
        self.is_beam = np.array(setup["is_beam"], dtype=bool)
        self.labels = np.arange(len(self.positions), dtype=np.int64)
        n = len(self.positions)
        for name, arr in (
            ("velocities", self.velocities),
            ("charges", self.base_charges),
            ("masses", self.masses),
            ("is_beam", self.is_beam),
        ):
            if len(arr) != n:
                raise SteeringError(f"setup field {name} length mismatch")
        self.dt = float(dt)
        self.theta = float(theta)
        self.eps = float(eps)
        self.use_tree = bool(use_tree)
        self.leaf_size = int(leaf_size)
        self.nranks = int(nranks)

        # Steerable state (section 3.4).
        self.beam_charge_scale = 1.0
        self.beam_direction = np.array([1.0, 0.0, 0.0])
        self.laser_intensity = 0.0
        self.laser_direction = np.array([1.0, 0.0, 0.0])
        self.laser_omega = 2.0
        self.damping = 0.0

        self.last_force_stats: dict = {}
        self._half_kicked = False
        self._accel = self._compute_accel()

    @property
    def charges(self) -> np.ndarray:
        """Effective charges: beam charge scaling applied live."""
        q = self.base_charges.copy()
        q[self.is_beam] *= self.beam_charge_scale
        return q

    # -- forces ------------------------------------------------------------

    def _compute_accel(self) -> np.ndarray:
        q = self.charges
        if self.use_tree and self.theta > 0:
            tree = build_octree(self.positions, q, leaf_size=self.leaf_size)
            E, _phi, stats = tree_field(tree, theta=self.theta, eps=self.eps)
            self.last_force_stats = stats
        else:
            E, _phi = direct_field(self.positions, q, eps=self.eps)
            self.last_force_stats = {"direct_interactions": len(q) * (len(q) - 1)}
        accel = (q[:, None] * E) / self.masses[:, None]
        if self.laser_intensity != 0.0:
            # Plane-polarized oscillating field, uniform across the plasma.
            e_laser = (
                self.laser_intensity
                * np.cos(self.laser_omega * self.time)
                * self.laser_direction
            )
            accel += (q[:, None] * e_laser[None, :]) / self.masses[:, None]
        return accel

    def advance(self) -> None:
        """Kick-drift-kick leapfrog with optional velocity damping."""
        dt = self.dt
        self.velocities += 0.5 * dt * self._accel
        self.positions += dt * self.velocities
        self._accel = self._compute_accel()
        self.velocities += 0.5 * dt * self._accel
        if self.damping > 0.0:
            # The 'assist toward a cold ordered state' knob.
            self.velocities *= max(0.0, 1.0 - self.damping * dt)

    # -- steering surface ------------------------------------------------------

    def steerable_parameters(self) -> dict[str, Any]:
        return {
            "beam_charge_scale": self.beam_charge_scale,
            "beam_direction": self.beam_direction.copy(),
            "laser_intensity": self.laser_intensity,
            "laser_direction": self.laser_direction.copy(),
            "damping": self.damping,
        }

    def set_parameter(self, name: str, value: Any) -> None:
        if name == "beam_charge_scale":
            self.beam_charge_scale = float(value)
        elif name == "beam_direction":
            v = np.asarray(value, dtype=np.float64)
            norm = np.linalg.norm(v)
            if v.shape != (3,) or norm == 0:
                raise SteeringError("beam_direction must be a non-zero 3-vector")
            direction = v / norm
            # Redirect the beam: rotate beam velocities onto the new axis,
            # preserving speed (the interactive re-aiming of section 3.4).
            speeds = np.linalg.norm(self.velocities[self.is_beam], axis=1)
            self.velocities[self.is_beam] = speeds[:, None] * direction[None, :]
            self.beam_direction = direction
        elif name == "laser_intensity":
            self.laser_intensity = float(value)
        elif name == "laser_direction":
            v = np.asarray(value, dtype=np.float64)
            norm = np.linalg.norm(v)
            if v.shape != (3,) or norm == 0:
                raise SteeringError("laser_direction must be a non-zero 3-vector")
            self.laser_direction = v / norm
        elif name == "damping":
            value = float(value)
            if value < 0:
                raise SteeringError("damping must be >= 0")
            self.damping = value
        else:
            raise SteeringError(f"PlasmaSim has no steerable parameter {name!r}")

    def observables(self) -> dict[str, float]:
        from repro.sims.pepc.diagnostics import kinetic_energy, temperature_proxy

        out = super().observables()
        out["kinetic_energy"] = kinetic_energy(self.velocities, self.masses)
        out["temperature"] = temperature_proxy(self.velocities, self.masses)
        out["beam_charge_scale"] = self.beam_charge_scale
        out["laser_intensity"] = self.laser_intensity
        return out

    def sample(self) -> dict[str, Any]:
        """The full PEPC data-space of section 3.4.

        "regularly shipping both particle data-space comprising
        coordinates, velocities, charge, processor number and
        tracking-label plus information on the tree structure ...
        representing each processor domain."
        """
        proc, boxes = assign_domains(self.positions, self.nranks)
        return {
            "step": self.step_count,
            "coordinates": self.positions.astype(np.float32),
            "velocities": self.velocities.astype(np.float32),
            "charge": self.charges.astype(np.float32),
            "processor": proc.astype(np.int32),
            "label": self.labels.astype(np.int32),
            "domain_boxes": boxes.astype(np.float32),
        }

    # -- checkpoint -----------------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        return {
            "positions": self.positions.copy(),
            "velocities": self.velocities.copy(),
            "base_charges": self.base_charges.copy(),
            "masses": self.masses.copy(),
            "is_beam": self.is_beam.copy(),
            "time": self.time,
            "step_count": self.step_count,
            "beam_charge_scale": self.beam_charge_scale,
            "beam_direction": self.beam_direction.copy(),
            "laser_intensity": self.laser_intensity,
            "laser_direction": self.laser_direction.copy(),
            "damping": self.damping,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.positions = state["positions"].copy()
        self.velocities = state["velocities"].copy()
        self.base_charges = state["base_charges"].copy()
        self.masses = state["masses"].copy()
        self.is_beam = state["is_beam"].copy()
        self.time = state["time"]
        self.step_count = state["step_count"]
        self.beam_charge_scale = state["beam_charge_scale"]
        self.beam_direction = state["beam_direction"].copy()
        self.laser_intensity = state["laser_intensity"]
        self.laser_direction = state["laser_direction"].copy()
        self.damping = state["damping"]
        self._accel = self._compute_accel()
