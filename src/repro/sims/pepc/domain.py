"""Space-filling-curve domain decomposition for PEPC.

Section 3.4 ships "information on the tree structure, at present
consisting of a set of node coordinates representing each processor
domain" so the user can see "tree domains as transparent or solid boxes".
This module computes exactly that: a Morton-curve partition of the
particles over P virtual processors, plus each processor's bounding box.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.parallel.decomp import morton_partition


def assign_domains(
    positions: np.ndarray, nranks: int
) -> tuple[np.ndarray, np.ndarray]:
    """Partition particles over ``nranks`` processors along the SFC.

    Returns ``(proc (N,), boxes (nranks, 2, 3))`` where ``proc[i]`` is the
    owning processor of particle ``i`` and ``boxes[r]`` the (lo, hi)
    bounding box of processor ``r``'s particles (degenerate boxes for
    empty processors collapse to the domain centre).
    """
    positions = np.asarray(positions, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise SimulationError("positions must be (N, 3)")
    if nranks < 1:
        raise SimulationError("nranks must be >= 1")
    lo = positions.min(axis=0)
    hi = positions.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    owner, lists = morton_partition(positions, nranks, lo, lo + span)
    boxes = np.zeros((nranks, 2, 3))
    centre = 0.5 * (lo + hi)
    for r, idx in enumerate(lists):
        if len(idx) == 0:
            boxes[r, 0] = centre
            boxes[r, 1] = centre
        else:
            boxes[r, 0] = positions[idx].min(axis=0)
            boxes[r, 1] = positions[idx].max(axis=0)
    return owner, boxes
