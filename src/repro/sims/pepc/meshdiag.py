"""Mesh-mapped diagnostics: the paper's stated future extension.

Section 3.4: "A future extension will also provide selected diagnostic
quantities mapped onto a user-defined mesh, such as charge density,
current, electric fields and laser intensity."

Implemented here: cloud-in-cell (CIC) deposition of charge density and
current density onto a user-defined uniform mesh, the electric-field
magnitude sampled on the same mesh, and the analytic laser-intensity
profile.  All vectorized; outputs are plain ndarrays ready to ship as
VISIT samples or feed the COVISE pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sims.pepc.force import direct_field


class DiagnosticMesh:
    """A user-defined uniform mesh over ``[lo, hi]`` with ``shape`` cells."""

    def __init__(self, lo, hi, shape=(16, 16, 16)) -> None:
        self.lo = np.asarray(lo, dtype=np.float64)
        self.hi = np.asarray(hi, dtype=np.float64)
        if self.lo.shape != (3,) or self.hi.shape != (3,):
            raise SimulationError("mesh bounds must be 3-vectors")
        if np.any(self.hi <= self.lo):
            raise SimulationError("mesh needs hi > lo on every axis")
        self.shape = tuple(int(s) for s in shape)
        if len(self.shape) != 3 or min(self.shape) < 2:
            raise SimulationError("mesh shape must be 3D with sides >= 2")
        self.spacing = (self.hi - self.lo) / np.array(self.shape)
        self.cell_volume = float(np.prod(self.spacing))

    def _cic_weights(self, positions: np.ndarray):
        """CIC: fractional cell coords + the 8 corner indices/weights."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.ndim != 2 or positions.shape[1] != 3:
            raise SimulationError("positions must be (N, 3)")
        # Deposit on the node grid (shape + 1 nodes per axis would be the
        # staggered choice; we use cell-centred with clamping).
        frac = (positions - self.lo) / self.spacing - 0.5
        maxi = np.array(self.shape) - 1
        frac = np.clip(frac, 0.0, maxi - 1e-9)
        i0 = np.minimum(frac.astype(np.intp), maxi - 1)
        d = frac - i0
        return i0, d

    def deposit(self, positions: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """CIC-deposit per-particle ``weights`` onto the mesh (density:
        weight per cell volume)."""
        weights = np.asarray(weights, dtype=np.float64)
        i0, d = self._cic_weights(positions)
        field = np.zeros(self.shape)
        for dx in (0, 1):
            wx = d[:, 0] if dx else 1.0 - d[:, 0]
            for dy in (0, 1):
                wy = d[:, 1] if dy else 1.0 - d[:, 1]
                for dz in (0, 1):
                    wz = d[:, 2] if dz else 1.0 - d[:, 2]
                    np.add.at(
                        field,
                        (i0[:, 0] + dx, i0[:, 1] + dy, i0[:, 2] + dz),
                        weights * wx * wy * wz,
                    )
        return field / self.cell_volume

    # -- the four diagnostics of section 3.4 --------------------------------------

    def charge_density(self, sim) -> np.ndarray:
        """rho(x): CIC deposition of particle charges."""
        return self.deposit(sim.positions, sim.charges)

    def current_density(self, sim) -> np.ndarray:
        """J(x): (3, *shape) — CIC deposition of q*v per component."""
        q = sim.charges
        out = np.empty((3,) + self.shape)
        for a in range(3):
            out[a] = self.deposit(sim.positions, q * sim.velocities[:, a])
        return out

    def electric_field_magnitude(self, sim, subsample: int = 2) -> np.ndarray:
        """|E|(x) sampled at mesh centres (direct sum at reduced mesh
        resolution — an expensive diagnostic, as in the original)."""
        shape = tuple(max(2, s // subsample) for s in self.shape)
        axes = [
            np.linspace(self.lo[a] + 0.5 * self.spacing[a],
                        self.hi[a] - 0.5 * self.spacing[a], shape[a])
            for a in range(3)
        ]
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        targets = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
        E, _ = direct_field(sim.positions, sim.charges, eps=sim.eps,
                            targets=targets)
        return np.linalg.norm(E, axis=1).reshape(shape)

    def laser_intensity(self, sim) -> np.ndarray:
        """I(x): the analytic laser profile on the mesh.

        The driver is a plane wave along ``laser_direction`` with a
        Gaussian transverse envelope around the beam axis; intensity
        scales with the square of the field amplitude.
        """
        axes = [
            np.linspace(self.lo[a] + 0.5 * self.spacing[a],
                        self.hi[a] - 0.5 * self.spacing[a], self.shape[a])
            for a in range(3)
        ]
        gx, gy, gz = np.meshgrid(*axes, indexing="ij")
        pts = np.stack([gx, gy, gz], axis=-1)
        k = sim.laser_direction
        along = pts @ k
        transverse = pts - along[..., None] * k
        r2 = np.einsum("...i,...i->...", transverse, transverse)
        waist2 = 1.0
        amplitude = sim.laser_intensity * np.exp(-r2 / waist2)
        return amplitude**2

    def all_diagnostics(self, sim) -> dict:
        """The full future-extension sample, ready for a VISIT DataSend."""
        return {
            "charge_density": self.charge_density(sim).astype(np.float32),
            "current_density": self.current_density(sim).astype(np.float32),
            "e_field_magnitude": self.electric_field_magnitude(sim).astype(
                np.float32
            ),
            "laser_intensity": self.laser_intensity(sim).astype(np.float32),
        }
