"""Visitor-behaviour simulation in the exhibition building (section 4.7).

"Furthermore the behaviour of visitors of such buildings will be
simulated and analyzed ... to steer the visitors and potential customers
into certain regions of the building" (the Sandia collaboration).

Model: point agents on a 2D floor plan with rectangular exhibit regions.
Each agent targets an exhibit chosen with probability proportional to a
steerable *attractiveness* weight, walks toward it with speed noise and
pairwise separation, dwells, then re-chooses.  Steering the
attractiveness vector visibly shifts regional occupancy — the measurable
form of the paper's claim.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import SteeringError
from repro.sims.base import Simulation


class CrowdSim(Simulation):
    """Agents visiting exhibits on a rectangular floor.

    Parameters
    ----------
    n_agents:
        Number of visitors.
    floor:
        (width, height) of the floor plan in metres.
    exhibits:
        ``(K, 2)`` exhibit positions; defaults to three exhibits.
    """

    STEERABLE = ("attractiveness",)

    def __init__(
        self,
        n_agents: int = 200,
        floor: tuple[float, float] = (40.0, 25.0),
        exhibits: np.ndarray | None = None,
        speed: float = 1.2,
        dwell_steps: int = 20,
        dt: float = 0.5,
        seed: int = 23,
    ) -> None:
        super().__init__()
        if n_agents < 1:
            raise SteeringError("need at least one agent")
        self.floor = (float(floor[0]), float(floor[1]))
        if exhibits is None:
            w, h = self.floor
            exhibits = np.array(
                [[w * 0.2, h * 0.5], [w * 0.5, h * 0.75], [w * 0.8, h * 0.3]]
            )
        self.exhibits = np.asarray(exhibits, dtype=np.float64)
        if self.exhibits.ndim != 2 or self.exhibits.shape[1] != 2:
            raise SteeringError("exhibits must be (K, 2)")
        k = len(self.exhibits)
        self.attractiveness = np.ones(k)
        self.speed = float(speed)
        self.dwell_steps = int(dwell_steps)
        self.dt = float(dt)
        self.rng = np.random.default_rng(seed)
        w, h = self.floor
        self.positions = self.rng.random((n_agents, 2)) * np.array([w, h])
        self.goal = self._choose_goals(n_agents)
        self.dwell = np.zeros(n_agents, dtype=np.int64)

    def _choose_goals(self, n: int) -> np.ndarray:
        weights = np.maximum(self.attractiveness, 1e-12)
        p = weights / weights.sum()
        return self.rng.choice(len(self.exhibits), size=n, p=p)

    def advance(self) -> None:
        targets = self.exhibits[self.goal]
        delta = targets - self.positions
        dist = np.linalg.norm(delta, axis=1)
        arrived = dist < 1.0

        # Arrived agents dwell; when dwell expires they re-choose a goal.
        self.dwell[arrived] += 1
        expired = self.dwell >= self.dwell_steps
        if np.any(expired):
            self.goal[expired] = self._choose_goals(int(expired.sum()))
            self.dwell[expired] = 0

        moving = ~arrived
        if np.any(moving):
            step_dir = delta[moving] / dist[moving][:, None]
            noise = 0.3 * self.rng.standard_normal((int(moving.sum()), 2))
            self.positions[moving] += (
                self.dt * self.speed * (step_dir + noise)
            )
        # Soft separation: agents repel within 0.5 m (grid-bucketed would
        # scale better; N is a few hundred so all-pairs is fine).
        d = self.positions[:, None, :] - self.positions[None, :, :]
        r2 = np.einsum("ijk,ijk->ij", d, d)
        np.fill_diagonal(r2, np.inf)
        close = r2 < 0.25
        if np.any(close):
            push = np.where(close[..., None], d / np.maximum(r2, 1e-6)[..., None], 0.0)
            self.positions += 0.01 * push.sum(axis=1)
        # Stay indoors.
        w, h = self.floor
        self.positions[:, 0] = np.clip(self.positions[:, 0], 0.0, w)
        self.positions[:, 1] = np.clip(self.positions[:, 1], 0.0, h)

    # -- diagnostics -------------------------------------------------------

    def occupancy(self, radius: float = 4.0) -> np.ndarray:
        """Fraction of agents within ``radius`` of each exhibit."""
        d = np.linalg.norm(
            self.positions[:, None, :] - self.exhibits[None, :, :], axis=2
        )
        return (d < radius).mean(axis=0)

    # -- steering surface ------------------------------------------------------

    def steerable_parameters(self) -> dict[str, Any]:
        return {"attractiveness": self.attractiveness.copy()}

    def set_parameter(self, name: str, value: Any) -> None:
        if name != "attractiveness":
            raise SteeringError(f"CrowdSim has no steerable parameter {name!r}")
        v = np.asarray(value, dtype=np.float64)
        if v.shape != self.attractiveness.shape or np.any(v < 0) or v.sum() == 0:
            raise SteeringError(
                f"attractiveness must be {self.attractiveness.shape} non-negative"
            )
        self.attractiveness = v

    def observables(self) -> dict[str, float]:
        out = super().observables()
        for i, frac in enumerate(self.occupancy()):
            out[f"occupancy_{i}"] = float(frac)
        return out

    def sample(self) -> dict[str, Any]:
        return {
            "step": self.step_count,
            "positions": self.positions.astype(np.float32),
            "goal": self.goal.astype(np.int32),
            "exhibits": self.exhibits.astype(np.float32),
        }

    def checkpoint(self) -> dict[str, Any]:
        return {
            "positions": self.positions.copy(),
            "goal": self.goal.copy(),
            "dwell": self.dwell.copy(),
            "attractiveness": self.attractiveness.copy(),
            "time": self.time,
            "step_count": self.step_count,
            "rng_state": self.rng.bit_generator.state,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.positions = state["positions"].copy()
        self.goal = state["goal"].copy()
        self.dwell = state["dwell"].copy()
        self.attractiveness = state["attractiveness"].copy()
        self.time = state["time"]
        self.step_count = state["step_count"]
        self.rng.bit_generator.state = state["rng_state"]
