"""MatrixReport: the campaign-wide aggregate of per-cell fleet reports.

Cells are merged through the *mergeable* statistics machinery rather
than by averaging summary numbers: every cell record carries the exact
Welford state and reservoir sample of its latency series
(:meth:`repro.fleet.telemetry.FleetTelemetry.export_mergeable`), so the
campaign-wide moments come from :meth:`RunningStats.merge` — exactly the
statistics of the concatenated streams — and the campaign-wide
percentiles from a :class:`P2Quantile` fed the pooled reservoir samples
in deterministic (sorted-cell) order.

Everything in :meth:`to_dict` / :meth:`render` is a pure function of the
cell records' deterministic portion: two campaigns run at the same seed
— serial or across any number of worker processes, fresh or resumed —
render byte-identical reports.  Wall-clock vitals stay in the per-cell
``perf`` envelopes and are never read here.
"""

from __future__ import annotations

import math

from repro.campaign.spec import AXES, CampaignSpec
from repro.errors import CampaignError
from repro.util.stats import P2Quantile, RunningStats


def _ms(x: float) -> str:
    return "-" if math.isnan(x) else f"{x * 1e3:.1f}"


def _s(x: float) -> str:
    return "-" if math.isnan(x) else f"{x:.2f}"


def _drift(metric: str, a: float, b: float) -> float:
    """Normalised drift between two marginal metric values.

    ``goodput`` is already a fraction, so its drift is the absolute
    difference; everything else (latencies, violation counts) compares
    relative to the *other* run's value.  NaN on both sides is no drift
    (no samples on either run); NaN on one side is infinite drift — a
    latency series appearing or vanishing is always worth flagging.
    """
    a_nan = isinstance(a, float) and math.isnan(a)
    b_nan = isinstance(b, float) and math.isnan(b)
    if a_nan and b_nan:
        return 0.0
    if a_nan or b_nan:
        return math.inf
    if metric == "goodput":
        return abs(a - b)
    if a == b:
        return 0.0
    return abs(a - b) / max(abs(b), 1.0)


def _p2(samples: list, q: float) -> float:
    """Percentile of pooled reservoir samples via the streaming P²
    estimator (q in [0, 100]); NaN when no samples."""
    if not samples:
        return math.nan
    est = P2Quantile(q / 100.0)
    for x in samples:
        est.add(x)
    return est.value


def cell_row(rec: dict) -> dict:
    """One cell record's deterministic summary row.

    The per-cell rows :meth:`MatrixReport.from_records` tabulates and
    the metric namespace a search
    :class:`~repro.campaign.search.Objective` scores over — extracting
    it keeps the two views of a cell definitionally identical.
    """
    report = rec["report"]
    verdict = rec["verdict"]
    return {
        "cell_id": rec["cell_id"],
        "coords": dict(rec["coords"]),
        "seed": rec["seed"],
        "sessions": report["sessions"],
        "completed": report["completed"],
        "failed": report["failed"],
        "goodput": (
            report["completed"] / report["sessions"]
            if report["sessions"] else 0.0
        ),
        "ops": report["ops"],
        "violations": verdict["invariant_violations"],
        "faults_applied": verdict["faults_applied"],
        "recovered": verdict["recovery"]["recovered"],
        "impacted": verdict["recovery"]["impacted"],
        "steer_p90_ms": report["steer_p90_ms"],
        "wait_p90_s": report.get("load", {}).get(
            "wait_p90_s", math.nan
        ),
    }


class _Agg:
    """One aggregation bucket (the whole campaign, or one marginal)."""

    def __init__(self) -> None:
        self.cells = 0
        self.sessions = 0
        self.completed = 0
        self.failed = 0
        self.ops = 0
        self.timeouts = 0
        self.errors = 0
        self.violations = 0
        self.faults_applied = 0
        self.recovered = 0
        self.impacted = 0
        self.steer = RunningStats()
        self.steer_samples: list[float] = []
        self.wait = RunningStats()
        self.wait_samples: list[float] = []

    def add(self, record: dict) -> None:
        report = record["report"]
        verdict = record["verdict"]
        self.cells += 1
        self.sessions += report["sessions"]
        self.completed += report["completed"]
        self.failed += report["failed"]
        self.ops += report["ops"]
        self.timeouts += report["timeouts"]
        self.errors += report["errors"]
        self.violations += verdict["invariant_violations"]
        self.faults_applied += verdict["faults_applied"]
        recovery = verdict["recovery"]
        self.recovered += recovery["recovered"]
        self.impacted += recovery["impacted"]
        mergeable = record["mergeable"]
        self.steer.merge(RunningStats.from_state(mergeable["steer"]["stats"]))
        self.steer_samples.extend(mergeable["steer"]["sample"])
        if "wait" in mergeable:
            self.wait.merge(
                RunningStats.from_state(mergeable["wait"]["stats"])
            )
            self.wait_samples.extend(mergeable["wait"]["sample"])

    @property
    def goodput(self) -> float:
        return self.completed / self.sessions if self.sessions else 0.0

    def to_dict(self) -> dict:
        return {
            "cells": self.cells,
            "sessions": self.sessions,
            "completed": self.completed,
            "failed": self.failed,
            "goodput": self.goodput,
            "ops": self.ops,
            "timeouts": self.timeouts,
            "errors": self.errors,
            "violations": self.violations,
            "faults_applied": self.faults_applied,
            "impacted": self.impacted,
            "recovered": self.recovered,
            "steer_mean_ms": self.steer.mean * 1e3,
            "steer_p50_ms": _p2(self.steer_samples, 50.0) * 1e3,
            "steer_p90_ms": _p2(self.steer_samples, 90.0) * 1e3,
            "steer_p99_ms": _p2(self.steer_samples, 99.0) * 1e3,
            "wait_mean_s": self.wait.mean,
            "wait_p90_s": _p2(self.wait_samples, 90.0),
        }


class MatrixReport:
    """The merged outcome of a campaign grid."""

    def __init__(
        self,
        campaign: str,
        seed: int,
        expected_cells: int,
        cells: list[dict],
        totals: _Agg,
        marginals: dict,
        quarantined: list[dict] | None = None,
        missing: list[str] | None = None,
    ) -> None:
        self.campaign = campaign
        self.seed = seed
        self.expected_cells = expected_cells
        #: per-cell summary rows, sorted by cell id
        self.cells = cells
        self.totals = totals
        #: axis -> point name -> _Agg
        self.marginals = marginals
        #: quarantine summaries (cell_id/coords/reason/attempts), sorted
        self.quarantined = quarantined or []
        #: cell ids of the spec that are neither run nor quarantined
        self.missing = missing or []

    @classmethod
    def from_records(
        cls,
        records: list[dict],
        spec: CampaignSpec | None = None,
        quarantined: list[dict] | None = None,
    ) -> "MatrixReport":
        if not records and spec is None:
            raise CampaignError("cannot aggregate an empty campaign")
        records = sorted(records, key=lambda rec: rec["cell_id"])
        quarantine_rows = sorted(
            (
                {
                    "cell_id": rec["cell_id"],
                    "coords": dict(rec["coords"]),
                    "reason": rec["reason"],
                    "attempts": rec["attempts"],
                }
                for rec in (quarantined or [])
            ),
            key=lambda row: row["cell_id"],
        )
        seen = [rec["cell_id"] for rec in records] + [
            row["cell_id"] for row in quarantine_rows
        ]
        if len(set(seen)) != len(seen):
            raise CampaignError("duplicate cell ids in campaign records")
        totals = _Agg()
        marginals: dict = {axis: {} for axis in AXES}
        if spec is not None:
            # Pre-seat marginals in declared axis order so the report
            # shows every point, run or not, in spec order.
            for axis, points in spec.axis_points().items():
                for point in points:
                    marginals[axis][point.name] = _Agg()
        cells = []
        for rec in records:
            totals.add(rec)
            for axis in AXES:
                name = rec["coords"][axis]
                agg = marginals[axis].get(name)
                if agg is None:
                    agg = marginals[axis][name] = _Agg()
                agg.add(rec)
            cells.append(cell_row(rec))
        missing: list[str] = []
        if spec is not None:
            settled = set(seen)
            missing = [
                cell.cell_id for cell in spec.iter_cells()
                if cell.cell_id not in settled
            ]
        return cls(
            campaign=spec.name if spec is not None else "",
            seed=spec.seed if spec is not None else 0,
            expected_cells=spec.n_cells if spec is not None else len(seen),
            cells=cells,
            totals=totals,
            marginals=marginals,
            quarantined=quarantine_rows,
            missing=missing,
        )

    # -- verdicts ------------------------------------------------------------

    @property
    def complete(self) -> bool:
        """Every expected cell produced a result record — quarantined
        cells are settled, but they are still holes in the grid."""
        return self.totals.cells == self.expected_cells

    @property
    def holes(self) -> int:
        """Expected cells with no result record (quarantined or never
        run) — the grid's explicit, never-silent incompleteness."""
        return self.expected_cells - self.totals.cells

    @property
    def violations(self) -> int:
        return self.totals.violations

    def pareto(self) -> list[dict]:
        """The goodput/latency pareto front over cells: no other cell
        has both goodput >= and steer p90 <= (one strictly better).
        NaN latency (a cell that steered nothing) never makes the front
        unless it is alone."""

        def latency(row: dict) -> float:
            p90 = row["steer_p90_ms"]
            return math.inf if math.isnan(p90) else p90

        front = []
        for row in self.cells:
            dominated = any(
                other is not row
                and other["goodput"] >= row["goodput"]
                and latency(other) <= latency(row)
                and (
                    other["goodput"] > row["goodput"]
                    or latency(other) < latency(row)
                )
                for other in self.cells
            )
            if not dominated:
                front.append(row)
        return front

    # -- views ---------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": "repro.campaign/matrix-v1",
            "campaign": self.campaign,
            "seed": self.seed,
            "expected_cells": self.expected_cells,
            "complete": self.complete,
            "totals": self.totals.to_dict(),
            "marginals": {
                axis: {
                    name: agg.to_dict()
                    for name, agg in self.marginals[axis].items()
                }
                for axis in AXES
            },
            "pareto": [row["cell_id"] for row in self.pareto()],
            "holes": self.holes,
            "quarantined": self.quarantined,
            "missing": list(self.missing),
            "cells": self.cells,
        }

    def render(self, per_cell: bool = False) -> str:
        t = self.totals
        d = t.to_dict()
        lines = [
            f"campaign {self.campaign!r} seed {self.seed}: "
            f"{t.cells}/{self.expected_cells} cells, "
            f"{t.completed}/{t.sessions} sessions completed "
            f"({t.goodput:.0%} goodput), {t.ops} steering ops, "
            f"{t.faults_applied} faults applied, "
            f"{t.violations} invariant violations",
            f"merged steer latency ms: p50={_ms(d['steer_p50_ms'] / 1e3)} "
            f"p90={_ms(d['steer_p90_ms'] / 1e3)} "
            f"p99={_ms(d['steer_p99_ms'] / 1e3)} "
            f"mean={_ms(d['steer_mean_ms'] / 1e3)}   "
            f"admission wait s: p90={_s(d['wait_p90_s'])}",
        ]
        if t.impacted:
            lines.append(
                f"recovery: {t.recovered}/{t.impacted} impacted sessions "
                "recovered"
            )
        for axis in AXES:
            points = self.marginals[axis]
            if len(points) < 2:
                continue
            lines.append(f"-- by {axis} " + "-" * max(0, 58 - len(axis)))
            lines.append(
                f"{'point':<22} {'cells':>5} {'sess':>5} {'good':>5} "
                f"{'ops':>6} {'viol':>4} {'p90ms':>8} {'wait90s':>8}"
            )
            for name, agg in points.items():
                row = agg.to_dict()
                lines.append(
                    f"{name:<22} {agg.cells:>5} {agg.sessions:>5} "
                    f"{agg.goodput:>5.0%} {agg.ops:>6} "
                    f"{agg.violations:>4} "
                    f"{_ms(row['steer_p90_ms'] / 1e3):>8} "
                    f"{_s(row['wait_p90_s']):>8}"
                )
        front = self.pareto()
        lines.append(
            "pareto (max goodput, min steer p90): "
            + (", ".join(row["cell_id"] for row in front) if front else "-")
        )
        if self.quarantined:
            lines.append(
                f"!! {len(self.quarantined)} quarantined cell(s) — "
                "holes in the grid, excluded from every aggregate above:"
            )
            for row in self.quarantined:
                lines.append(
                    f"  {row['cell_id']}: {row['reason']} after "
                    f"{row['attempts']} attempt(s)"
                )
        if self.missing:
            lines.append(
                f"!! {len(self.missing)} cell(s) never ran: "
                + ", ".join(self.missing)
            )
        if per_cell:
            lines.append(
                f"{'cell':<52} {'sess':>5} {'good':>5} {'viol':>4} "
                f"{'p90ms':>8}"
            )
            for row in self.cells:
                lines.append(
                    f"{row['cell_id']:<52} {row['sessions']:>5} "
                    f"{row['goodput']:>5.0%} {row['violations']:>4} "
                    f"{_ms(row['steer_p90_ms'] / 1e3):>8}"
                )
        return "\n".join(lines)

    # -- comparison ----------------------------------------------------------

    def diff(self, other: "MatrixReport") -> dict:
        """Cell-by-cell comparison against another campaign run (e.g.
        last nightly vs this one).  Keys: ``only_self`` / ``only_other``
        (cell ids), ``changed`` (rows whose deterministic outcome
        moved), ``identical`` (count)."""
        mine = {row["cell_id"]: row for row in self.cells}
        theirs = {row["cell_id"]: row for row in other.cells}
        only_self = sorted(set(mine) - set(theirs))
        only_other = sorted(set(theirs) - set(mine))
        changed = []
        identical = 0
        watched = ("sessions", "completed", "failed", "ops", "violations",
                   "steer_p90_ms")

        def same(a, b):
            return a == b or (
                isinstance(a, float) and isinstance(b, float)
                and math.isnan(a) and math.isnan(b)
            )

        for cell_id in sorted(set(mine) & set(theirs)):
            a, b = mine[cell_id], theirs[cell_id]
            delta = {
                key: {"self": a[key], "other": b[key]}
                for key in watched
                if not same(a[key], b[key])
            }
            if delta:
                changed.append({"cell_id": cell_id, "delta": delta})
            else:
                identical += 1
        return {
            "only_self": only_self,
            "only_other": only_other,
            "changed": changed,
            "identical": identical,
        }

    #: marginal metrics gated by diff_marginals, with how each drift is
    #: normalised so one threshold applies across all of them:
    #: fractions compare absolutely, latencies and counts relatively
    MARGINAL_METRICS = ("goodput", "steer_p90_ms", "wait_p90_s", "violations")

    def diff_marginals(self, other: "MatrixReport",
                       threshold: float = 0.0) -> dict:
        """Per-axis **marginal drift** against another run.

        Cell-level :meth:`diff` catches any deterministic change, but a
        nightly that reruns a campaign with an intentionally different
        seed (or a grown axis) needs a softer question: did the *shape*
        of the results move?  For every axis point present in both
        reports this compares the marginal aggregates on
        :data:`MARGINAL_METRICS`, normalising each delta to a fraction —
        ``goodput`` absolutely (it already is one), latencies and
        violation counts relative to the other run — so a single
        ``threshold`` gates them all.  Entries whose drift exceeds the
        threshold land in ``exceeded``; points present on one side only
        land in ``missing`` (and should fail the gate too: a vanished
        marginal is the largest drift of all).
        """
        if threshold < 0:
            raise CampaignError(
                f"marginal drift threshold must be >= 0, got {threshold}"
            )
        entries = []
        missing = []
        for axis in AXES:
            mine = {n: agg.to_dict()
                    for n, agg in self.marginals[axis].items()}
            theirs = {n: agg.to_dict()
                      for n, agg in other.marginals[axis].items()}
            for name in sorted(set(mine) ^ set(theirs)):
                side = "self" if name in mine else "other"
                missing.append({"axis": axis, "point": name, "only": side})
            for name in sorted(set(mine) & set(theirs)):
                a, b = mine[name], theirs[name]
                for metric in self.MARGINAL_METRICS:
                    va, vb = a[metric], b[metric]
                    entries.append({
                        "axis": axis,
                        "point": name,
                        "metric": metric,
                        "self": va,
                        "other": vb,
                        "drift": _drift(metric, va, vb),
                    })
        exceeded = [e for e in entries if e["drift"] > threshold]
        return {
            "threshold": threshold,
            "entries": entries,
            "exceeded": exceeded,
            "missing": missing,
        }

    @staticmethod
    def render_marginals(drift: dict) -> str:
        lines = [
            f"marginal drift vs threshold {drift['threshold']:g}: "
            f"{len(drift['exceeded'])} exceeded, "
            f"{len(drift['missing'])} missing "
            f"({len(drift['entries'])} comparisons)"
        ]
        for m in drift["missing"]:
            lines.append(
                f"  {m['axis']}:{m['point']} only in "
                f"{'A' if m['only'] == 'self' else 'B'}"
            )
        for e in drift["exceeded"]:
            lines.append(
                f"  {e['axis']}:{e['point']} {e['metric']} "
                f"{e['other']:g} -> {e['self']:g} "
                f"(drift {e['drift']:.3f})"
            )
        return "\n".join(lines)

    @staticmethod
    def render_diff(diff: dict) -> str:
        lines = [
            f"{diff['identical']} cells identical, "
            f"{len(diff['changed'])} changed, "
            f"{len(diff['only_self'])} only in A, "
            f"{len(diff['only_other'])} only in B"
        ]
        for cell_id in diff["only_self"]:
            lines.append(f"  only in A: {cell_id}")
        for cell_id in diff["only_other"]:
            lines.append(f"  only in B: {cell_id}")
        for change in diff["changed"]:
            deltas = ", ".join(
                f"{key} {val['other']} -> {val['self']}"
                for key, val in change["delta"].items()
            )
            lines.append(f"  {change['cell_id']}: {deltas}")
        return "\n".join(lines)
