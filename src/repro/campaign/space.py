"""Typed continuous parameter spaces: the search half of the grid API.

A :class:`~repro.campaign.spec.CampaignSpec` enumerates *named points*;
a :class:`ParamSpace` declares the **continuum between them**: one
template :class:`~repro.campaign.spec.AxisPoint` per axis plus a set of
:class:`ParamRange` dimensions addressing individual knobs by dotted
path (``arrival.rate``, ``faults.random.window``, ``base.queue_limit``
...).  Both spec kinds lower to the exact same :class:`CellSpec`
machinery: an *assignment* (path -> value) is stamped into copies of the
template points, every point name gains a ``@<digest>`` suffix derived
from the canonical JSON of the assignment, and the result is a
single-cell :class:`CampaignSpec` whose one cell gets its seed from
``derive_seed(seed, cell_id)`` exactly like a grid cell would.

That digest suffix is the load-bearing trick: the cell id — and hence
the cell seed — is a pure function of the assignment, so

* the same assignment always lowers to the same cell with the same
  seed, no matter which search run (or machine) proposed it;
* a discovered cliff cell exports as a frozen single-cell
  ``CampaignSpec`` fragment that replays **byte-identically** through
  the ordinary grid runner, because nothing about the cell remembers it
  was ever searched for;
* two assignments differing in any value — including ``base.*`` knobs
  that change the fabric without touching axis params — can never
  collide on a cell id and silently share a seed.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.campaign.spec import (
    SPEC_VERSION,
    AxisPoint,
    CampaignSpec,
    CellSpec,
    check_spec_version,
)
from repro.errors import CampaignError

SPACE_SCHEMA = "repro.campaign/space-v1"

#: dotted-path roots an assignment may address, and where each lands:
#: ``scenario.<p>`` / ``arrival.<p>`` -> that template point's params,
#: ``faults.random.<p>`` -> the faults point's ``random`` kwargs,
#: ``base.<key>`` -> a fabric/run base-config override
PATH_ROOTS = ("scenario", "arrival", "faults", "base")


def validate_path(path: str) -> tuple[str, ...]:
    """Split and validate a dotted parameter path; returns its parts."""
    parts = tuple(path.split(".")) if isinstance(path, str) else ()
    if len(parts) < 2 or not all(parts):
        raise CampaignError(
            f"parameter path {path!r} must look like '<root>.<param>' "
            f"(roots: {', '.join(PATH_ROOTS)})"
        )
    root = parts[0]
    if root not in PATH_ROOTS:
        raise CampaignError(
            f"parameter path {path!r}: unknown root {root!r} "
            f"(expected one of {', '.join(PATH_ROOTS)})"
        )
    if root == "faults":
        if len(parts) != 3 or parts[1] != "random":
            raise CampaignError(
                f"parameter path {path!r}: fault paths address the seeded "
                "random schedule as 'faults.random.<param>'"
            )
    elif len(parts) != 2:
        raise CampaignError(
            f"parameter path {path!r}: {root} paths take exactly one "
            f"param ('{root}.<param>')"
        )
    return parts


def assignment_digest(assignment: dict) -> str:
    """A short stable digest of an assignment's canonical JSON form."""
    canon = json.dumps(assignment, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:10]


@dataclass(frozen=True)
class ParamRange:
    """One search dimension: a dotted path plus its closed interval.

    ``kind`` is ``"float"`` or ``"int"`` (integer dimensions round and
    stay integers all the way into the lowered cell, so e.g.
    ``faults.random.n_faults`` never reaches the chaos layer as 3.7);
    ``log`` samples and mutates on a log scale — the right geometry for
    rates spanning orders of magnitude.
    """

    path: str
    lo: float
    hi: float
    kind: str = "float"
    log: bool = False

    def __post_init__(self) -> None:
        validate_path(self.path)
        # normalise bounds so to_dict() is byte-stable however the
        # range was constructed (ints from code, floats from JSON)
        object.__setattr__(self, "lo", float(self.lo))
        object.__setattr__(self, "hi", float(self.hi))
        if self.kind not in ("float", "int"):
            raise CampaignError(
                f"range {self.path!r}: kind must be 'float' or 'int', "
                f"got {self.kind!r}"
            )
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise CampaignError(f"range {self.path!r}: bounds must be finite")
        if self.lo >= self.hi:
            raise CampaignError(
                f"range {self.path!r}: need lo < hi, got [{self.lo}, {self.hi}]"
            )
        if self.log and self.lo <= 0:
            raise CampaignError(
                f"range {self.path!r}: log-scale ranges need lo > 0"
            )

    def coerce(self, value: float) -> float | int:
        """Clamp into the interval and round integer dimensions."""
        value = min(max(float(value), self.lo), self.hi)
        if self.kind == "int":
            return int(round(value))
        return value

    def sample(self, rng) -> float | int:
        if self.log:
            return self.coerce(
                math.exp(rng.uniform(math.log(self.lo), math.log(self.hi)))
            )
        return self.coerce(rng.uniform(self.lo, self.hi))

    def mutate(self, value: float, rng, scale: float) -> float | int:
        """A gaussian step sized to the range's span (or log-span)."""
        if self.log:
            span = math.log(self.hi / self.lo)
            return self.coerce(
                math.exp(math.log(max(float(value), self.lo)) + rng.gauss(0.0, scale * span))
            )
        return self.coerce(float(value) + rng.gauss(0.0, scale * (self.hi - self.lo)))

    def to_dict(self) -> dict:
        return {
            "path": self.path, "lo": self.lo, "hi": self.hi,
            "kind": self.kind, "log": self.log,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ParamRange":
        try:
            return cls(
                path=doc["path"], lo=float(doc["lo"]), hi=float(doc["hi"]),
                kind=doc.get("kind", "float"), log=bool(doc.get("log", False)),
            )
        except KeyError as exc:
            raise CampaignError(
                f"param range is missing required key {exc}"
            ) from None


@dataclass
class ParamSpace:
    """A continuous scenario space: four template points + the ranges.

    The templates fix everything an assignment does not sweep (the
    arrival kind, the fault-schedule shape, the placement policy ...);
    ``ranges`` declare the swept dimensions.  ``base`` plays the same
    role as :attr:`CampaignSpec.base` — fabric/run knobs every lowered
    cell shares.
    """

    name: str
    scenario: AxisPoint
    arrival: AxisPoint
    faults: AxisPoint
    policy: AxisPoint
    ranges: Sequence[ParamRange]
    base: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("parameter space needs a name")

        def point(p) -> AxisPoint:
            return p if isinstance(p, AxisPoint) else AxisPoint.from_dict(p)

        self.scenario = point(self.scenario)
        self.arrival = point(self.arrival)
        self.faults = point(self.faults)
        self.policy = point(self.policy)
        self.ranges = [
            r if isinstance(r, ParamRange) else ParamRange.from_dict(r)
            for r in self.ranges
        ]
        if not self.ranges:
            raise CampaignError(
                f"parameter space {self.name!r} needs at least one range"
            )
        paths = [r.path for r in self.ranges]
        if len(set(paths)) != len(paths):
            raise CampaignError(
                f"parameter space {self.name!r} has duplicate range "
                f"paths: {paths}"
            )

    def range_of(self, path: str) -> ParamRange | None:
        for r in self.ranges:
            if r.path == path:
                return r
        return None

    # -- assignments ---------------------------------------------------------

    def sample(self, rng) -> dict:
        """One uniform random assignment, in declared range order."""
        return {r.path: r.sample(rng) for r in self.ranges}

    def clamp(self, assignment: dict) -> dict:
        """Coerce every declared dimension back into its range; paths
        beyond the declared ranges (e.g. a successive-halving budget)
        pass through untouched after syntax validation."""
        out = {}
        for path, value in assignment.items():
            validate_path(path)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise CampaignError(
                    f"assignment {path!r}: values must be numbers, "
                    f"got {value!r}"
                )
            r = self.range_of(path)
            out[path] = r.coerce(value) if r is not None else value
        return out

    # -- lowering ------------------------------------------------------------

    def lower_spec(
        self, assignment: dict, seed: int, name: str | None = None
    ) -> CampaignSpec:
        """Lower one assignment to a frozen single-cell CampaignSpec.

        Every template point is copied, the assignment's values are
        stamped into the matching params, and every point name gains
        the assignment's ``@<digest>`` suffix — so the cell id (and
        therefore the cell seed) is a pure function of the assignment
        and the fragment replays byte-identically through the ordinary
        grid runner.
        """
        assignment = self.clamp(assignment)
        digest = assignment_digest(assignment)
        params = {
            "scenario": dict(self.scenario.params),
            "arrival": dict(self.arrival.params),
            "faults": dict(self.faults.params),
            "policy": dict(self.policy.params),
        }
        # copy the nested dicts an assignment may write into
        params["faults"]["random"] = dict(params["faults"].get("random", {}))
        base_over: dict = {}
        for path, value in assignment.items():
            parts = validate_path(path)
            if parts[0] == "base":
                base_over[parts[1]] = value
            elif parts[0] == "faults":
                params["faults"]["random"][parts[2]] = value
            else:
                params[parts[0]][parts[1]] = value
        if base_over:
            # base overrides ride the policy point — the last axis in
            # AXES order, so they win over any template-level overrides
            policy_base = dict(params["policy"].get("base", {}))
            policy_base.update(base_over)
            params["policy"]["base"] = policy_base
        return CampaignSpec(
            name=name or self.name,
            seed=seed,
            base=dict(self.base),
            scenarios=[AxisPoint(f"{self.scenario.name}@{digest}", params["scenario"])],
            arrivals=[AxisPoint(f"{self.arrival.name}@{digest}", params["arrival"])],
            faults=[AxisPoint(f"{self.faults.name}@{digest}", params["faults"])],
            policies=[AxisPoint(f"{self.policy.name}@{digest}", params["policy"])],
        )

    def lower(
        self, assignment: dict, seed: int, name: str | None = None
    ) -> CellSpec:
        """The assignment's one concrete cell (index 0, derived seed)."""
        return self.lower_spec(assignment, seed, name=name).cells()[0]

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SPACE_SCHEMA,
            "version": SPEC_VERSION,
            "name": self.name,
            "scenario": self.scenario.to_dict(),
            "arrival": self.arrival.to_dict(),
            "faults": self.faults.to_dict(),
            "policy": self.policy.to_dict(),
            "ranges": [r.to_dict() for r in self.ranges],
            "base": dict(self.base),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ParamSpace":
        schema = doc.get("schema", SPACE_SCHEMA)
        if schema != SPACE_SCHEMA:
            raise CampaignError(
                f"unsupported parameter space schema {schema!r} "
                f"(expected {SPACE_SCHEMA})"
            )
        check_spec_version(doc, what="parameter space")
        try:
            return cls(
                name=doc["name"],
                scenario=AxisPoint.from_dict(doc["scenario"]),
                arrival=AxisPoint.from_dict(doc["arrival"]),
                faults=AxisPoint.from_dict(doc["faults"]),
                policy=AxisPoint.from_dict(doc["policy"]),
                ranges=[ParamRange.from_dict(r) for r in doc["ranges"]],
                base=dict(doc.get("base", {})),
            )
        except KeyError as exc:
            raise CampaignError(
                f"parameter space is missing required key {exc}"
            ) from None
