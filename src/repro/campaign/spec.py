"""Declarative scenario-matrix campaigns: the grid, not the point.

The ROADMAP's north star demands "as many scenarios as you can imagine"
explored *systematically*.  The testbed already has four orthogonal
scenario axes — workload suites (:mod:`repro.workloads` /
:mod:`repro.fleet.spec`), arrival processes (:mod:`repro.load.arrivals`),
fault schedules (:mod:`repro.chaos.faults`) and placement/autoscale
policies (:mod:`repro.load.placement` / :mod:`repro.load.autoscale`) —
but until now every bench hand-picked a handful of combinations.  A
:class:`CampaignSpec` declares the **cross product**: one
:class:`AxisPoint` list per axis, and every combination becomes a
:class:`CellSpec` with a deterministic identity and seed.

Determinism is the load-bearing property.  A cell's seed is a stable
hash (SHA-256, not Python's randomized ``hash``) of the campaign seed
and the cell's coordinates, so

* the same campaign always enumerates the same cells with the same
  seeds, in the same order;
* any single cell can be re-run **in isolation** — on another machine,
  in another process, weeks later — and reproduce its original run
  byte for byte;
* adding a point to one axis changes only the new cells' seeds, never
  the existing ones (the seed depends on coordinates, not position).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import CampaignError

#: axis order — also the order of coordinates inside a cell id
AXES = ("scenario", "arrival", "faults", "policy")

SPEC_SCHEMA = "repro.campaign/spec-v1"

#: wire-format version carried by every serialised spec.  Bump when a
#: to_dict/from_dict change would make old readers misinterpret new
#: documents; from_dict refuses versions it does not know.
SPEC_VERSION = 1


def check_spec_version(doc: dict, what: str = "campaign spec") -> None:
    """Refuse documents written by an unknown wire-format version.

    Documents predating the version field (PR 5–9 store headers) carry
    no ``"version"`` key and are read as version 1 — the formats are
    identical.
    """
    version = doc.get("version", 1)
    if version != SPEC_VERSION:
        raise CampaignError(
            f"unsupported {what} version {version!r} (this build reads "
            f"version {SPEC_VERSION}; upgrade to read newer documents)"
        )


def derive_seed(seed: int, *parts: object) -> int:
    """A stable 63-bit seed from a root seed and a coordinate path.

    SHA-256 over the textual path, so the value is identical across
    processes, platforms and Python versions (``hash()`` is neither).
    Used twice: campaign seed + cell id -> cell seed, and cell seed +
    salt ("arrival", "faults", "placement") -> per-component sub-seeds,
    so the axes draw from independent streams.
    """
    text = ":".join([str(seed), *(str(p) for p in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class AxisPoint:
    """One named point on one axis: a label plus builder parameters.

    The label is the cell-coordinate component (so it must be unique on
    its axis and must not contain the ``/`` that joins coordinates into
    cell ids); ``params`` are interpreted by the axis builders in
    :mod:`repro.campaign.axes`.
    """

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise CampaignError(
                f"axis point name {self.name!r} must be non-empty and "
                "must not contain '/'"
            )
        if not isinstance(self.params, dict):
            raise CampaignError(
                f"axis point {self.name!r}: params must be a dict"
            )

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, doc: dict) -> "AxisPoint":
        if isinstance(doc, str):
            return cls(doc)
        return cls(doc["name"], dict(doc.get("params", {})))


@dataclass(frozen=True)
class CellSpec:
    """One cell of the grid: four coordinates, a derived seed, and the
    campaign-wide base configuration.  Fully picklable and JSON-able —
    worker processes receive exactly this."""

    campaign: str
    cell_id: str
    index: int
    seed: int
    scenario: AxisPoint
    arrival: AxisPoint
    faults: AxisPoint
    policy: AxisPoint
    base: dict = field(default_factory=dict)

    @property
    def coords(self) -> dict:
        return {
            "scenario": self.scenario.name,
            "arrival": self.arrival.name,
            "faults": self.faults.name,
            "policy": self.policy.name,
        }

    def subseed(self, salt: str) -> int:
        """An independent stream for one component of this cell."""
        return derive_seed(self.seed, salt)


@dataclass
class CampaignSpec:
    """The declarative campaign: four axes, a seed, shared base config.

    ``base`` holds the fabric/run knobs every cell shares (``n_sites``,
    ``queue_slots``, ``queue_limit``, ``until`` ...); any axis point may
    override entries via a ``base`` key in its params (per-axis
    overrides, applied in :data:`AXES` order so later axes win).
    """

    name: str
    scenarios: Sequence[AxisPoint]
    arrivals: Sequence[AxisPoint]
    faults: Sequence[AxisPoint]
    policies: Sequence[AxisPoint]
    seed: int = 0
    base: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign needs a name")

        def points(seq) -> list[AxisPoint]:
            return [
                p if isinstance(p, AxisPoint) else AxisPoint.from_dict(p)
                for p in seq
            ]

        self.scenarios = points(self.scenarios)
        self.arrivals = points(self.arrivals)
        self.faults = points(self.faults)
        self.policies = points(self.policies)
        for axis, points in self.axis_points().items():
            if not points:
                raise CampaignError(f"axis {axis!r} needs at least one point")
            names = [p.name for p in points]
            if len(set(names)) != len(names):
                raise CampaignError(
                    f"axis {axis!r} has duplicate point names: {names}"
                )

    # -- the grid ------------------------------------------------------------

    def axis_points(self) -> dict:
        return {
            "scenario": list(self.scenarios),
            "arrival": list(self.arrivals),
            "faults": list(self.faults),
            "policy": list(self.policies),
        }

    @property
    def n_cells(self) -> int:
        n = 1
        for points in self.axis_points().values():
            n *= len(points)
        return n

    @staticmethod
    def cell_id_of(scenario: AxisPoint, arrival: AxisPoint,
                   faults: AxisPoint, policy: AxisPoint) -> str:
        return "/".join((scenario.name, arrival.name, faults.name,
                         policy.name))

    def cells(self) -> list[CellSpec]:
        """Enumerate the grid, deterministically: itertools.product in
        declared axis-point order, seeds derived from coordinates."""
        return list(self.iter_cells())

    def iter_cells(self) -> Iterator[CellSpec]:
        for index, (sc, ar, fa, po) in enumerate(
            itertools.product(self.scenarios, self.arrivals, self.faults,
                              self.policies)
        ):
            cell_id = self.cell_id_of(sc, ar, fa, po)
            base = dict(self.base)
            # Per-axis base overrides, later axes win.
            for point in (sc, ar, fa, po):
                base.update(point.params.get("base", {}))
            yield CellSpec(
                campaign=self.name,
                cell_id=cell_id,
                index=index,
                seed=derive_seed(self.seed, cell_id),
                scenario=sc,
                arrival=ar,
                faults=fa,
                policy=po,
                base=base,
            )

    # -- (de)serialisation ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SPEC_SCHEMA,
            "version": SPEC_VERSION,
            "name": self.name,
            "seed": self.seed,
            "base": dict(self.base),
            "scenarios": [p.to_dict() for p in self.scenarios],
            "arrivals": [p.to_dict() for p in self.arrivals],
            "faults": [p.to_dict() for p in self.faults],
            "policies": [p.to_dict() for p in self.policies],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignSpec":
        schema = doc.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise CampaignError(
                f"unsupported campaign spec schema {schema!r} "
                f"(expected {SPEC_SCHEMA})"
            )
        check_spec_version(doc)
        try:
            return cls(
                name=doc["name"],
                seed=int(doc.get("seed", 0)),
                base=dict(doc.get("base", {})),
                scenarios=[AxisPoint.from_dict(p) for p in doc["scenarios"]],
                arrivals=[AxisPoint.from_dict(p) for p in doc["arrivals"]],
                faults=[AxisPoint.from_dict(p) for p in doc["faults"]],
                policies=[AxisPoint.from_dict(p) for p in doc["policies"]],
            )
        except KeyError as exc:
            raise CampaignError(
                f"campaign spec is missing required key {exc}"
            ) from None
