"""The resumable campaign results store: one JSONL file per campaign.

Line 1 is a header record carrying the full :class:`CampaignSpec` (and
the store schema), every following line is one completed cell.  The
invariants a long-running campaign leans on:

* **atomic** — every append rewrites the file to a sibling ``.tmp`` and
  ``os.replace``-s it over the original, so a killed run can never leave
  a half-written record *behind* a committed one;
* **resumable** — on restart the runner asks :meth:`completed_ids` and
  re-executes only the cells that are missing (per-cell seeds make the
  reruns byte-identical, so a resumed campaign equals an uninterrupted
  one);
* **tolerant of its own death** — a truncated *trailing* line (the
  window between ``write`` and ``replace`` is empty, but an older
  non-atomic writer, a full disk, or a torn copy can still produce one)
  is dropped on load, surfaced via :attr:`dropped_lines`, and the cell
  simply reruns.  A corrupt line *before* intact ones is refused loudly:
  that is damage, not interruption.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional

from repro.campaign.spec import CampaignSpec
from repro.errors import CampaignError

STORE_SCHEMA = "repro.campaign/store-v1"


class ResultStore:
    """Append-only JSONL store for one campaign's cell records."""

    def __init__(self, path: pathlib.Path | str) -> None:
        self.path = pathlib.Path(path)
        self._header: Optional[dict] = None
        self._cells: list[dict] = []
        #: unparsable trailing lines discarded on load (0 or 1 normally)
        self.dropped_lines = 0
        if self.path.exists():
            self._load()

    # -- loading -------------------------------------------------------------

    def _load(self) -> None:
        text = self.path.read_text()
        lines = text.splitlines()
        records = []
        bad = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                bad.append(i)
        if bad:
            # Only a *trailing* torn line is interruption; anything
            # earlier means the file was damaged and silently skipping
            # it would mis-report the campaign.
            if bad != [len(lines) - 1]:
                raise CampaignError(
                    f"{self.path}: corrupt non-trailing record(s) at "
                    f"line(s) {[i + 1 for i in bad]}"
                )
            self.dropped_lines = len(bad)
        if not records:
            return
        head, *cells = records
        if head.get("kind") != "header" or head.get("schema") != STORE_SCHEMA:
            raise CampaignError(
                f"{self.path}: first record is not a "
                f"{STORE_SCHEMA} header"
            )
        for rec in cells:
            if rec.get("kind") != "cell" or "cell_id" not in rec:
                raise CampaignError(
                    f"{self.path}: non-cell record after the header"
                )
        self._header = head
        self._cells = cells

    # -- writing -------------------------------------------------------------

    @staticmethod
    def _dumps(record: dict) -> str:
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    def _rewrite(self) -> None:
        """Serialise everything we hold and atomically replace the file."""
        lines = []
        if self._header is not None:
            lines.append(self._dumps(self._header))
        lines.extend(self._dumps(rec) for rec in self._cells)
        tmp = self.path.parent / (self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text("\n".join(lines) + "\n")
        os.replace(tmp, self.path)

    def ensure_header(self, spec: CampaignSpec) -> None:
        """Write the header on first use; on resume, verify the stored
        campaign is the one being run (name + seed + full spec)."""
        doc = {
            "kind": "header",
            "schema": STORE_SCHEMA,
            "campaign": spec.name,
            "seed": spec.seed,
            "spec": spec.to_dict(),
        }
        if self._header is None:
            self._header = doc
            self._rewrite()
            return
        if self._header.get("spec") != doc["spec"]:
            raise CampaignError(
                f"{self.path} already holds campaign "
                f"{self._header.get('campaign')!r} (seed "
                f"{self._header.get('seed')}); refusing to mix results "
                f"with {spec.name!r} (seed {spec.seed}) — use a fresh "
                "store path or matching spec"
            )

    def append(self, record: dict) -> None:
        """Persist one completed cell (atomically, immediately)."""
        if self._header is None:
            raise CampaignError(
                f"{self.path}: store has no header; call ensure_header "
                "before appending cells"
            )
        if record.get("kind") != "cell" or "cell_id" not in record:
            raise CampaignError("cell records need kind='cell' and cell_id")
        if record["cell_id"] in self.completed_ids():
            raise CampaignError(
                f"{self.path}: duplicate cell record {record['cell_id']!r}"
            )
        self._cells.append(record)
        self._rewrite()

    # -- reading -------------------------------------------------------------

    @property
    def header(self) -> Optional[dict]:
        return self._header

    def spec(self) -> CampaignSpec:
        """Rebuild the campaign spec a store was recorded under."""
        if self._header is None:
            raise CampaignError(f"{self.path}: store has no header yet")
        return CampaignSpec.from_dict(self._header["spec"])

    def cell_records(self) -> list[dict]:
        return list(self._cells)

    def completed_ids(self) -> set:
        return {rec["cell_id"] for rec in self._cells}

    def __len__(self) -> int:
        return len(self._cells)
