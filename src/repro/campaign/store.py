"""The resumable campaign results store: one JSONL file per campaign.

Line 1 is a header record carrying the full :class:`CampaignSpec` (and
the store schema), every following line is one settled cell — either a
``"kind": "cell"`` success record or a ``"kind": "quarantine"`` record
written by the supervisor after a cell exhausted its retry budget.  The
invariants a long-running campaign leans on:

* **atomic** — every append rewrites the file to a sibling ``.tmp`` and
  ``os.replace``-s it over the original, so a killed run can never leave
  a half-written record *behind* a committed one;
* **durable** — the tmp file is fsynced before the replace and the
  directory is fsynced after it, so a *host* crash (power loss, kernel
  panic) cannot lose a record the runner already acknowledged.  Tests
  and benches that churn thousands of throwaway stores can opt out with
  ``fsync=False``;
* **resumable** — on restart the runner asks :meth:`settled_ids` and
  re-executes only the cells that are missing (per-cell seeds make the
  reruns byte-identical, so a resumed campaign equals an uninterrupted
  one).  Quarantined cells count as settled: a cell that deterministic-
  ally crashes the worker must not be re-attempted on every resume;
* **tolerant of its own death** — a truncated *trailing* line (the
  window between ``write`` and ``replace`` is empty, but an older
  non-atomic writer, a full disk, or a torn copy can still produce one)
  is dropped on load, surfaced via :attr:`dropped_lines`, and the cell
  simply reruns.  A corrupt line *before* intact ones is refused loudly:
  that is damage, not interruption.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Optional

from repro.campaign.spec import CampaignSpec
from repro.errors import CampaignError

STORE_SCHEMA = "repro.campaign/store-v1"

#: record kinds accepted after the header line
RECORD_KINDS = ("cell", "quarantine")


class ResultStore:
    """Append-only JSONL store for one campaign's cell records."""

    def __init__(self, path: pathlib.Path | str, fsync: bool = True) -> None:
        self.path = pathlib.Path(path)
        #: durability switch — leave on everywhere except throwaway
        #: test/bench stores (fsync per append costs ~a few ms on disk)
        self.fsync = bool(fsync)
        self._header: Optional[dict] = None
        #: settled records in append order (cells and quarantines mixed)
        self._records: list[dict] = []
        #: unparsable trailing lines discarded on load (0 or 1 normally)
        self.dropped_lines = 0
        if self.path.exists():
            self._load()

    # -- loading -------------------------------------------------------------

    def _load(self) -> None:
        text = self.path.read_text()
        lines = text.splitlines()
        records = []
        bad = []
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                bad.append(i)
        if bad:
            # Only a *trailing* torn line is interruption; anything
            # earlier means the file was damaged and silently skipping
            # it would mis-report the campaign.
            if bad != [len(lines) - 1]:
                raise CampaignError(
                    f"{self.path}: corrupt non-trailing record(s) at "
                    f"line(s) {[i + 1 for i in bad]}"
                )
            self.dropped_lines = len(bad)
        if not records:
            return
        head, *cells = records
        if head.get("kind") != "header" or head.get("schema") != STORE_SCHEMA:
            raise CampaignError(
                f"{self.path}: first record is not a "
                f"{STORE_SCHEMA} header"
            )
        for rec in cells:
            if rec.get("kind") not in RECORD_KINDS or "cell_id" not in rec:
                raise CampaignError(
                    f"{self.path}: record after the header is neither a "
                    "cell nor a quarantine"
                )
        self._header = head
        self._records = cells

    # -- writing -------------------------------------------------------------

    @staticmethod
    def _dumps(record: dict) -> str:
        return json.dumps(record, sort_keys=True, separators=(",", ":"))

    def _rewrite(self) -> None:
        """Serialise everything we hold and atomically replace the file.

        With :attr:`fsync` on (the default) the tmp file is flushed to
        stable storage before the replace and the directory entry after
        it — the two halves of crash consistency: the bytes survive a
        host crash, and so does the rename that points at them.
        """
        lines = []
        if self._header is not None:
            lines.append(self._dumps(self._header))
        lines.extend(self._dumps(rec) for rec in self._records)
        tmp = self.path.parent / (self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
            if self.fsync:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        if self.fsync:
            try:
                dfd = os.open(self.path.parent, os.O_RDONLY)
            except OSError:
                return  # platform cannot open directories (e.g. Windows)
            try:
                os.fsync(dfd)
            finally:
                os.close(dfd)

    def ensure_header(self, spec) -> None:
        """Write the header on first use; on resume, verify the stored
        campaign is the one being run (name + seed + full spec).

        Accepts anything spec-shaped (``name`` / ``seed`` /
        ``to_dict()``) — grid :class:`CampaignSpec` and search
        ``SearchSpec`` headers share one store format.
        """
        doc = {
            "kind": "header",
            "schema": STORE_SCHEMA,
            "campaign": spec.name,
            "seed": spec.seed,
            "spec": spec.to_dict(),
        }
        if self._header is None:
            self._header = doc
            self._rewrite()
            return
        if self._header.get("spec") != doc["spec"]:
            raise CampaignError(
                f"{self.path} already holds campaign "
                f"{self._header.get('campaign')!r} (seed "
                f"{self._header.get('seed')}); refusing to mix results "
                f"with {spec.name!r} (seed {spec.seed}) — use a fresh "
                "store path or matching spec"
            )

    def _append(self, record: dict, kind: str) -> None:
        if self._header is None:
            raise CampaignError(
                f"{self.path}: store has no header; call ensure_header "
                "before appending cells"
            )
        if record.get("kind") != kind or "cell_id" not in record:
            raise CampaignError(
                f"{kind} records need kind={kind!r} and cell_id"
            )
        if record["cell_id"] in self.settled_ids():
            raise CampaignError(
                f"{self.path}: duplicate record for cell "
                f"{record['cell_id']!r}"
            )
        self._records.append(record)
        self._rewrite()

    def append(self, record: dict) -> None:
        """Persist one completed cell (atomically, immediately)."""
        self._append(record, "cell")

    def append_quarantine(self, record: dict) -> None:
        """Persist a quarantine verdict: this cell exhausted its retry
        budget and must not be re-attempted on resume."""
        self._append(record, "quarantine")

    # -- reading -------------------------------------------------------------

    @property
    def header(self) -> Optional[dict]:
        return self._header

    def spec(self):
        """Rebuild the spec a store was recorded under.

        Returns a :class:`CampaignSpec` for grid stores and a
        :class:`~repro.campaign.search.SearchSpec` for search stores
        (dispatched on the embedded document's schema), so ``resume``
        needs nothing but the store path either way.
        """
        if self._header is None:
            raise CampaignError(f"{self.path}: store has no header yet")
        doc = self._header["spec"]
        if doc.get("schema") == "repro.campaign/search-v1":
            # deferred import: search builds on the store, not vice versa
            from repro.campaign.search import SearchSpec

            return SearchSpec.from_dict(doc)
        return CampaignSpec.from_dict(doc)

    def cell_records(self) -> list[dict]:
        return [rec for rec in self._records if rec["kind"] == "cell"]

    def quarantine_records(self) -> list[dict]:
        return [rec for rec in self._records if rec["kind"] == "quarantine"]

    def completed_ids(self) -> set:
        """Ids of cells that finished and produced a result record."""
        return {rec["cell_id"] for rec in self._records
                if rec["kind"] == "cell"}

    def quarantined_ids(self) -> set:
        """Ids of cells the supervisor gave up on (known poison)."""
        return {rec["cell_id"] for rec in self._records
                if rec["kind"] == "quarantine"}

    def settled_ids(self) -> set:
        """Everything resume must skip: completed ∪ quarantined."""
        return {rec["cell_id"] for rec in self._records}

    def __len__(self) -> int:
        return sum(1 for rec in self._records if rec["kind"] == "cell")
