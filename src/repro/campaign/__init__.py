"""repro.campaign: parallel scenario-matrix campaigns over the testbed.

The experiment engine that turns four independent subsystems into one
systematic sweep.  The testbed accumulated four orthogonal scenario
axes — workload suites (:mod:`repro.workloads` /
:mod:`repro.fleet.spec`), arrival processes (:mod:`repro.load`), fault
schedules (:mod:`repro.chaos`) and placement/autoscale policies — and
this package explores their **cross product**:

* :mod:`repro.campaign.spec` — the declarative :class:`CampaignSpec`
  grid, with stable SHA-derived per-cell seeds so any cell reruns
  byte-identically in isolation;
* :mod:`repro.campaign.axes` — builders turning axis points into live
  suites, arrival processes, fault schedules and policies;
* :mod:`repro.campaign.runner` — :func:`run_cell` (one isolated world
  per cell) and :class:`CampaignRunner` (inline reference execution, or
  supervised workers streaming completions into the store);
* :mod:`repro.campaign.supervise` — the :class:`Supervisor`: individually
  supervised worker processes with crash detection, per-cell wall-clock
  timeouts, seeded retry backoff, quarantine verdicts for poison cells,
  and graceful SIGTERM/SIGINT drain;
* :mod:`repro.campaign.store` — the resumable, atomically-written,
  fsync-durable JSONL :class:`ResultStore` (completed and quarantined
  cells are skipped on restart);
* :mod:`repro.campaign.matrix` — :class:`MatrixReport`, merging
  per-cell fleet reports through the exact mergeable statistics into
  per-axis marginals and a goodput/latency pareto front;
* :mod:`repro.campaign.cli` — ``python -m repro.campaign``
  (run / resume / report / diff).

The quickest way in::

    from repro.campaign import CampaignRunner, ResultStore, preset

    spec = preset("smoke")
    runner = CampaignRunner(spec, ResultStore("smoke.jsonl"), workers=4)
    matrix = runner.run()
    print(matrix.render())
"""

from repro.campaign.matrix import MatrixReport
from repro.campaign.presets import PRESETS, nightly, preset, smoke
from repro.campaign.runner import CampaignRunner, run_cell
from repro.campaign.spec import (
    AXES,
    AxisPoint,
    CampaignSpec,
    CellSpec,
    derive_seed,
)
from repro.campaign.store import ResultStore
from repro.campaign.supervise import Supervisor

__all__ = [
    "AXES",
    "AxisPoint",
    "CampaignSpec",
    "CampaignRunner",
    "CellSpec",
    "MatrixReport",
    "PRESETS",
    "ResultStore",
    "Supervisor",
    "derive_seed",
    "nightly",
    "preset",
    "run_cell",
    "smoke",
]
