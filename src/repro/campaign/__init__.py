"""repro.campaign: scenario-matrix campaigns and adaptive searches.

The experiment engine that turns four independent subsystems into one
systematic sweep.  The testbed accumulated four orthogonal scenario
axes — workload suites (:mod:`repro.workloads` /
:mod:`repro.fleet.spec`), arrival processes (:mod:`repro.load`), fault
schedules (:mod:`repro.chaos`) and placement/autoscale policies — and
this package explores their **cross product** (the grid) and the
**continuum between the grid points** (the adaptive search):

* :mod:`repro.campaign.spec` — the declarative :class:`CampaignSpec`
  grid, with stable SHA-derived per-cell seeds so any cell reruns
  byte-identically in isolation;
* :mod:`repro.campaign.space` — the continuous counterpart: a
  :class:`ParamSpace` of :class:`ParamRange` dimensions over dotted
  parameter paths, lowering any assignment to the same seeded
  :class:`CellSpec` machinery the grid uses;
* :mod:`repro.campaign.search` — the seeded, resumable adaptive search:
  pluggable :class:`SearchStrategy` (random / evolutionary / successive
  halving), a scalar :class:`Objective` with :class:`Constraint`
  penalties, the :class:`SearchRunner` loop and the byte-deterministic
  :class:`SearchArchive` with frozen cliff-cell export;
* :mod:`repro.campaign.axes` — builders turning axis points into live
  suites, arrival processes, fault schedules and policies;
* :mod:`repro.campaign.runner` — :func:`run_cell` (one isolated world
  per cell), the :class:`CellExecutor` both loops share, and
  :class:`CampaignRunner` (inline reference execution, or supervised
  workers streaming completions into the store);
* :mod:`repro.campaign.supervise` — the :class:`Supervisor`: individually
  supervised worker processes with crash detection, per-cell wall-clock
  timeouts, seeded retry backoff, quarantine verdicts for poison cells,
  and graceful SIGTERM/SIGINT drain;
* :mod:`repro.campaign.store` — the resumable, atomically-written,
  fsync-durable JSONL :class:`ResultStore` (completed and quarantined
  cells are skipped on restart; headers carry grid and search specs
  alike);
* :mod:`repro.campaign.matrix` — :class:`MatrixReport`, merging
  per-cell fleet reports through the exact mergeable statistics into
  per-axis marginals and a goodput/latency pareto front;
* :mod:`repro.campaign.cli` — ``python -m repro.campaign``
  (run / resume / report / diff / search).

The quickest ways in::

    from repro.campaign import CampaignRunner, ResultStore, preset

    spec = preset("smoke")
    runner = CampaignRunner(spec, ResultStore("smoke.jsonl"), workers=4)
    matrix = runner.run()
    print(matrix.render())

    from repro.campaign import SearchRunner, search_preset

    spec = search_preset("cliff-smoke")
    runner = SearchRunner(spec, ResultStore("cliffs.jsonl"), workers=4)
    archive = runner.run()
    print(archive.render())
"""

from repro.campaign.matrix import MatrixReport
from repro.campaign.presets import (
    PRESETS,
    SEARCH_PRESETS,
    cliff_hunt,
    cliff_smoke,
    nightly,
    preset,
    search_preset,
    smoke,
)
from repro.campaign.runner import CampaignRunner, CellExecutor, run_cell
from repro.campaign.search import (
    Constraint,
    Evaluation,
    EvolutionaryStrategy,
    Objective,
    RandomStrategy,
    STRATEGIES,
    SearchArchive,
    SearchRunner,
    SearchSpec,
    SearchStrategy,
    SuccessiveHalvingStrategy,
    make_strategy,
)
from repro.campaign.space import ParamRange, ParamSpace
from repro.campaign.spec import (
    AXES,
    AxisPoint,
    CampaignSpec,
    CellSpec,
    SPEC_VERSION,
    derive_seed,
)
from repro.campaign.store import ResultStore
from repro.campaign.supervise import Supervisor

__all__ = [
    "AXES",
    "AxisPoint",
    "CampaignSpec",
    "CampaignRunner",
    "CellExecutor",
    "CellSpec",
    "Constraint",
    "Evaluation",
    "EvolutionaryStrategy",
    "MatrixReport",
    "Objective",
    "PRESETS",
    "ParamRange",
    "ParamSpace",
    "RandomStrategy",
    "ResultStore",
    "SEARCH_PRESETS",
    "SPEC_VERSION",
    "STRATEGIES",
    "SearchArchive",
    "SearchRunner",
    "SearchSpec",
    "SearchStrategy",
    "SuccessiveHalvingStrategy",
    "Supervisor",
    "cliff_hunt",
    "cliff_smoke",
    "derive_seed",
    "make_strategy",
    "nightly",
    "preset",
    "run_cell",
    "search_preset",
    "smoke",
]
