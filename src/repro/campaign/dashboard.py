"""Static HTML dashboard for a campaign's :class:`MatrixReport`.

``python -m repro.campaign report --store S --html out.html`` renders
one self-contained page — inline CSS, inline SVG, zero scripts, zero
external fetches — so the nightly workflow can publish it as an artifact
and anyone can open the file from disk:

* headline totals (cells, goodput, ops, faults, violations — plus a
  quarantine count whenever the supervisor gave up on any cell);
* a quarantine panel naming every grid hole (quarantined cells with
  their failure reason and attempt count, plus cells that never ran);
* a goodput vs. steer-p90 scatter of every cell with the pareto front
  drawn through the non-dominated ones;
* per-axis marginal tables (the same numbers ``render`` prints);
* when a baseline store is given, the marginal drift table from
  :meth:`MatrixReport.diff_marginals`, drifted rows highlighted.

Everything is a pure function of the deterministic ``MatrixReport``
content (plus the optional baseline), so two same-seed campaigns render
byte-identical dashboards — the artifact itself is diffable.
"""

from __future__ import annotations

import html
import math
from typing import Optional

from repro.campaign.matrix import MatrixReport
from repro.campaign.spec import AXES

_CSS = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif;
       margin: 2em auto; max-width: 72em; color: #1a1a2e; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccd; padding: 0.25em 0.7em; text-align: right; }
th { background: #eef; } td.name { text-align: left; }
tr.pareto td { background: #e8f6e8; }
tr.drift td { background: #fde8e8; }
tr.quarantine td { background: #fdf3e0; }
.totals span { display: inline-block; margin-right: 1.6em; }
.totals b { font-size: 1.3em; }
.bad b { color: #b00020; }
svg { border: 1px solid #ccd; background: #fcfcff; }
.note { color: #667; font-size: 0.9em; }
"""


def _fmt(x, pct: bool = False) -> str:
    """Table cell text: '-' for NaN, percents for fractions."""
    if isinstance(x, float):
        if math.isnan(x):
            return "-"
        if pct:
            return f"{x:.0%}"
        return f"{x:g}" if x == int(x) else f"{x:.2f}"
    return str(x)


def _scatter(cells: list[dict], front_ids: set) -> str:
    """Inline SVG: steer p90 (x) vs goodput (y), pareto front joined."""
    width, height, pad = 640, 360, 45
    plotted = [c for c in cells if not math.isnan(c["steer_p90_ms"])]
    if not plotted:
        return '<p class="note">no cell produced steering latencies.</p>'
    xmax = max(c["steer_p90_ms"] for c in plotted) * 1.08 or 1.0

    def sx(ms: float) -> float:
        return pad + (width - 2 * pad) * ms / xmax

    def sy(goodput: float) -> float:
        return height - pad - (height - 2 * pad) * goodput

    parts = [
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        'role="img" aria-label="goodput vs steer p90 per cell">'
    ]
    # axes + gridlines at goodput quarters and four latency ticks
    for i in range(5):
        frac = i / 4
        y = sy(frac)
        x = sx(xmax * frac / 1.08) if i else pad
        parts.append(
            f'<line x1="{pad}" y1="{y:.1f}" x2="{width - pad}" y2="{y:.1f}" '
            'stroke="#dde" />'
            f'<text x="{pad - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="11" fill="#667">{frac:.0%}</text>'
        )
        tick = xmax * frac
        parts.append(
            f'<text x="{sx(tick):.1f}" y="{height - pad + 16}" '
            f'text-anchor="middle" font-size="11" fill="#667">{tick:.1f}</text>'
        )
    parts.append(
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#99a" />'
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" '
        'stroke="#99a" />'
        f'<text x="{width / 2:.0f}" y="{height - 8}" text-anchor="middle" '
        'font-size="12">steer p90 (ms)</text>'
        f'<text x="14" y="{height / 2:.0f}" text-anchor="middle" font-size="12" '
        f'transform="rotate(-90 14 {height / 2:.0f})">goodput</text>'
    )
    front = sorted(
        (c for c in plotted if c["cell_id"] in front_ids),
        key=lambda c: c["steer_p90_ms"],
    )
    if len(front) > 1:
        points = " ".join(
            f"{sx(c['steer_p90_ms']):.1f},{sy(c['goodput']):.1f}" for c in front
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="#2a7" '
            'stroke-width="1.5" stroke-dasharray="4 3" />'
        )
    for cell in plotted:
        on_front = cell["cell_id"] in front_ids
        parts.append(
            f'<circle cx="{sx(cell["steer_p90_ms"]):.1f}" '
            f'cy="{sy(cell["goodput"]):.1f}" r="{5 if on_front else 3.5}" '
            f'fill="{"#2a7" if on_front else "#46c"}" fill-opacity="0.75">'
            f"<title>{html.escape(cell['cell_id'])}\n"
            f"goodput {cell['goodput']:.0%}, "
            f"p90 {cell['steer_p90_ms']:.2f} ms</title></circle>"
        )
    parts.append("</svg>")
    skipped = len(cells) - len(plotted)
    if skipped:
        parts.append(
            f'<p class="note">{skipped} cell(s) without steering latencies '
            "are not plotted.</p>"
        )
    return "".join(parts)


def _totals_block(matrix: MatrixReport) -> str:
    t = matrix.totals
    d = t.to_dict()
    bad = ' bad' if t.violations else ""
    quarantined = (
        f'<span class="bad"><b>{len(matrix.quarantined)}</b> '
        "quarantined</span>" if matrix.quarantined else ""
    )
    return (
        f'<p class="totals"><span><b>{t.cells}/{matrix.expected_cells}</b> '
        "cells</span>"
        f"<span><b>{_fmt(t.goodput, pct=True)}</b> goodput "
        f"({t.completed}/{t.sessions} sessions)</span>"
        f"<span><b>{t.ops}</b> steering ops</span>"
        f"<span><b>{t.faults_applied}</b> faults</span>"
        f'<span class="{bad.strip()}"><b>{t.violations}</b> violations</span>'
        f"{quarantined}"
        f"<span><b>{_fmt(d['steer_p90_ms'])}</b> ms steer p90</span>"
        f"<span><b>{_fmt(d['wait_p90_s'])}</b> s wait p90</span></p>"
    )


def _quarantine_panel(matrix: MatrixReport) -> str:
    """Grid holes, named: quarantined cells and never-run cells."""
    if not matrix.quarantined and not matrix.missing:
        return ""
    rows = []
    for q in matrix.quarantined:
        rows.append(
            f'<tr class="quarantine">'
            f'<td class="name">{html.escape(q["cell_id"])}</td>'
            f"<td>quarantined</td>"
            f'<td class="name">{html.escape(q["reason"])}</td>'
            f"<td>{q['attempts']}</td></tr>"
        )
    for cell_id in matrix.missing:
        rows.append(
            f'<tr class="quarantine">'
            f'<td class="name">{html.escape(cell_id)}</td>'
            f'<td>never ran</td><td class="name">-</td><td>-</td></tr>'
        )
    return (
        f"<h2>grid holes ({matrix.holes})</h2>"
        '<p class="note">quarantined cells exhausted the supervisor\'s '
        "retry budget and are skipped on resume; every aggregate above "
        "excludes them.</p>"
        "<table><tr><th>cell</th><th>state</th><th>reason</th>"
        f'<th>attempts</th></tr>{"".join(rows)}</table>'
    )


def _marginal_tables(matrix: MatrixReport) -> str:
    parts = []
    columns = (
        ("cells", "cells"), ("sessions", "sess"), ("goodput", "goodput"),
        ("ops", "ops"), ("violations", "viol"),
        ("steer_p90_ms", "p90 ms"), ("wait_p90_s", "wait90 s"),
    )
    for axis in AXES:
        points = matrix.marginals[axis]
        if not points:
            continue
        rows = []
        for name, agg in points.items():
            d = agg.to_dict()
            cells = "".join(
                f"<td>{_fmt(d[key], pct=(key == 'goodput'))}</td>"
                for key, _ in columns
            )
            rows.append(f'<tr><td class="name">{html.escape(name)}</td>{cells}</tr>')
        header = "".join(f"<th>{label}</th>" for _, label in columns)
        parts.append(
            f"<h2>by {html.escape(axis)}</h2>"
            f'<table><tr><th>point</th>{header}</tr>{"".join(rows)}</table>'
        )
    return "".join(parts)


def _cells_table(matrix: MatrixReport, front_ids: set) -> str:
    rows = []
    for cell in matrix.cells:
        cls = ' class="pareto"' if cell["cell_id"] in front_ids else ""
        rows.append(
            f'<tr{cls}><td class="name">{html.escape(cell["cell_id"])}</td>'
            f"<td>{cell['sessions']}</td>"
            f"<td>{_fmt(cell['goodput'], pct=True)}</td>"
            f"<td>{cell['ops']}</td><td>{cell['violations']}</td>"
            f"<td>{_fmt(cell['steer_p90_ms'])}</td>"
            f"<td>{_fmt(cell['wait_p90_s'])}</td></tr>"
        )
    return (
        "<h2>cells</h2>"
        '<p class="note">green rows are on the goodput/latency pareto '
        "front.</p>"
        "<table><tr><th>cell</th><th>sess</th><th>goodput</th><th>ops</th>"
        f'<th>viol</th><th>p90 ms</th><th>wait90 s</th></tr>{"".join(rows)}'
        "</table>"
    )


def _drift_table(
    matrix: MatrixReport, baseline: MatrixReport, threshold: float
) -> str:
    drift = matrix.diff_marginals(baseline, threshold=threshold)
    rows = []
    for m in drift["missing"]:
        side = "this run" if m["only"] == "self" else "baseline"
        rows.append(
            f'<tr class="drift"><td class="name">{html.escape(m["axis"])}:'
            f'{html.escape(m["point"])}</td><td colspan="4">point only in '
            f"{side}</td></tr>"
        )
    for e in drift["entries"]:
        flagged = e["drift"] > threshold or math.isinf(e["drift"])
        cls = ' class="drift"' if flagged else ""
        rows.append(
            f'<tr{cls}><td class="name">{html.escape(e["axis"])}:'
            f'{html.escape(e["point"])}</td>'
            f'<td class="name">{html.escape(e["metric"])}</td>'
            f"<td>{_fmt(e['other'], pct=(e['metric'] == 'goodput'))}</td>"
            f"<td>{_fmt(e['self'], pct=(e['metric'] == 'goodput'))}</td>"
            f"<td>{_fmt(e['drift'])}</td></tr>"
        )
    return (
        f"<h2>drift vs. baseline (threshold {threshold:g})</h2>"
        f'<p class="note">{len(drift["exceeded"])} exceeded, '
        f'{len(drift["missing"])} missing of {len(drift["entries"])} '
        "comparisons; red rows exceed the threshold.</p>"
        "<table><tr><th>marginal</th><th>metric</th><th>baseline</th>"
        f'<th>this run</th><th>drift</th></tr>{"".join(rows)}</table>'
    )


def render_html(
    matrix: MatrixReport,
    baseline: Optional[MatrixReport] = None,
    drift_threshold: float = 0.05,
) -> str:
    """The dashboard page as one HTML string."""
    front_ids = {row["cell_id"] for row in matrix.pareto()}
    title = f"campaign {matrix.campaign!r} seed {matrix.seed}"
    sections = [
        f"<h1>{html.escape(title)}</h1>",
        _totals_block(matrix),
        _quarantine_panel(matrix),
        "<h2>goodput vs. steer p90</h2>",
        _scatter(matrix.cells, front_ids),
        _marginal_tables(matrix),
    ]
    if baseline is not None:
        sections.append(_drift_table(matrix, baseline, drift_threshold))
    sections.append(_cells_table(matrix, front_ids))
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(s for s in sections if s)
        + "\n</body></html>\n"
    )


def write_html(path, matrix, baseline=None, drift_threshold: float = 0.05):
    """Render and write the dashboard; returns the path."""
    page = render_html(matrix, baseline=baseline, drift_threshold=drift_threshold)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(page)
    return path


# -- the search dashboard -----------------------------------------------------
#
# ``python -m repro.campaign search report --store S --html out.html``
# renders the adaptive-search counterpart: objective vs. generation
# (best-of-generation and best-so-far), a proposed-vs-evaluated scatter
# of every assignment the strategy ever tried, and the top-cell table.
# Same rules as the grid page: pure function of the archive, no scripts,
# byte-identical across same-seed runs.


def _search_geometry(evaluations):
    """Shared y-scale for the search plots: real (non-quarantined,
    finite) scores only — :data:`WORST_SCORE` sentinels would flatten
    every real cliff into one pixel."""
    real = [ev for ev in evaluations if not ev.quarantined]
    scores = [ev.score for ev in real if math.isfinite(ev.score)]
    if not scores:
        return None
    lo, hi = min(scores), max(scores)
    if hi - lo < 1e-12:
        lo, hi = lo - 0.5, hi + 0.5
    return lo, hi


def _objective_curve(archive) -> str:
    """Inline SVG: best score per generation + cumulative best."""
    generations = archive.by_generation()
    span = _search_geometry(archive.evaluations)
    if span is None or not generations:
        return '<p class="note">no scored evaluations to plot.</p>'
    lo, hi = span
    width, height, pad = 640, 300, 45
    n = len(generations)

    def sx(gen: int) -> float:
        return pad + (width - 2 * pad) * (gen + 0.5) / n

    def sy(score: float) -> float:
        score = min(max(score, lo), hi)
        return height - pad - (height - 2 * pad) * (score - lo) / (hi - lo)

    parts = [
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        'role="img" aria-label="objective vs generation">'
    ]
    for i in range(5):
        frac = i / 4
        value = lo + (hi - lo) * frac
        y = sy(value)
        parts.append(
            f'<line x1="{pad}" y1="{y:.1f}" x2="{width - pad}" y2="{y:.1f}" '
            'stroke="#dde" />'
            f'<text x="{pad - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="11" fill="#667">{value:.3g}</text>'
        )
    for gen in range(n):
        parts.append(
            f'<text x="{sx(gen):.1f}" y="{height - pad + 16}" '
            f'text-anchor="middle" font-size="11" fill="#667">{gen}</text>'
        )
    parts.append(
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#99a" />'
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" '
        'stroke="#99a" />'
        f'<text x="{width / 2:.0f}" y="{height - 8}" text-anchor="middle" '
        'font-size="12">generation</text>'
        f'<text x="14" y="{height / 2:.0f}" text-anchor="middle" font-size="12" '
        f'transform="rotate(-90 14 {height / 2:.0f})">objective (lower = '
        "worse for the fabric)</text>"
    )
    gen_best, run_best = [], []
    best = math.inf
    for gen, evs in enumerate(generations):
        real = [ev.score for ev in evs
                if not ev.quarantined and math.isfinite(ev.score)]
        if not real:
            continue
        gbest = min(real)
        best = min(best, gbest)
        gen_best.append((gen, gbest))
        run_best.append((gen, best))
    for series, colour, dash in (
        (gen_best, "#46c", ""), (run_best, "#2a7", ' stroke-dasharray="4 3"')
    ):
        if len(series) > 1:
            points = " ".join(f"{sx(g):.1f},{sy(s):.1f}" for g, s in series)
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{colour}" '
                f'stroke-width="1.5"{dash} />'
            )
    for gen, score in gen_best:
        parts.append(
            f'<circle cx="{sx(gen):.1f}" cy="{sy(score):.1f}" r="4" '
            f'fill="#46c"><title>gen {gen}: best {score:.4g}</title></circle>'
        )
    parts.append("</svg>")
    parts.append(
        '<p class="note">solid: best of each generation; dashed: best so '
        "far.</p>"
    )
    return "".join(parts)


def _search_scatter(archive) -> str:
    """Inline SVG: every proposal, generation (x) vs score (y);
    quarantined proposals drawn as red crosses pinned to the top edge."""
    evaluations = archive.evaluations
    span = _search_geometry(evaluations)
    if span is None:
        return ""
    lo, hi = span
    n = archive.generations
    width, height, pad = 640, 300, 45

    def sx(gen: int, slot: int, slots: int) -> float:
        lane = (width - 2 * pad) / n
        return pad + lane * gen + lane * (slot + 1) / (slots + 1)

    def sy(score: float) -> float:
        score = min(max(score, lo), hi)
        return height - pad - (height - 2 * pad) * (score - lo) / (hi - lo)

    parts = [
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        'role="img" aria-label="every proposal by generation and score">'
    ]
    parts.append(
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#99a" />'
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" '
        'stroke="#99a" />'
        f'<text x="{width / 2:.0f}" y="{height - 8}" text-anchor="middle" '
        'font-size="12">generation</text>'
    )
    for gen in range(n):
        lane = (width - 2 * pad) / n
        x = pad + lane * (gen + 0.5)
        parts.append(
            f'<text x="{x:.1f}" y="{height - pad + 16}" text-anchor="middle" '
            f'font-size="11" fill="#667">{gen}</text>'
        )
        if gen:
            parts.append(
                f'<line x1="{pad + lane * gen:.1f}" y1="{pad}" '
                f'x2="{pad + lane * gen:.1f}" y2="{height - pad}" '
                'stroke="#eef" />'
            )
    by_gen = archive.by_generation()
    for gen, evs in enumerate(by_gen):
        for slot, ev in enumerate(evs):
            x = sx(gen, slot, len(evs))
            label = html.escape(ev.cell_id)
            if ev.quarantined:
                parts.append(
                    f'<g stroke="#b00020" stroke-width="1.5">'
                    f'<line x1="{x - 4:.1f}" y1="{pad - 4}" x2="{x + 4:.1f}" '
                    f'y2="{pad + 4}" />'
                    f'<line x1="{x - 4:.1f}" y1="{pad + 4}" x2="{x + 4:.1f}" '
                    f'y2="{pad - 4}" />'
                    f"<title>{label}\nquarantined</title></g>"
                )
            else:
                parts.append(
                    f'<circle cx="{x:.1f}" cy="{sy(ev.score):.1f}" r="3.5" '
                    'fill="#46c" fill-opacity="0.75">'
                    f"<title>{label}\nscore {ev.score:.4g}</title></circle>"
                )
    parts.append("</svg>")
    quarantined = sum(1 for ev in evaluations if ev.quarantined)
    if quarantined:
        parts.append(
            f'<p class="note">{quarantined} quarantined proposal(s) drawn '
            "as red crosses at the top edge (scored worst-case, excluded "
            "from the scale).</p>"
        )
    return "".join(parts)


def _search_table(archive, top: int = 12) -> str:
    rows = []
    for rank, ev in enumerate(archive.best(top), start=1):
        knobs = "; ".join(
            f"{path}={_fmt(value)}"
            for path, value in sorted(ev.assignment.items())
        )
        rows.append(
            f'<tr><td>{rank}</td><td class="name">{html.escape(ev.cell_id)}'
            f"</td><td>{ev.generation}</td><td>{_fmt(ev.score)}</td>"
            f'<td class="name">{html.escape(knobs)}</td></tr>'
        )
    if not rows:
        return ""
    return (
        "<h2>top cells</h2>"
        '<p class="note">lowest loss first; export them as frozen grid '
        "specs with <code>search export</code>.</p>"
        "<table><tr><th>#</th><th>cell</th><th>gen</th><th>score</th>"
        f'<th>assignment</th></tr>{"".join(rows)}</table>'
    )


def render_search_html(archive) -> str:
    """The search dashboard page as one HTML string."""
    spec = archive.spec
    quarantined = sum(1 for ev in archive.evaluations if ev.quarantined)
    title = f"search {spec.name!r} seed {spec.seed}"
    bests = archive.best(1)
    best_txt = _fmt(bests[0].score) if bests else "-"
    bad = ' class="bad"' if quarantined else ""
    totals = (
        f'<p class="totals">'
        f"<span><b>{archive.generations}/{spec.generations}</b> "
        "generations</span>"
        f"<span><b>{len(archive.evaluations)}</b> evaluations</span>"
        f"<span{bad}><b>{quarantined}</b> quarantined</span>"
        f"<span><b>{best_txt}</b> best {html.escape(spec.objective.goal)} "
        f"{html.escape(spec.objective.metric)}</span>"
        f"<span><b>{html.escape(spec.strategy.kind)}</b> strategy</span></p>"
    )
    sections = [
        f"<h1>{html.escape(title)}</h1>",
        totals,
        "<h2>objective vs. generation</h2>",
        _objective_curve(archive),
        "<h2>all proposals</h2>",
        _search_scatter(archive),
        _search_table(archive),
    ]
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(s for s in sections if s)
        + "\n</body></html>\n"
    )


def write_search_html(path, archive):
    """Render and write the search dashboard; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_search_html(archive))
    return path
