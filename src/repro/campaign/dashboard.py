"""Static HTML dashboard for a campaign's :class:`MatrixReport`.

``python -m repro.campaign report --store S --html out.html`` renders
one self-contained page — inline CSS, inline SVG, zero scripts, zero
external fetches — so the nightly workflow can publish it as an artifact
and anyone can open the file from disk:

* headline totals (cells, goodput, ops, faults, violations — plus a
  quarantine count whenever the supervisor gave up on any cell);
* a quarantine panel naming every grid hole (quarantined cells with
  their failure reason and attempt count, plus cells that never ran);
* a goodput vs. steer-p90 scatter of every cell with the pareto front
  drawn through the non-dominated ones;
* per-axis marginal tables (the same numbers ``render`` prints);
* when a baseline store is given, the marginal drift table from
  :meth:`MatrixReport.diff_marginals`, drifted rows highlighted.

Everything is a pure function of the deterministic ``MatrixReport``
content (plus the optional baseline), so two same-seed campaigns render
byte-identical dashboards — the artifact itself is diffable.
"""

from __future__ import annotations

import html
import math
from typing import Optional

from repro.campaign.matrix import MatrixReport
from repro.campaign.spec import AXES

_CSS = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', sans-serif;
       margin: 2em auto; max-width: 72em; color: #1a1a2e; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccd; padding: 0.25em 0.7em; text-align: right; }
th { background: #eef; } td.name { text-align: left; }
tr.pareto td { background: #e8f6e8; }
tr.drift td { background: #fde8e8; }
tr.quarantine td { background: #fdf3e0; }
.totals span { display: inline-block; margin-right: 1.6em; }
.totals b { font-size: 1.3em; }
.bad b { color: #b00020; }
svg { border: 1px solid #ccd; background: #fcfcff; }
.note { color: #667; font-size: 0.9em; }
"""


def _fmt(x, pct: bool = False) -> str:
    """Table cell text: '-' for NaN, percents for fractions."""
    if isinstance(x, float):
        if math.isnan(x):
            return "-"
        if pct:
            return f"{x:.0%}"
        return f"{x:g}" if x == int(x) else f"{x:.2f}"
    return str(x)


def _scatter(cells: list[dict], front_ids: set) -> str:
    """Inline SVG: steer p90 (x) vs goodput (y), pareto front joined."""
    width, height, pad = 640, 360, 45
    plotted = [c for c in cells if not math.isnan(c["steer_p90_ms"])]
    if not plotted:
        return '<p class="note">no cell produced steering latencies.</p>'
    xmax = max(c["steer_p90_ms"] for c in plotted) * 1.08 or 1.0

    def sx(ms: float) -> float:
        return pad + (width - 2 * pad) * ms / xmax

    def sy(goodput: float) -> float:
        return height - pad - (height - 2 * pad) * goodput

    parts = [
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        'role="img" aria-label="goodput vs steer p90 per cell">'
    ]
    # axes + gridlines at goodput quarters and four latency ticks
    for i in range(5):
        frac = i / 4
        y = sy(frac)
        x = sx(xmax * frac / 1.08) if i else pad
        parts.append(
            f'<line x1="{pad}" y1="{y:.1f}" x2="{width - pad}" y2="{y:.1f}" '
            'stroke="#dde" />'
            f'<text x="{pad - 6}" y="{y + 4:.1f}" text-anchor="end" '
            f'font-size="11" fill="#667">{frac:.0%}</text>'
        )
        tick = xmax * frac
        parts.append(
            f'<text x="{sx(tick):.1f}" y="{height - pad + 16}" '
            f'text-anchor="middle" font-size="11" fill="#667">{tick:.1f}</text>'
        )
    parts.append(
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#99a" />'
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" '
        'stroke="#99a" />'
        f'<text x="{width / 2:.0f}" y="{height - 8}" text-anchor="middle" '
        'font-size="12">steer p90 (ms)</text>'
        f'<text x="14" y="{height / 2:.0f}" text-anchor="middle" font-size="12" '
        f'transform="rotate(-90 14 {height / 2:.0f})">goodput</text>'
    )
    front = sorted(
        (c for c in plotted if c["cell_id"] in front_ids),
        key=lambda c: c["steer_p90_ms"],
    )
    if len(front) > 1:
        points = " ".join(
            f"{sx(c['steer_p90_ms']):.1f},{sy(c['goodput']):.1f}" for c in front
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="#2a7" '
            'stroke-width="1.5" stroke-dasharray="4 3" />'
        )
    for cell in plotted:
        on_front = cell["cell_id"] in front_ids
        parts.append(
            f'<circle cx="{sx(cell["steer_p90_ms"]):.1f}" '
            f'cy="{sy(cell["goodput"]):.1f}" r="{5 if on_front else 3.5}" '
            f'fill="{"#2a7" if on_front else "#46c"}" fill-opacity="0.75">'
            f"<title>{html.escape(cell['cell_id'])}\n"
            f"goodput {cell['goodput']:.0%}, "
            f"p90 {cell['steer_p90_ms']:.2f} ms</title></circle>"
        )
    parts.append("</svg>")
    skipped = len(cells) - len(plotted)
    if skipped:
        parts.append(
            f'<p class="note">{skipped} cell(s) without steering latencies '
            "are not plotted.</p>"
        )
    return "".join(parts)


def _totals_block(matrix: MatrixReport) -> str:
    t = matrix.totals
    d = t.to_dict()
    bad = ' bad' if t.violations else ""
    quarantined = (
        f'<span class="bad"><b>{len(matrix.quarantined)}</b> '
        "quarantined</span>" if matrix.quarantined else ""
    )
    return (
        f'<p class="totals"><span><b>{t.cells}/{matrix.expected_cells}</b> '
        "cells</span>"
        f"<span><b>{_fmt(t.goodput, pct=True)}</b> goodput "
        f"({t.completed}/{t.sessions} sessions)</span>"
        f"<span><b>{t.ops}</b> steering ops</span>"
        f"<span><b>{t.faults_applied}</b> faults</span>"
        f'<span class="{bad.strip()}"><b>{t.violations}</b> violations</span>'
        f"{quarantined}"
        f"<span><b>{_fmt(d['steer_p90_ms'])}</b> ms steer p90</span>"
        f"<span><b>{_fmt(d['wait_p90_s'])}</b> s wait p90</span></p>"
    )


def _quarantine_panel(matrix: MatrixReport) -> str:
    """Grid holes, named: quarantined cells and never-run cells."""
    if not matrix.quarantined and not matrix.missing:
        return ""
    rows = []
    for q in matrix.quarantined:
        rows.append(
            f'<tr class="quarantine">'
            f'<td class="name">{html.escape(q["cell_id"])}</td>'
            f"<td>quarantined</td>"
            f'<td class="name">{html.escape(q["reason"])}</td>'
            f"<td>{q['attempts']}</td></tr>"
        )
    for cell_id in matrix.missing:
        rows.append(
            f'<tr class="quarantine">'
            f'<td class="name">{html.escape(cell_id)}</td>'
            f'<td>never ran</td><td class="name">-</td><td>-</td></tr>'
        )
    return (
        f"<h2>grid holes ({matrix.holes})</h2>"
        '<p class="note">quarantined cells exhausted the supervisor\'s '
        "retry budget and are skipped on resume; every aggregate above "
        "excludes them.</p>"
        "<table><tr><th>cell</th><th>state</th><th>reason</th>"
        f'<th>attempts</th></tr>{"".join(rows)}</table>'
    )


def _marginal_tables(matrix: MatrixReport) -> str:
    parts = []
    columns = (
        ("cells", "cells"), ("sessions", "sess"), ("goodput", "goodput"),
        ("ops", "ops"), ("violations", "viol"),
        ("steer_p90_ms", "p90 ms"), ("wait_p90_s", "wait90 s"),
    )
    for axis in AXES:
        points = matrix.marginals[axis]
        if not points:
            continue
        rows = []
        for name, agg in points.items():
            d = agg.to_dict()
            cells = "".join(
                f"<td>{_fmt(d[key], pct=(key == 'goodput'))}</td>"
                for key, _ in columns
            )
            rows.append(f'<tr><td class="name">{html.escape(name)}</td>{cells}</tr>')
        header = "".join(f"<th>{label}</th>" for _, label in columns)
        parts.append(
            f"<h2>by {html.escape(axis)}</h2>"
            f'<table><tr><th>point</th>{header}</tr>{"".join(rows)}</table>'
        )
    return "".join(parts)


def _cells_table(matrix: MatrixReport, front_ids: set) -> str:
    rows = []
    for cell in matrix.cells:
        cls = ' class="pareto"' if cell["cell_id"] in front_ids else ""
        rows.append(
            f'<tr{cls}><td class="name">{html.escape(cell["cell_id"])}</td>'
            f"<td>{cell['sessions']}</td>"
            f"<td>{_fmt(cell['goodput'], pct=True)}</td>"
            f"<td>{cell['ops']}</td><td>{cell['violations']}</td>"
            f"<td>{_fmt(cell['steer_p90_ms'])}</td>"
            f"<td>{_fmt(cell['wait_p90_s'])}</td></tr>"
        )
    return (
        "<h2>cells</h2>"
        '<p class="note">green rows are on the goodput/latency pareto '
        "front.</p>"
        "<table><tr><th>cell</th><th>sess</th><th>goodput</th><th>ops</th>"
        f'<th>viol</th><th>p90 ms</th><th>wait90 s</th></tr>{"".join(rows)}'
        "</table>"
    )


def _drift_table(
    matrix: MatrixReport, baseline: MatrixReport, threshold: float
) -> str:
    drift = matrix.diff_marginals(baseline, threshold=threshold)
    rows = []
    for m in drift["missing"]:
        side = "this run" if m["only"] == "self" else "baseline"
        rows.append(
            f'<tr class="drift"><td class="name">{html.escape(m["axis"])}:'
            f'{html.escape(m["point"])}</td><td colspan="4">point only in '
            f"{side}</td></tr>"
        )
    for e in drift["entries"]:
        flagged = e["drift"] > threshold or math.isinf(e["drift"])
        cls = ' class="drift"' if flagged else ""
        rows.append(
            f'<tr{cls}><td class="name">{html.escape(e["axis"])}:'
            f'{html.escape(e["point"])}</td>'
            f'<td class="name">{html.escape(e["metric"])}</td>'
            f"<td>{_fmt(e['other'], pct=(e['metric'] == 'goodput'))}</td>"
            f"<td>{_fmt(e['self'], pct=(e['metric'] == 'goodput'))}</td>"
            f"<td>{_fmt(e['drift'])}</td></tr>"
        )
    return (
        f"<h2>drift vs. baseline (threshold {threshold:g})</h2>"
        f'<p class="note">{len(drift["exceeded"])} exceeded, '
        f'{len(drift["missing"])} missing of {len(drift["entries"])} '
        "comparisons; red rows exceed the threshold.</p>"
        "<table><tr><th>marginal</th><th>metric</th><th>baseline</th>"
        f'<th>this run</th><th>drift</th></tr>{"".join(rows)}</table>'
    )


def render_html(
    matrix: MatrixReport,
    baseline: Optional[MatrixReport] = None,
    drift_threshold: float = 0.05,
) -> str:
    """The dashboard page as one HTML string."""
    front_ids = {row["cell_id"] for row in matrix.pareto()}
    title = f"campaign {matrix.campaign!r} seed {matrix.seed}"
    sections = [
        f"<h1>{html.escape(title)}</h1>",
        _totals_block(matrix),
        _quarantine_panel(matrix),
        "<h2>goodput vs. steer p90</h2>",
        _scatter(matrix.cells, front_ids),
        _marginal_tables(matrix),
    ]
    if baseline is not None:
        sections.append(_drift_table(matrix, baseline, drift_threshold))
    sections.append(_cells_table(matrix, front_ids))
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_CSS}</style></head>\n<body>\n"
        + "\n".join(s for s in sections if s)
        + "\n</body></html>\n"
    )


def write_html(path, matrix, baseline=None, drift_threshold: float = 0.05):
    """Render and write the dashboard; returns the path."""
    page = render_html(matrix, baseline=baseline, drift_threshold=drift_threshold)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(page)
    return path
