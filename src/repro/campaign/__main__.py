"""Entry point: ``python -m repro.campaign ...``."""

import sys

from repro.campaign.cli import main

if __name__ == "__main__":
    sys.exit(main())
