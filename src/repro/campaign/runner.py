"""Cell execution: one fully-isolated fleet world per grid cell.

:func:`run_cell` is the unit of work — a **pure function** from a
:class:`~repro.campaign.spec.CellSpec` to a JSON-able record.  Each call
builds a fresh DES world (fabric, broker pool, admission controller,
chaos harness, arrival stream) from the cell's declarative coordinates
and salted sub-seeds, runs it to completion, and freezes the outcome.
Nothing escapes the call: two executions of the same cell — in the same
process, in different worker processes, on different days — produce the
same record byte for byte (wall-clock vitals live under ``perf`` and are
the one deliberate exception).

:class:`CampaignRunner` drives the incomplete cells either inline
(``workers=1``, the byte-identical reference execution) or through the
:class:`~repro.campaign.supervise.Supervisor` — individually supervised
worker processes that survive worker crashes, kill hung cells at a
wall-clock deadline, retry transient failures with seeded backoff, and
quarantine poison cells so resume never loops on them.  Either way every
completed record streams into the
:class:`~repro.campaign.store.ResultStore` the moment it lands, so an
interrupted campaign loses at most the cells in flight.  On restart the
settled (completed or quarantined) cells are skipped; per-cell seeding
makes the union identical to an uninterrupted run.

The module also hosts the **fault point** the supervisor's self-chaos
tests use (:data:`FAULT_ENV`): a JSON file naming cells to kill, hang or
fail mid-cell, with an attempt budget tracked through marker files so a
fault can be transient (fires on the first N attempts, then the retry
succeeds) or poison (fires forever).  Unset, the hook is a single
``os.environ.get`` per cell.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal as _signal
import time
from typing import Callable, Optional, Sequence

from repro.campaign.axes import (
    build_arrivals,
    build_policy,
    build_schedule,
    build_suite,
)
from repro.campaign.matrix import MatrixReport
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.campaign.store import ResultStore
from repro.campaign.supervise import Supervisor
from repro.chaos import ChaosHarness
from repro.errors import CampaignError
from repro.fleet import BrokerPool, FleetDriver
from repro.load import AdmissionController, ReactiveAutoscaler
from repro.perf.bench import bench_envelope

#: fabric/run knobs every cell inherits unless its campaign or axis
#: points override them (CampaignSpec.base / AxisPoint params["base"])
DEFAULT_BASE = {
    "n_sites": 3,
    "queue_slots": 2,
    "queue_limit": 12,
    "registry_shards": 4,
    "broker_port": 7100,
    "horizon": 10.0,
    #: drain budget after the last arrival; None = run to quiescence cap
    "grace": 60.0,
    #: hard virtual-time cap; None derives horizon + grace
    "until": None,
    "monitor_interval": 1.0,
}

#: environment variable naming the fault-injection spec (tests only):
#: ``{"cells": {cell_id: {"action": "kill"|"hang"|"raise",
#: "times": N, "seconds": S}}, "state_dir": dir}`` — ``times`` is how
#: many attempts the fault fires on (-1 = every attempt, i.e. poison);
#: fired attempts are claimed via O_EXCL marker files in ``state_dir``
#: so the count survives the SIGKILL it causes.
FAULT_ENV = "REPRO_CAMPAIGN_FAULTS"


def _maybe_inject_fault(cell: CellSpec) -> None:
    """Self-chaos fault point: crash/hang/fail this cell on purpose.

    Called mid-cell (world built, arrivals installed, run imminent) so
    an injected SIGKILL genuinely interrupts work in flight.  The
    marker file is claimed *before* the fault fires — a kill must still
    consume one of its ``times`` budget, or the retry would loop.
    """
    path = os.environ.get(FAULT_ENV)
    if not path:
        return
    doc = json.loads(pathlib.Path(path).read_text())
    entry = (doc.get("cells") or {}).get(cell.cell_id)
    if not entry:
        return
    times = int(entry.get("times", -1))
    if times == 0:
        return
    if times > 0:
        state_dir = pathlib.Path(
            doc.get("state_dir") or pathlib.Path(path).parent
        )
        # Markers key on the cell id, not the index: every cell a search
        # lowers carries index 0, so indices are not unique there.
        slug = re.sub(r"[^A-Za-z0-9._-]", "_", cell.cell_id)
        fired = 0
        while True:
            marker = state_dir / f"fault-{slug}-{fired}"
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                fired += 1
                if fired >= times:
                    return  # budget spent: this attempt runs clean
                continue
            os.close(fd)
            break
    action = entry["action"]
    if action == "raise":
        raise RuntimeError(f"injected fault in cell {cell.cell_id!r}")
    if action == "hang":
        time.sleep(float(entry.get("seconds", 3600.0)))
        return
    if action == "kill":
        os.kill(os.getpid(), _signal.SIGKILL)
    raise CampaignError(f"unknown fault action {action!r}")


def cell_config(cell: CellSpec) -> dict:
    """The cell's effective base configuration (defaults + overrides)."""
    config = dict(DEFAULT_BASE)
    unknown = set(cell.base) - set(config)
    if unknown:
        raise CampaignError(
            f"cell {cell.cell_id!r}: unknown base config keys "
            f"{sorted(unknown)} (allowed: {sorted(config)})"
        )
    config.update(cell.base)
    return config


def run_cell(cell: CellSpec) -> dict:
    """Execute one cell in a fresh world; returns its store record."""
    t0 = time.perf_counter()
    config = cell_config(cell)

    driver = FleetDriver(
        n_sites=int(config["n_sites"]),
        queue_slots=int(config["queue_slots"]),
        registry_shards=int(config["registry_shards"]),
    )
    pool = BrokerPool.build(
        driver.net,
        [site.svc_name for site in driver.sites],
        port=int(config["broker_port"]),
    )
    placement, autoscale_kwargs = build_policy(
        cell.policy, seed=cell.subseed("placement")
    )
    controller = AdmissionController(
        driver,
        placement=placement,
        queue_limit=int(config["queue_limit"]),
    )
    world = ChaosHarness(
        driver, controller, pool=pool,
        monitor_interval=float(config["monitor_interval"]),
    )

    suite, overrides = build_suite(cell.scenario)
    arrivals = build_arrivals(
        cell.arrival, suite, overrides,
        seed=cell.subseed("arrival"),
        horizon=float(config["horizon"]),
    )
    world.install(build_schedule(cell.faults, cell, arrivals.horizon))
    if autoscale_kwargs is not None:
        ReactiveAutoscaler(controller, **autoscale_kwargs)

    _maybe_inject_fault(cell)

    until = config["until"]
    report = controller.run(
        arrivals,
        until=None if until is None else float(until),
        grace=float(config["grace"]),
    )
    verdict = world.verdict(report)
    wall = time.perf_counter() - t0

    # perf vitals ride in the uniform bench envelope (wall, events,
    # events/sec, peak RSS) — deliberately the only nondeterministic
    # part of the record; MatrixReport never reads it.
    envelope = bench_envelope(
        cell.cell_id, None,
        wall_seconds=wall, events=driver.env.events_processed,
    )
    return {
        "kind": "cell",
        "cell_id": cell.cell_id,
        "index": cell.index,
        "seed": cell.seed,
        "coords": cell.coords,
        "report": report.to_dict(),
        "verdict": verdict,
        "mergeable": driver.telemetry.export_mergeable(),
        "perf": envelope["perf"],
    }


def _zero_stats() -> dict:
    return {
        "completed": 0, "worker_restarts": 0,
        "cell_retries": 0, "quarantined": 0,
    }


class CellExecutor:
    """Settle an explicit list of cells into the store.

    The execution engine shared by :class:`CampaignRunner` (which feeds
    it a grid's pending cells once) and
    :class:`~repro.campaign.search.SearchRunner` (which feeds it one
    generation of proposed cells at a time).  ``workers=1``
    (unsupervised) runs cells inline — no processes, no pickling — the
    byte-identical reference execution every other mode must match.
    ``workers>1``, a ``max_cell_seconds`` deadline, or
    ``supervise=True`` routes execution through the
    :class:`~repro.campaign.supervise.Supervisor`.  ``mp_context``
    defaults to ``"spawn"`` so worker state is a function of the
    CellSpec alone, never of what the parent happened to import or
    mutate first.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 1,
        mp_context: str = "spawn",
        max_cell_seconds: Optional[float] = None,
        max_cell_retries: int = 2,
        retry_backoff: float = 0.05,
        supervise: Optional[bool] = None,
        metrics=None,
    ) -> None:
        if workers < 1:
            raise CampaignError("campaign needs >= 1 worker")
        self.store = store
        self.workers = workers
        self.mp_context = mp_context
        self.max_cell_seconds = max_cell_seconds
        self.max_cell_retries = max_cell_retries
        self.retry_backoff = retry_backoff
        if supervise is None:
            supervise = workers > 1 or max_cell_seconds is not None
        self.supervise = supervise
        self.metrics = metrics
        #: the Supervisor of the last execute() call (None when inline)
        self.supervisor: Optional[Supervisor] = None

    def execute(
        self,
        todo: Sequence[CellSpec],
        progress: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Run every cell in ``todo``; returns the outcome counters.

        Raises :class:`KeyboardInterrupt` after a signal-initiated
        drain — by then every record that finished in time is flushed
        and the store is consistent, so the caller can simply resume.
        """
        stats = _zero_stats()
        if not todo:
            return stats
        if self.supervise:
            supervisor = Supervisor(
                self.store,
                workers=self.workers,
                mp_context=self.mp_context,
                max_cell_seconds=self.max_cell_seconds,
                max_cell_retries=self.max_cell_retries,
                retry_backoff=self.retry_backoff,
                metrics=self.metrics,
            )
            self.supervisor = supervisor
            stats = supervisor.run(todo, progress=progress)
            if supervisor.interrupted is not None:
                raise KeyboardInterrupt(supervisor.interrupted)
        else:
            for cell in todo:
                record = run_cell(cell)
                self.store.append(record)
                stats["completed"] += 1
                if progress is not None:
                    progress(record)
        return stats


class CampaignRunner:
    """Drive a campaign grid's unsettled cells to completion.

    A thin orchestration shell over :class:`CellExecutor`: compute the
    pending cells, execute them, aggregate the full grid.  All
    execution semantics (inline reference mode, supervision, retry,
    quarantine) live in the executor.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: int = 1,
        mp_context: str = "spawn",
        max_cell_seconds: Optional[float] = None,
        max_cell_retries: int = 2,
        retry_backoff: float = 0.05,
        supervise: Optional[bool] = None,
        metrics=None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.executor = CellExecutor(
            store,
            workers=workers,
            mp_context=mp_context,
            max_cell_seconds=max_cell_seconds,
            max_cell_retries=max_cell_retries,
            retry_backoff=retry_backoff,
            supervise=supervise,
            metrics=metrics,
        )
        #: supervision outcome counters of the last run() call
        self.stats = _zero_stats()
        #: cell ids attempted (not resumed-over) by the last run() call
        self.executed: list[str] = []

    @property
    def workers(self) -> int:
        return self.executor.workers

    @property
    def supervise(self) -> bool:
        return self.executor.supervise

    @property
    def supervisor(self) -> Optional[Supervisor]:
        """The Supervisor of the last run() call (None when inline)."""
        return self.executor.supervisor

    def pending(self) -> list[CellSpec]:
        """Cells neither completed nor quarantined yet."""
        settled = self.store.settled_ids()
        return [
            c for c in self.spec.iter_cells() if c.cell_id not in settled
        ]

    def run(
        self, progress: Optional[Callable[[dict], None]] = None
    ) -> MatrixReport:
        """Settle every incomplete cell, then aggregate the full grid.

        Raises :class:`KeyboardInterrupt` after a signal-initiated
        drain — by then every record that finished in time is flushed
        and the store is consistent, so the caller can simply resume.
        """
        self.store.ensure_header(self.spec)
        todo = self.pending()
        self.executed = [c.cell_id for c in todo]
        self.stats = self.executor.execute(todo, progress=progress)
        return MatrixReport.from_records(
            self.store.cell_records(),
            spec=self.spec,
            quarantined=self.store.quarantine_records(),
        )
