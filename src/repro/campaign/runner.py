"""Cell execution: one fully-isolated fleet world per grid cell.

:func:`run_cell` is the unit of work — a **pure function** from a
:class:`~repro.campaign.spec.CellSpec` to a JSON-able record.  Each call
builds a fresh DES world (fabric, broker pool, admission controller,
chaos harness, arrival stream) from the cell's declarative coordinates
and salted sub-seeds, runs it to completion, and freezes the outcome.
Nothing escapes the call: two executions of the same cell — in the same
process, in different worker processes, on different days — produce the
same record byte for byte (wall-clock vitals live under ``perf`` and are
the one deliberate exception).

:class:`CampaignRunner` fans cells out over a ``multiprocessing`` pool
and streams each completed record into the
:class:`~repro.campaign.store.ResultStore` the moment it lands, so an
interrupted campaign loses at most the cells in flight.  On restart the
completed cells are skipped; per-cell seeding makes the union identical
to an uninterrupted run.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Optional

from repro.campaign.axes import (
    build_arrivals,
    build_policy,
    build_schedule,
    build_suite,
)
from repro.campaign.matrix import MatrixReport
from repro.campaign.spec import CampaignSpec, CellSpec
from repro.campaign.store import ResultStore
from repro.chaos import ChaosHarness
from repro.errors import CampaignError
from repro.fleet import BrokerPool, FleetDriver
from repro.load import AdmissionController, ReactiveAutoscaler
from repro.perf.bench import bench_envelope

#: fabric/run knobs every cell inherits unless its campaign or axis
#: points override them (CampaignSpec.base / AxisPoint params["base"])
DEFAULT_BASE = {
    "n_sites": 3,
    "queue_slots": 2,
    "queue_limit": 12,
    "registry_shards": 4,
    "broker_port": 7100,
    "horizon": 10.0,
    #: drain budget after the last arrival; None = run to quiescence cap
    "grace": 60.0,
    #: hard virtual-time cap; None derives horizon + grace
    "until": None,
    "monitor_interval": 1.0,
}


def cell_config(cell: CellSpec) -> dict:
    """The cell's effective base configuration (defaults + overrides)."""
    config = dict(DEFAULT_BASE)
    unknown = set(cell.base) - set(config)
    if unknown:
        raise CampaignError(
            f"cell {cell.cell_id!r}: unknown base config keys "
            f"{sorted(unknown)} (allowed: {sorted(config)})"
        )
    config.update(cell.base)
    return config


def run_cell(cell: CellSpec) -> dict:
    """Execute one cell in a fresh world; returns its store record."""
    t0 = time.perf_counter()
    config = cell_config(cell)

    driver = FleetDriver(
        n_sites=int(config["n_sites"]),
        queue_slots=int(config["queue_slots"]),
        registry_shards=int(config["registry_shards"]),
    )
    pool = BrokerPool.build(
        driver.net,
        [site.svc_name for site in driver.sites],
        port=int(config["broker_port"]),
    )
    placement, autoscale_kwargs = build_policy(
        cell.policy, seed=cell.subseed("placement")
    )
    controller = AdmissionController(
        driver,
        placement=placement,
        queue_limit=int(config["queue_limit"]),
    )
    world = ChaosHarness(
        driver, controller, pool=pool,
        monitor_interval=float(config["monitor_interval"]),
    )

    suite, overrides = build_suite(cell.scenario)
    arrivals = build_arrivals(
        cell.arrival, suite, overrides,
        seed=cell.subseed("arrival"),
        horizon=float(config["horizon"]),
    )
    world.install(build_schedule(cell.faults, cell, arrivals.horizon))
    if autoscale_kwargs is not None:
        ReactiveAutoscaler(controller, **autoscale_kwargs)

    until = config["until"]
    report = controller.run(
        arrivals,
        until=None if until is None else float(until),
        grace=float(config["grace"]),
    )
    verdict = world.verdict(report)
    wall = time.perf_counter() - t0

    # perf vitals ride in the uniform bench envelope (wall, events,
    # events/sec, peak RSS) — deliberately the only nondeterministic
    # part of the record; MatrixReport never reads it.
    envelope = bench_envelope(
        cell.cell_id, None,
        wall_seconds=wall, events=driver.env.events_processed,
    )
    return {
        "kind": "cell",
        "cell_id": cell.cell_id,
        "index": cell.index,
        "seed": cell.seed,
        "coords": cell.coords,
        "report": report.to_dict(),
        "verdict": verdict,
        "mergeable": driver.telemetry.export_mergeable(),
        "perf": envelope["perf"],
    }


class CampaignRunner:
    """Drive a campaign's incomplete cells through a worker pool.

    ``workers=1`` runs cells inline (no pool, no pickling) — the
    reference execution the multi-process run must match byte for byte.
    ``mp_context`` defaults to ``"spawn"`` so worker state is a function
    of the CellSpec alone, never of what the parent happened to import
    or mutate first.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: int = 1,
        mp_context: str = "spawn",
    ) -> None:
        if workers < 1:
            raise CampaignError("campaign needs >= 1 worker")
        self.spec = spec
        self.store = store
        self.workers = workers
        self.mp_context = mp_context
        #: cell ids executed (not resumed-over) by the last run() call
        self.executed: list[str] = []

    def pending(self) -> list[CellSpec]:
        done = self.store.completed_ids()
        return [c for c in self.spec.iter_cells() if c.cell_id not in done]

    def run(
        self, progress: Optional[Callable[[dict], None]] = None
    ) -> MatrixReport:
        """Execute every incomplete cell, then aggregate the full grid."""
        self.store.ensure_header(self.spec)
        todo = self.pending()
        self.executed = [c.cell_id for c in todo]
        if todo:
            if self.workers == 1:
                for cell in todo:
                    record = run_cell(cell)
                    self.store.append(record)
                    if progress is not None:
                        progress(record)
            else:
                ctx = multiprocessing.get_context(self.mp_context)
                with ctx.Pool(processes=self.workers) as pool:
                    # Stream: every completion is persisted immediately,
                    # in completion order — the store is the checkpoint,
                    # MatrixReport re-sorts by cell id.
                    for record in pool.imap_unordered(run_cell, todo):
                        self.store.append(record)
                        if progress is not None:
                            progress(record)
        return MatrixReport.from_records(
            self.store.cell_records(), spec=self.spec
        )
