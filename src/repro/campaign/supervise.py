"""Supervised campaign execution: crash-, hang- and poison-tolerant.

The bare ``multiprocessing.Pool`` the runner used through PR 8 had no
failure model of its own: one worker SIGKILLed mid-cell (OOM killer,
segfault in a native extension, an operator's ``kill -9``) aborted the
whole campaign with a ``BrokenProcessPool``-style hang, a cell that
never terminated stalled the grid forever, and a cell that determinist-
ically crashed its worker was re-attempted on every resume.  This
module replaces the pool with **individually supervised workers**:

* each worker is a spawn-context process joined to the parent by its
  own duplex pipe, so a dying worker can corrupt at most its own
  channel — death is detected via the process *sentinel* (no polling
  race) and the worker is respawned;
* every dispatched cell carries a wall-clock **deadline**
  (``max_cell_seconds``); a cell still running past it has its worker
  SIGKILLed and respawned — a hung cell costs one timeout, not the
  nightly;
* a failed attempt (worker crash, timeout kill, or an exception raised
  inside :func:`~repro.campaign.runner.run_cell`) is **retried** with
  bounded, seeded exponential backoff (`derive_seed(cell.seed,
  "retry-backoff", attempt)` — deterministic per cell and attempt, so
  two supervisors racing the same flaky fabric stay de-synchronised
  the same way every run);
* a cell that is still failing after ``max_cell_retries`` retries is
  **quarantined**: a first-class ``"kind": "quarantine"`` record (the
  full failure history rides along) lands in the
  :class:`~repro.campaign.store.ResultStore`, resume skips the cell,
  and :class:`~repro.campaign.matrix.MatrixReport` reports the hole
  explicitly instead of silently aggregating a partial grid.

The supervisor never changes *what* a cell computes — `run_cell` stays
a pure function of the CellSpec — only *whether the campaign survives
computing it*: an unfaulted supervised run produces byte-identical
records and MatrixReport to the serial inline reference.

Graceful drain: SIGTERM/SIGINT (or :meth:`Supervisor.request_drain`)
stops dispatching, harvests every completed record already sitting in
a worker pipe, shuts the workers down, and leaves the store consistent
— the interrupted campaign resumes with ``python -m repro.campaign
resume`` and no manual cleanup.
"""

from __future__ import annotations

import random
import signal
import threading
import time
import traceback
from collections import deque
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from typing import Callable, Optional

from repro.campaign.spec import CellSpec, derive_seed
from repro.campaign.store import ResultStore
from repro.errors import CampaignError

#: attempt-failure reasons, in the order the nightly cares about them
FAILURE_REASONS = ("crash", "timeout", "error")


def _worker_main(conn) -> None:
    """Worker process: receive CellSpecs, send back outcome tuples.

    Lives until it receives ``None`` (graceful shutdown), its pipe hits
    EOF (parent died), or the supervisor kills it.  Any exception a cell
    raises is frozen into an ``("error", ...)`` message rather than
    killing the worker — the supervisor owns the retry policy.  SIGINT
    is ignored: a terminal Ctrl-C must drain through the *parent's*
    handler, not kill workers mid-send.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    from repro.campaign.runner import run_cell

    while True:
        try:
            cell = conn.recv()
        except (EOFError, OSError):
            return
        if cell is None:
            conn.close()
            return
        try:
            record = run_cell(cell)
            payload = ("ok", record)
        except BaseException as exc:  # noqa: BLE001 — frozen, not fatal
            payload = ("error", {
                "error": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            })
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            return


class _Task:
    """One cell's journey through the supervisor."""

    __slots__ = ("cell", "attempts", "failures", "not_before")

    def __init__(self, cell: CellSpec) -> None:
        self.cell = cell
        #: failed attempts so far (a success ends the journey)
        self.attempts = 0
        #: one dict per failure: {"attempt", "reason", "detail"}
        self.failures: list[dict] = []
        #: monotonic instant before which this task must not redispatch
        self.not_before = 0.0

    def quarantine_record(self) -> dict:
        cell = self.cell
        return {
            "kind": "quarantine",
            "cell_id": cell.cell_id,
            "index": cell.index,
            "seed": cell.seed,
            "coords": cell.coords,
            "reason": self.failures[-1]["reason"],
            "attempts": self.attempts,
            "failures": list(self.failures),
        }


class _Slot:
    """One supervised worker: process + private pipe + current task."""

    __slots__ = ("proc", "conn", "task", "deadline")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None


class Supervisor:
    """Drive cells through individually supervised worker processes.

    Parameters
    ----------
    store:
        the campaign's :class:`ResultStore`; every completed cell and
        every quarantine verdict is appended (atomically) the moment it
        settles.
    workers:
        supervised worker processes (>= 1).
    max_cell_seconds:
        per-cell wall-clock budget; ``None`` disables the timeout.
    max_cell_retries:
        retries granted after the first failed attempt — a cell is
        quarantined on failure ``max_cell_retries + 1``.
    retry_backoff / backoff_cap:
        seeded exponential backoff between attempts:
        ``min(cap, backoff * 2**(attempt-1) * jitter)`` with jitter
        drawn from ``derive_seed(cell.seed, "retry-backoff", attempt)``.
    metrics:
        optional :class:`repro.obs.MetricsRegistry`; when given, the
        supervisor exports ``campaign_worker_restarts_total``,
        ``campaign_cell_retries_total``,
        ``campaign_cells_quarantined_total`` and the
        ``campaign_cells_inflight`` gauge.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        mp_context: str = "spawn",
        max_cell_seconds: Optional[float] = None,
        max_cell_retries: int = 2,
        retry_backoff: float = 0.05,
        backoff_cap: float = 5.0,
        metrics=None,
        poll_interval: float = 0.05,
    ) -> None:
        if workers < 1:
            raise CampaignError("supervisor needs >= 1 worker")
        if max_cell_seconds is not None and max_cell_seconds <= 0:
            raise CampaignError("max_cell_seconds must be > 0 (or None)")
        if max_cell_retries < 0:
            raise CampaignError("max_cell_retries must be >= 0")
        self.store = store
        self.workers = workers
        self.max_cell_seconds = max_cell_seconds
        self.max_cell_retries = max_cell_retries
        self.retry_backoff = retry_backoff
        self.backoff_cap = backoff_cap
        self.poll_interval = poll_interval
        self._ctx = get_context(mp_context)
        self._slots: list[_Slot] = []
        self._progress: Optional[Callable[[dict], None]] = None
        #: drain reason once set ("SIGTERM", "SIGINT", "request"), else None
        self.draining: Optional[str] = None
        #: set when the drain came from a signal (CLI exits 130)
        self.interrupted: Optional[str] = None
        self.stats = {
            "completed": 0,
            "worker_restarts": 0,
            "cell_retries": 0,
            "quarantined": 0,
        }
        self._metrics = metrics
        if metrics is not None:
            self._m_restarts = metrics.counter(
                "campaign_worker_restarts_total",
                "supervised workers respawned after a crash or timeout kill",
            )
            self._m_retries = metrics.counter(
                "campaign_cell_retries_total",
                "cell attempts retried after a transient failure",
            )
            self._m_quarantined = metrics.counter(
                "campaign_cells_quarantined_total",
                "cells quarantined after exhausting the retry budget",
            )
            self._m_inflight = metrics.gauge(
                "campaign_cells_inflight",
                "cells currently dispatched to supervised workers",
            )

    # -- public entry points -------------------------------------------------

    def request_drain(self, reason: str = "request") -> None:
        """Stop dispatching; flush completed work; shut workers down.

        Safe to call from a progress callback or another thread — the
        supervision loop notices at its next tick.
        """
        if self.draining is None:
            self.draining = reason

    def run(
        self,
        cells: list[CellSpec],
        progress: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Supervise every cell to a settled state; returns ``stats``.

        On return every cell in ``cells`` is either completed or
        quarantined in the store — unless a drain cut the run short, in
        which case the store holds every record that finished in time
        and the rest simply rerun on resume.
        """
        self._progress = progress
        pending = deque(_Task(cell) for cell in cells)
        if not pending:
            return dict(self.stats)
        handlers_installed = self._install_signal_handlers()
        try:
            self._slots = [
                self._spawn() for _ in range(min(self.workers, len(pending)))
            ]
            self._loop(pending)
            if self.draining is not None:
                self._flush_inflight()
        finally:
            self._shutdown()
            if handlers_installed:
                self._restore_signal_handlers()
        return dict(self.stats)

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return _Slot(proc, parent_conn)

    def _respawn(self, slot: _Slot) -> None:
        """Replace a dead/killed worker with a fresh one, in place."""
        try:
            slot.conn.close()
        except OSError:
            pass
        slot.proc.join(timeout=5.0)
        fresh = self._spawn()
        slot.proc, slot.conn = fresh.proc, fresh.conn
        slot.task, slot.deadline = None, None
        self.stats["worker_restarts"] += 1
        if self._metrics is not None:
            self._m_restarts.inc()

    def _shutdown(self) -> None:
        """Stop every worker: politely when idle, firmly otherwise."""
        for slot in self._slots:
            if slot.task is None and slot.proc.is_alive():
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        for slot in self._slots:
            slot.proc.join(timeout=1.0)
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=5.0)
            try:
                slot.conn.close()
            except OSError:
                pass
        self._slots = []

    # -- signals -------------------------------------------------------------

    def _install_signal_handlers(self) -> bool:
        if threading.current_thread() is not threading.main_thread():
            return False
        self._old_handlers = {}
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._old_handlers[sig] = signal.signal(
                    sig, self._on_signal
                )
            except (ValueError, OSError):  # pragma: no cover
                pass
        return True

    def _restore_signal_handlers(self) -> None:
        for sig, old in getattr(self, "_old_handlers", {}).items():
            try:
                signal.signal(sig, old)
            except (ValueError, OSError):  # pragma: no cover
                pass

    def _on_signal(self, signum, frame) -> None:
        name = signal.Signals(signum).name
        self.interrupted = name
        self.request_drain(name)

    # -- the supervision loop ------------------------------------------------

    def _loop(self, pending: deque) -> None:
        while (pending or self._busy()) and self.draining is None:
            now = time.monotonic()
            self._dispatch(pending, now)
            timeout = self._wait_timeout(pending, now)
            waitables = []
            for slot in self._busy():
                waitables.append(slot.conn)
                waitables.append(slot.proc.sentinel)
            if waitables:
                _conn_wait(waitables, timeout)
            elif pending:
                # Everything is backing off; sleep to the nearest
                # not_before (bounded by the poll interval).
                time.sleep(timeout)
            self._harvest(pending)

    def _busy(self) -> list[_Slot]:
        return [s for s in self._slots if s.task is not None]

    def _dispatch(self, pending: deque, now: float) -> None:
        idle = [s for s in self._slots if s.task is None]
        for slot in idle:
            task = self._next_ready(pending, now)
            if task is None:
                return
            slot.task = task
            slot.deadline = (
                None if self.max_cell_seconds is None
                else now + self.max_cell_seconds
            )
            try:
                slot.conn.send(task.cell)
            except (BrokenPipeError, OSError):
                # Worker died between cells; respawn and retry the
                # dispatch on the next tick (no attempt was consumed —
                # the cell never started).
                pending.appendleft(task)
                self._respawn(slot)
                continue
            if self._metrics is not None:
                self._m_inflight.inc()

    @staticmethod
    def _next_ready(pending: deque, now: float) -> Optional[_Task]:
        """Pop the first task whose backoff window has elapsed."""
        for _ in range(len(pending)):
            task = pending.popleft()
            if task.not_before <= now:
                return task
            pending.append(task)
        return None

    def _wait_timeout(self, pending: deque, now: float) -> float:
        """How long the loop may block: the nearest deadline, backoff
        expiry, or the poll interval — whichever comes first."""
        horizon = self.poll_interval
        for slot in self._busy():
            if slot.deadline is not None:
                horizon = min(horizon, slot.deadline - now)
        for task in pending:
            if task.not_before > now:
                horizon = min(horizon, task.not_before - now)
        return max(0.0, horizon)

    def _harvest(self, pending: deque) -> None:
        now = time.monotonic()
        for slot in self._busy():
            if slot.conn.poll():
                try:
                    status, payload = slot.conn.recv()
                except Exception:
                    # A torn message: the worker died mid-send.  Its
                    # pipe is poisoned; treat as a crash.
                    self._on_crash(slot, pending)
                    continue
                self._on_message(slot, status, payload, pending)
            elif not slot.proc.is_alive():
                self._on_crash(slot, pending)
            elif slot.deadline is not None and now >= slot.deadline:
                self._on_timeout(slot, pending)

    # -- outcome handling ----------------------------------------------------

    def _settle_slot(self, slot: _Slot) -> _Task:
        task = slot.task
        slot.task, slot.deadline = None, None
        if self._metrics is not None:
            self._m_inflight.dec()
        return task

    def _on_message(
        self, slot: _Slot, status: str, payload, pending: deque
    ) -> None:
        task = self._settle_slot(slot)
        if status == "ok":
            self.store.append(payload)
            self.stats["completed"] += 1
            if self._progress is not None:
                self._progress(payload)
        else:
            self._fail(task, "error", payload, pending)

    def _on_crash(self, slot: _Slot, pending: deque) -> None:
        task = self._settle_slot(slot)
        exitcode = slot.proc.exitcode
        self._respawn(slot)
        self._fail(task, "crash", {"exitcode": exitcode}, pending)

    def _on_timeout(self, slot: _Slot, pending: deque) -> None:
        task = self._settle_slot(slot)
        slot.proc.kill()
        self._respawn(slot)
        self._fail(
            task, "timeout",
            {"max_cell_seconds": self.max_cell_seconds}, pending,
        )

    def _fail(
        self, task: _Task, reason: str, detail: dict, pending: deque
    ) -> None:
        task.attempts += 1
        task.failures.append(
            {"attempt": task.attempts, "reason": reason, "detail": detail}
        )
        if task.attempts > self.max_cell_retries:
            record = task.quarantine_record()
            self.store.append_quarantine(record)
            self.stats["quarantined"] += 1
            if self._metrics is not None:
                self._m_quarantined.inc()
            if self._progress is not None:
                self._progress(record)
        else:
            self.stats["cell_retries"] += 1
            if self._metrics is not None:
                self._m_retries.inc()
            task.not_before = time.monotonic() + self._backoff(task)
            pending.append(task)

    def _backoff(self, task: _Task) -> float:
        """Bounded seeded exponential backoff before the next attempt."""
        rng = random.Random(
            derive_seed(task.cell.seed, "retry-backoff", task.attempts)
        )
        base = self.retry_backoff * (2 ** (task.attempts - 1))
        return min(self.backoff_cap, base * rng.uniform(1.0, 1.5))

    # -- drain ---------------------------------------------------------------

    def _flush_inflight(self, grace: float = 0.25) -> None:
        """Harvest results already sitting in worker pipes before exit.

        The drain contract: every record a worker *finished* must reach
        the store; cells still running are abandoned (they rerun on
        resume).  A short grace window lets sends racing the drain land.
        """
        deadline = time.monotonic() + grace
        while self._busy() and time.monotonic() < deadline:
            conns = [s.conn for s in self._busy()]
            _conn_wait(conns, max(0.0, deadline - time.monotonic()))
            for slot in self._busy():
                if not slot.conn.poll():
                    continue
                try:
                    status, payload = slot.conn.recv()
                except Exception:
                    self._settle_slot(slot)
                    continue
                if status == "ok":
                    self._settle_slot(slot)
                    self.store.append(payload)
                    self.stats["completed"] += 1
                    if self._progress is not None:
                        self._progress(payload)
                else:
                    # A failure mid-drain is not retried (we are
                    # exiting); the cell stays unsettled and reruns.
                    self._settle_slot(slot)
