"""Axis-point builders: from declarative params to live subsystems.

Each builder turns one :class:`~repro.campaign.spec.AxisPoint` into the
object the cell runner wires up, drawing any randomness from the cell's
salted sub-seed so the four axes consume **independent** seeded streams:

* ``scenario`` -> a base suite of :class:`~repro.fleet.spec.ScenarioSpec`
  prototypes plus per-session overrides (duration, cadence ...);
* ``arrival``  -> an :class:`~repro.load.arrivals.ArrivalProcess` minting
  sessions from that suite over virtual time;
* ``faults``   -> a :class:`~repro.chaos.faults.FaultSchedule`, either an
  explicit fault list (kind name + kwargs) or a seeded random draw over
  the cell's declared fabric populations;
* ``policy``   -> a placement policy instance plus optional
  :class:`~repro.load.autoscale.ReactiveAutoscaler` parameters.
"""

from __future__ import annotations

from typing import Optional

from repro.campaign.spec import AxisPoint, CellSpec
from repro.chaos.faults import FAULT_KINDS, FaultSchedule
from repro.errors import CampaignError, LiveError
from repro.fleet.spec import ScenarioSpec, paper_suite, sweep_scenarios
from repro.load.arrivals import (
    ArrivalProcess,
    DiurnalArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.load.placement import PlacementPolicy, make_policy

#: fault kind name ("site-outage" ...) -> fault dataclass
FAULTS_BY_KIND = {kind.kind: kind for kind in FAULT_KINDS}

#: params every scenario point may override on its ScenarioSpec prototypes
_SPEC_OVERRIDES = (
    "duration", "cadence", "participants", "compute_time",
    "sample_interval",
)


def _unexpected(point: AxisPoint, allowed: set) -> None:
    extra = set(point.params) - allowed - {"base"}
    if extra:
        raise CampaignError(
            f"axis point {point.name!r}: unexpected params {sorted(extra)} "
            f"(allowed: {sorted(allowed)})"
        )


# -- scenario ----------------------------------------------------------------


def build_suite(point: AxisPoint) -> tuple[list[ScenarioSpec], dict]:
    """Returns ``(suite, overrides)``: the prototype suite the arrival
    process cycles, plus per-session ScenarioSpec overrides to mint with.

    params: ``suite`` ("paper" | "sweep"), ``sims``/``profiles`` (sweep
    subsets), plus any of the per-session overrides (``duration``,
    ``cadence``, ``participants``, ``compute_time``, ``sample_interval``).
    """
    _unexpected(point, {"suite", "sims", "profiles", *_SPEC_OVERRIDES})
    params = point.params
    overrides = {k: params[k] for k in _SPEC_OVERRIDES if k in params}
    kind = params.get("suite", "paper")
    if kind == "paper":
        suite = paper_suite()
    elif kind == "sweep":
        kwargs = {}
        if "sims" in params:
            kwargs["sims"] = tuple(params["sims"])
        if "profiles" in params:
            kwargs["profiles"] = tuple(params["profiles"])
        suite = sweep_scenarios(**kwargs)
    else:
        raise CampaignError(
            f"scenario point {point.name!r}: unknown suite kind {kind!r} "
            "(expected 'paper' or 'sweep')"
        )
    return suite, overrides


# -- arrival -----------------------------------------------------------------


def build_arrivals(
    point: AxisPoint,
    suite: list[ScenarioSpec],
    overrides: dict,
    seed: int,
    horizon: float,
) -> ArrivalProcess:
    """params: ``kind`` ("poisson" | "diurnal" | "flash" | "trace") plus
    that process's rate parameters; ``horizon`` may be overridden per
    point, otherwise the cell's base horizon applies.  The process seed
    is the cell's salted "arrival" sub-seed — never declared by hand.
    """
    params = dict(point.params)
    params.pop("base", None)
    kind = params.pop("kind", "poisson")
    horizon = float(params.pop("horizon", horizon))
    common = {"suite": suite, **overrides}
    if kind == "poisson":
        return PoissonArrivals(
            rate=float(params.pop("rate", 1.0)),
            horizon=horizon, seed=seed, **common, **params,
        )
    if kind == "diurnal":
        return DiurnalArrivals(
            base_rate=float(params.pop("base_rate", 0.5)),
            amplitude=float(params.pop("amplitude", 1.5)),
            period=float(params.pop("period", horizon)),
            horizon=horizon, seed=seed, **common, **params,
        )
    if kind == "flash":
        return FlashCrowdArrivals(
            base_rate=float(params.pop("base_rate", 0.5)),
            burst_rate=float(params.pop("burst_rate", 4.0)),
            burst_at=float(params.pop("burst_at", horizon / 3.0)),
            burst_duration=float(params.pop("burst_duration", horizon / 6.0)),
            horizon=horizon, seed=seed, **common, **params,
        )
    if kind == "trace":
        try:
            instants = params.pop("instants")
        except KeyError:
            raise CampaignError(
                f"arrival point {point.name!r}: trace needs 'instants'"
            ) from None
        return TraceArrivals(instants, horizon=horizon, **common, **params)
    if kind == "trace-file":
        # A live-captured trace replays the exact recorded sessions; the
        # import is deferred because repro.live sits above this layer.
        from repro.live.trace import load_trace

        try:
            path = params.pop("path")
        except KeyError:
            raise CampaignError(
                f"arrival point {point.name!r}: trace-file needs 'path'"
            ) from None
        if params:
            raise CampaignError(
                f"arrival point {point.name!r}: unexpected trace-file "
                f"params {sorted(params)}"
            )
        try:
            return load_trace(path).arrival_process()
        except LiveError as exc:
            raise CampaignError(
                f"arrival point {point.name!r}: {exc}"
            ) from None
    raise CampaignError(
        f"arrival point {point.name!r}: unknown kind {kind!r} "
        "(expected poisson, diurnal, flash, trace or trace-file)"
    )


# -- faults ------------------------------------------------------------------


def build_schedule(point: AxisPoint, cell: CellSpec,
                   horizon: float) -> FaultSchedule:
    """params: either ``faults`` (a list of ``{"kind": ..., **kwargs}``
    declarations) or ``random`` (kwargs for :meth:`FaultSchedule.random`,
    populations defaulted from the cell's fabric base config); an empty
    point is the no-fault baseline.
    """
    _unexpected(point, {"faults", "random"})
    params = point.params
    if "faults" in params and "random" in params:
        raise CampaignError(
            f"fault point {point.name!r}: declare 'faults' or 'random', "
            "not both"
        )
    if "random" in params:
        kwargs = dict(params["random"])
        n_sites = int(cell.base.get("n_sites", 3))
        kwargs.setdefault("sites", n_sites)
        kwargs.setdefault("shards", int(cell.base.get("registry_shards", 4)))
        kwargs.setdefault("brokers", n_sites)
        # Network-fault populations, from the FleetDriver fabric's
        # naming scheme: every site i is an hpc-i gateway host linked
        # to its svc-i service host — so the random pool can draw all
        # eight fault kinds (link degrade, partition and firewall
        # lockdown included), not just the site/broker/shard ones.
        kwargs.setdefault("hosts", [f"hpc-{i}" for i in range(n_sites)])
        kwargs.setdefault(
            "host_pairs",
            [(f"hpc-{i}", f"svc-{i}") for i in range(n_sites)],
        )
        kwargs.setdefault("horizon", horizon)
        kwargs.setdefault("n_faults", 3)
        return FaultSchedule.random(seed=cell.subseed("faults"), **kwargs)
    faults = []
    for decl in params.get("faults", ()):
        decl = dict(decl)
        kind = decl.pop("kind", None)
        cls = FAULTS_BY_KIND.get(kind)
        if cls is None:
            raise CampaignError(
                f"fault point {point.name!r}: unknown fault kind {kind!r} "
                f"(expected one of {sorted(FAULTS_BY_KIND)})"
            )
        faults.append(cls(**decl))
    return FaultSchedule(faults)


# -- policy ------------------------------------------------------------------


def build_policy(
    point: AxisPoint, seed: int
) -> tuple[PlacementPolicy, Optional[dict]]:
    """params: ``placement`` (a :data:`repro.load.placement.POLICIES`
    name) and optionally ``autoscale`` (ReactiveAutoscaler kwargs, or
    ``true`` for defaults).  Returns ``(policy, autoscale_kwargs|None)``.
    """
    _unexpected(point, {"placement", "autoscale"})
    params = point.params
    policy = make_policy(params.get("placement", "least-loaded"), seed=seed)
    autoscale = params.get("autoscale")
    if autoscale in (None, False):
        return policy, None
    return policy, dict(autoscale) if isinstance(autoscale, dict) else {}
