"""Named campaigns: the grids CI and the nightly sweep actually run.

* ``smoke`` — 12 cells (2 scenario x 2 arrival x 3 fault x 1 policy),
  sized so a CI job finishes the whole grid in well under a minute while
  still crossing every subsystem: both workload suites, two traffic
  shapes, a no-fault baseline against a compound outage and a seeded
  random schedule.
* ``nightly`` — 36 cells (2 x 3 x 3 x 2) at a longer horizon with
  autoscaling in the policy axis; the scheduled workflow fails on any
  invariant violation anywhere in the grid.

Presets are functions so every call returns a fresh, independently
mutable :class:`CampaignSpec` (callers may override the seed).
"""

from __future__ import annotations

from repro.campaign.spec import AxisPoint, CampaignSpec
from repro.errors import CampaignError

_SESSION_SHAPE = {"duration": 2.0, "cadence": 0.5, "participants": 1}

_COMPOUND_FAULTS = [
    {"kind": "site-outage", "at": 4.0, "site": 0, "duration": 20.0},
    {"kind": "vbroker-crash", "at": 5.0, "broker": 0},
]


def smoke(seed: int = 11) -> CampaignSpec:
    return CampaignSpec(
        name="smoke",
        seed=seed,
        base={"n_sites": 3, "queue_slots": 2, "queue_limit": 12,
              "horizon": 8.0},
        scenarios=[
            AxisPoint("paper-mix", {"suite": "paper", **_SESSION_SHAPE}),
            AxisPoint("lb3d-pepc", {
                "suite": "sweep",
                "sims": ["lb3d", "pepc"],
                "profiles": ["campus", "transatlantic"],
                **_SESSION_SHAPE,
            }),
        ],
        arrivals=[
            AxisPoint("poisson-2x", {"kind": "poisson", "rate": 3.4}),
            AxisPoint("flash-crowd", {
                "kind": "flash", "base_rate": 1.0, "burst_rate": 6.0,
                "burst_at": 2.0, "burst_duration": 2.0,
            }),
        ],
        faults=[
            AxisPoint("baseline"),
            AxisPoint("outage+vbroker", {"faults": _COMPOUND_FAULTS}),
            AxisPoint("random-3", {"random": {"n_faults": 3}}),
        ],
        policies=[
            AxisPoint("least-loaded", {"placement": "least-loaded"}),
        ],
    )


def nightly(seed: int = 2003) -> CampaignSpec:
    return CampaignSpec(
        name="nightly",
        seed=seed,
        base={"n_sites": 3, "queue_slots": 2, "queue_limit": 16,
              "horizon": 15.0},
        scenarios=[
            AxisPoint("paper-mix", {"suite": "paper", **_SESSION_SHAPE}),
            AxisPoint("full-sweep", {"suite": "sweep", **_SESSION_SHAPE}),
        ],
        arrivals=[
            AxisPoint("poisson-2x", {"kind": "poisson", "rate": 3.4}),
            AxisPoint("diurnal", {
                "kind": "diurnal", "base_rate": 0.8, "amplitude": 4.0,
                "period": 10.0,
            }),
            AxisPoint("flash-crowd", {
                "kind": "flash", "base_rate": 1.0, "burst_rate": 8.0,
                "burst_at": 4.0, "burst_duration": 3.0,
            }),
        ],
        faults=[
            AxisPoint("baseline"),
            AxisPoint("outage+vbroker", {"faults": _COMPOUND_FAULTS}),
            AxisPoint("random-4", {"random": {"n_faults": 4}}),
        ],
        policies=[
            AxisPoint("least-loaded", {"placement": "least-loaded"}),
            AxisPoint("p2c+autoscale", {
                "placement": "p2c",
                "autoscale": {"max_sites": 5},
            }),
        ],
    )


PRESETS = {"smoke": smoke, "nightly": nightly}


def preset(name: str, seed: int | None = None) -> CampaignSpec:
    try:
        build = PRESETS[name]
    except KeyError:
        raise CampaignError(
            f"unknown campaign preset {name!r}; "
            f"expected one of {sorted(PRESETS)}"
        ) from None
    return build() if seed is None else build(seed=seed)
