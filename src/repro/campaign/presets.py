"""Named campaigns: the grids CI and the nightly sweep actually run.

* ``smoke`` — 12 cells (2 scenario x 2 arrival x 3 fault x 1 policy),
  sized so a CI job finishes the whole grid in well under a minute while
  still crossing every subsystem: both workload suites, two traffic
  shapes, a no-fault baseline against a compound outage and a seeded
  random schedule.
* ``nightly`` — 36 cells (2 x 3 x 3 x 2) at a longer horizon with
  autoscaling in the policy axis; the scheduled workflow fails on any
  invariant violation anywhere in the grid.

Search presets (:data:`SEARCH_PRESETS`) are the adaptive counterparts:
instead of a grid they declare a :class:`~repro.campaign.search
.SearchSpec` over a continuous :class:`~repro.campaign.space.ParamSpace`
— ``cliff-smoke`` sized for CI, ``cliff-hunt`` for a real overnight
cliff expedition.

Presets are functions so every call returns a fresh, independently
mutable spec (callers may override the seed).
"""

from __future__ import annotations

from repro.campaign.search import (
    EvolutionaryStrategy,
    Constraint,
    Objective,
    SearchSpec,
)
from repro.campaign.space import ParamRange, ParamSpace
from repro.campaign.spec import AxisPoint, CampaignSpec
from repro.errors import CampaignError

_SESSION_SHAPE = {"duration": 2.0, "cadence": 0.5, "participants": 1}

_COMPOUND_FAULTS = [
    {"kind": "site-outage", "at": 4.0, "site": 0, "duration": 20.0},
    {"kind": "vbroker-crash", "at": 5.0, "broker": 0},
]


def smoke(seed: int = 11) -> CampaignSpec:
    return CampaignSpec(
        name="smoke",
        seed=seed,
        base={"n_sites": 3, "queue_slots": 2, "queue_limit": 12,
              "horizon": 8.0},
        scenarios=[
            AxisPoint("paper-mix", {"suite": "paper", **_SESSION_SHAPE}),
            AxisPoint("lb3d-pepc", {
                "suite": "sweep",
                "sims": ["lb3d", "pepc"],
                "profiles": ["campus", "transatlantic"],
                **_SESSION_SHAPE,
            }),
        ],
        arrivals=[
            AxisPoint("poisson-2x", {"kind": "poisson", "rate": 3.4}),
            AxisPoint("flash-crowd", {
                "kind": "flash", "base_rate": 1.0, "burst_rate": 6.0,
                "burst_at": 2.0, "burst_duration": 2.0,
            }),
        ],
        faults=[
            AxisPoint("baseline"),
            AxisPoint("outage+vbroker", {"faults": _COMPOUND_FAULTS}),
            AxisPoint("random-3", {"random": {"n_faults": 3}}),
        ],
        policies=[
            AxisPoint("least-loaded", {"placement": "least-loaded"}),
        ],
    )


def nightly(seed: int = 2003) -> CampaignSpec:
    return CampaignSpec(
        name="nightly",
        seed=seed,
        base={"n_sites": 3, "queue_slots": 2, "queue_limit": 16,
              "horizon": 15.0},
        scenarios=[
            AxisPoint("paper-mix", {"suite": "paper", **_SESSION_SHAPE}),
            AxisPoint("full-sweep", {"suite": "sweep", **_SESSION_SHAPE}),
        ],
        arrivals=[
            AxisPoint("poisson-2x", {"kind": "poisson", "rate": 3.4}),
            AxisPoint("diurnal", {
                "kind": "diurnal", "base_rate": 0.8, "amplitude": 4.0,
                "period": 10.0,
            }),
            AxisPoint("flash-crowd", {
                "kind": "flash", "base_rate": 1.0, "burst_rate": 8.0,
                "burst_at": 4.0, "burst_duration": 3.0,
            }),
        ],
        faults=[
            AxisPoint("baseline"),
            AxisPoint("outage+vbroker", {"faults": _COMPOUND_FAULTS}),
            AxisPoint("random-4", {"random": {"n_faults": 4}}),
        ],
        policies=[
            AxisPoint("least-loaded", {"placement": "least-loaded"}),
            AxisPoint("p2c+autoscale", {
                "placement": "p2c",
                "autoscale": {"max_sites": 5},
            }),
        ],
    )


PRESETS = {"smoke": smoke, "nightly": nightly}


def preset(name: str, seed: int | None = None) -> CampaignSpec:
    try:
        build = PRESETS[name]
    except KeyError:
        raise CampaignError(
            f"unknown campaign preset {name!r}; "
            f"expected one of {sorted(PRESETS)}"
        ) from None
    return build() if seed is None else build(seed=seed)


# -- adaptive searches --------------------------------------------------------


def cliff_smoke(seed: int = 23) -> SearchSpec:
    """A CI-sized goodput-cliff hunt: 6 evaluations over rate + faults."""
    space = ParamSpace(
        name="cliff-smoke",
        scenario=AxisPoint("paper-mix", {"suite": "paper", **_SESSION_SHAPE}),
        arrival=AxisPoint("poisson", {"kind": "poisson", "rate": 1.0}),
        faults=AxisPoint("random", {"random": {}}),
        policy=AxisPoint("least-loaded", {"placement": "least-loaded"}),
        ranges=[
            ParamRange("arrival.rate", 0.5, 6.0),
            ParamRange("faults.random.n_faults", 1, 5, kind="int"),
            ParamRange("faults.random.window", 0.3, 1.0),
            ParamRange("faults.random.duration_scale", 0.5, 2.5),
        ],
        base={"n_sites": 2, "queue_slots": 2, "queue_limit": 8,
              "horizon": 4.0},
    )
    return SearchSpec(
        name="cliff-smoke",
        seed=seed,
        space=space,
        strategy=EvolutionaryStrategy(elites=2),
        objective=Objective(
            metric="goodput", goal="min",
            # a cliff with no traffic is a trivial one — demand that the
            # search keeps at least a few sessions arriving
            constraints=(Constraint("sessions", lo=3.0, weight=0.2),),
        ),
        generations=2,
        population=3,
    )


def cliff_hunt(seed: int = 4003) -> SearchSpec:
    """The overnight expedition: flash-crowd traffic, wide fault ranges."""
    space = ParamSpace(
        name="cliff-hunt",
        scenario=AxisPoint("paper-mix", {"suite": "paper", **_SESSION_SHAPE}),
        arrival=AxisPoint("flash", {"kind": "flash", "base_rate": 1.0}),
        faults=AxisPoint("random", {"random": {}}),
        policy=AxisPoint("least-loaded", {"placement": "least-loaded"}),
        ranges=[
            ParamRange("arrival.base_rate", 0.3, 3.0, log=True),
            ParamRange("arrival.burst_rate", 2.0, 16.0, log=True),
            ParamRange("arrival.burst_at", 1.0, 8.0),
            ParamRange("arrival.burst_duration", 0.5, 5.0),
            ParamRange("faults.random.n_faults", 1, 8, kind="int"),
            ParamRange("faults.random.window", 0.2, 1.0),
            ParamRange("faults.random.duration_scale", 0.25, 4.0, log=True),
        ],
        base={"n_sites": 3, "queue_slots": 2, "queue_limit": 12,
              "horizon": 12.0},
    )
    return SearchSpec(
        name="cliff-hunt",
        seed=seed,
        space=space,
        strategy=EvolutionaryStrategy(elites=4, immigrant_rate=0.25),
        objective=Objective(
            metric="goodput", goal="min",
            constraints=(Constraint("sessions", lo=8.0, weight=0.2),),
        ),
        generations=6,
        population=8,
    )


SEARCH_PRESETS = {"cliff-smoke": cliff_smoke, "cliff-hunt": cliff_hunt}


def search_preset(name: str, seed: int | None = None) -> SearchSpec:
    try:
        build = SEARCH_PRESETS[name]
    except KeyError:
        raise CampaignError(
            f"unknown search preset {name!r}; "
            f"expected one of {sorted(SEARCH_PRESETS)}"
        ) from None
    return build() if seed is None else build(seed=seed)
