"""Seeded, resumable adaptive search over a continuous scenario space.

The fixed nightly grid samples a cross product; the interesting regime
— collaborative steering surviving hostile grid weather — lives on the
*cliffs between* cells.  This module drives a seeded search loop over a
:class:`~repro.campaign.space.ParamSpace`: each **generation** a
pluggable :class:`SearchStrategy` proposes a population of assignments,
every fresh proposal lowers to a :class:`CellSpec` and executes through
the ordinary :class:`~repro.campaign.runner.CellExecutor` (inline or
supervised — adversarial cells *will* crash and hang workers), and an
:class:`Objective` scores the settled records into the history the next
generation feeds on.

Determinism and resumability are one mechanism:

* the proposal sequence is a **pure function** of the search seed and
  the history — generation *g* draws from
  ``random.Random(derive_seed(seed, "search-gen", g))``, never from RNG
  state carried across generations — so it is independent of worker
  count, completion order, and how many times the process died;
* the :class:`~repro.campaign.store.ResultStore` is the only mutable
  state.  :meth:`SearchRunner.run` *is* the resume path: it replays the
  strategy from generation 0, skips every settled cell, and executes
  only what is missing — a search killed mid-generation converges to
  the byte-identical final archive;
* quarantined cells are scored :data:`WORST_SCORE` (a finite, JSON-safe
  pessimum, so the search steers away from cells that kill workers
  rather than farming them) and are never re-executed *or* re-proposed;
* the :class:`SearchArchive` is the canonical artifact: every proposal
  in order, scores, and the embedded search spec, serialised with
  sorted keys and no wall-clock vitals — two same-seed searches write
  byte-identical archives, and :meth:`SearchArchive.export` freezes the
  top cliff cells as single-cell ``CampaignSpec`` fragments that replay
  byte-identically through ``python -m repro.campaign run``.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import random
from dataclasses import dataclass, field, fields
from typing import Callable, ClassVar, Optional, Protocol, Sequence, runtime_checkable

from repro.campaign.matrix import cell_row
from repro.campaign.runner import CellExecutor
from repro.campaign.space import ParamSpace, assignment_digest, validate_path
from repro.campaign.spec import SPEC_VERSION, CellSpec, check_spec_version, derive_seed
from repro.campaign.store import ResultStore
from repro.errors import CampaignError

SEARCH_SCHEMA = "repro.campaign/search-v1"
ARCHIVE_SCHEMA = "repro.campaign/search-archive-v1"
CLIFFS_SCHEMA = "repro.campaign/cliffs-v1"

#: the loss assigned to quarantined proposals: finite (JSON round-trips
#: exactly), far worse than any real objective, so the search avoids
#: cells that crash or hang workers instead of farming them
WORST_SCORE = 1.0e9


# -- objective ---------------------------------------------------------------


@dataclass(frozen=True)
class Constraint:
    """A soft bound on one cell metric, folded into the scalar loss.

    Whenever the metric leaves ``[lo, hi]`` the excess (scaled by
    ``weight``) is added to the loss, steering the search away from
    degenerate corners — e.g. ``Constraint("sessions", lo=4)`` stops an
    adversarial goodput hunt from simply proposing arrival rates that
    offer no load at all.
    """

    metric: str
    lo: Optional[float] = None
    hi: Optional[float] = None
    weight: float = 100.0

    def __post_init__(self) -> None:
        if self.lo is None and self.hi is None:
            raise CampaignError(
                f"constraint on {self.metric!r} needs lo and/or hi"
            )
        if self.weight <= 0:
            raise CampaignError(
                f"constraint on {self.metric!r}: weight must be > 0"
            )

    def penalty(self, row: dict) -> float:
        value = row.get(self.metric)
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return 0.0
        excess = 0.0
        if self.lo is not None and value < self.lo:
            excess = self.lo - value
        elif self.hi is not None and value > self.hi:
            excess = value - self.hi
        return self.weight * excess

    def to_dict(self) -> dict:
        return {
            "metric": self.metric, "lo": self.lo, "hi": self.hi,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Constraint":
        return cls(
            metric=doc["metric"], lo=doc.get("lo"), hi=doc.get("hi"),
            weight=float(doc.get("weight", 100.0)),
        )


@dataclass(frozen=True)
class Objective:
    """A scalar loss over one cell summary row; the search *minimizes*.

    ``metric`` names any :func:`~repro.campaign.matrix.cell_row` column
    (``goodput``, ``steer_p90_ms``, ``violations`` ...); ``goal="min"``
    hunts cells where the metric is low (the default — minimizing
    goodput finds the SLO cliffs), ``goal="max"`` hunts high values
    (maximizing ``violations`` hunts invariant near-misses).
    Constraints add soft penalties on top of the scalar.
    """

    metric: str = "goodput"
    goal: str = "min"
    constraints: tuple = ()

    def __post_init__(self) -> None:
        if self.goal not in ("min", "max"):
            raise CampaignError(
                f"objective goal must be 'min' or 'max', got {self.goal!r}"
            )
        object.__setattr__(self, "constraints", tuple(
            c if isinstance(c, Constraint) else Constraint.from_dict(c)
            for c in self.constraints
        ))

    def score(self, row: dict) -> float:
        """Loss of one completed cell row (lower = more interesting)."""
        try:
            value = row[self.metric]
        except KeyError:
            raise CampaignError(
                f"objective metric {self.metric!r} is not a cell-row "
                f"metric (have: {sorted(row)})"
            ) from None
        if isinstance(value, float) and math.isnan(value):
            # A NaN metric (e.g. steer p90 of a cell that steered
            # nothing) carries no signal — score it as uninteresting.
            return self.worst_case()
        loss = float(value) if self.goal == "min" else -float(value)
        for constraint in self.constraints:
            loss += constraint.penalty(row)
        return loss

    def worst_case(self) -> float:
        """The pessimal loss, assigned to quarantined proposals."""
        return WORST_SCORE

    def to_dict(self) -> dict:
        return {
            "metric": self.metric,
            "goal": self.goal,
            "constraints": [c.to_dict() for c in self.constraints],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Objective":
        return cls(
            metric=doc.get("metric", "goodput"),
            goal=doc.get("goal", "min"),
            constraints=tuple(doc.get("constraints", ())),
        )


# -- evaluations -------------------------------------------------------------


@dataclass(frozen=True)
class Evaluation:
    """One scored proposal: the assignment, its lowered cell, its loss."""

    generation: int
    assignment: dict
    cell_id: str
    seed: int
    score: float
    quarantined: bool = False

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "assignment": dict(self.assignment),
            "cell_id": self.cell_id,
            "seed": self.seed,
            "score": self.score,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Evaluation":
        return cls(
            generation=int(doc["generation"]),
            assignment=dict(doc["assignment"]),
            cell_id=doc["cell_id"],
            seed=int(doc["seed"]),
            score=float(doc["score"]),
            quarantined=bool(doc.get("quarantined", False)),
        )


# -- strategies --------------------------------------------------------------


@runtime_checkable
class SearchStrategy(Protocol):
    """A pure proposal function: (space, history, rng, count) -> batch.

    Strategies hold **no mutable state** — everything they know comes
    from the history — which is exactly what makes a killed search
    resumable by replay.  ``rng`` is a fresh per-generation
    ``random.Random``; drawing from anything else breaks determinism.
    """

    kind: ClassVar[str]

    def propose(
        self,
        space: ParamSpace,
        history: Sequence[Evaluation],
        rng: random.Random,
        count: int,
    ) -> list[dict]: ...

    def to_dict(self) -> dict: ...


def _quarantined_digests(history: Sequence[Evaluation]) -> set:
    return {
        assignment_digest(ev.assignment) for ev in history if ev.quarantined
    }


def _avoid_quarantined(
    space: ParamSpace,
    history: Sequence[Evaluation],
    rng: random.Random,
    proposals: list[dict],
) -> list[dict]:
    """Replace any proposal that matches a known-poison assignment.

    Quarantined cells are never re-proposed: a fresh uniform sample
    takes the slot (one redraw virtually always clears a continuous
    space; the retry bound keeps a pathological all-poison space from
    looping forever).
    """
    poison = _quarantined_digests(history)
    if not poison:
        return proposals
    out = []
    for assignment in proposals:
        for _ in range(16):
            if assignment_digest(assignment) not in poison:
                break
            assignment = space.sample(rng)
        out.append(assignment)
    return out


@dataclass(frozen=True)
class RandomStrategy:
    """Uniform random sampling — the baseline every search must beat."""

    kind: ClassVar[str] = "random"

    def propose(self, space, history, rng, count) -> list[dict]:
        proposals = [space.sample(rng) for _ in range(count)]
        return _avoid_quarantined(space, history, rng, proposals)

    def to_dict(self) -> dict:
        return {"kind": self.kind}


@dataclass(frozen=True)
class EvolutionaryStrategy:
    """Elite selection + per-dimension crossover + gaussian mutation.

    Parents are the ``elites`` best non-quarantined evaluations so far
    (ties broken by cell id, so selection is deterministic).  Each child
    inherits every dimension from one of two parents (crossover) and
    takes a gaussian step sized to the range span (mutation); a
    ``immigrant_rate`` fraction of each generation is fresh uniform
    blood so the population can escape a local cliff.
    """

    kind: ClassVar[str] = "evolutionary"
    elites: int = 4
    mutation_scale: float = 0.15
    crossover_rate: float = 0.5
    immigrant_rate: float = 0.25

    def __post_init__(self) -> None:
        if self.elites < 1:
            raise CampaignError("evolutionary strategy needs >= 1 elite")
        if self.mutation_scale <= 0:
            raise CampaignError("mutation_scale must be > 0")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise CampaignError("crossover_rate must be in [0, 1]")
        if not 0.0 <= self.immigrant_rate <= 1.0:
            raise CampaignError("immigrant_rate must be in [0, 1]")

    def propose(self, space, history, rng, count) -> list[dict]:
        parents = sorted(
            (ev for ev in history if not ev.quarantined),
            key=lambda ev: (ev.score, ev.cell_id),
        )[: self.elites]
        proposals = []
        for _ in range(count):
            if not parents or rng.random() < self.immigrant_rate:
                proposals.append(space.sample(rng))
                continue
            p1 = rng.choice(parents).assignment
            p2 = rng.choice(parents).assignment
            child = {}
            for r in space.ranges:
                donor = p1 if rng.random() >= self.crossover_rate else p2
                value = donor.get(r.path)
                if value is None:
                    child[r.path] = r.sample(rng)
                else:
                    child[r.path] = r.mutate(value, rng, self.mutation_scale)
            proposals.append(child)
        return _avoid_quarantined(space, history, rng, proposals)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "elites": self.elites,
            "mutation_scale": self.mutation_scale,
            "crossover_rate": self.crossover_rate,
            "immigrant_rate": self.immigrant_rate,
        }


@dataclass(frozen=True)
class SuccessiveHalvingStrategy:
    """Cheap-first screening: brackets of rungs at escalating budget.

    Generation ``g`` is rung ``g % rungs`` of its bracket.  Rung 0
    samples ``count`` fresh configs at ``budget_lo``; each later rung
    keeps the top ``count // eta**rung`` survivors of the previous rung
    and re-evaluates them at an ``eta``-times larger budget (capped at
    ``budget_hi``).  The budget rides the assignment itself under
    ``budget_path`` — an ordinary dotted path (default
    ``base.horizon``, i.e. survivors earn longer simulated runs), so an
    escalated re-evaluation is just *another cell* with its own derived
    seed, settled and archived like any other.
    """

    kind: ClassVar[str] = "halving"
    budget_path: str = "base.horizon"
    budget_lo: float = 4.0
    budget_hi: float = 16.0
    eta: int = 2
    rungs: int = 3

    def __post_init__(self) -> None:
        validate_path(self.budget_path)
        if not 0 < self.budget_lo <= self.budget_hi:
            raise CampaignError(
                "halving needs 0 < budget_lo <= budget_hi"
            )
        if self.eta < 2:
            raise CampaignError("halving eta must be >= 2")
        if self.rungs < 2:
            raise CampaignError("halving needs >= 2 rungs per bracket")

    def propose(self, space, history, rng, count) -> list[dict]:
        generation = history[-1].generation + 1 if history else 0
        rung = generation % self.rungs
        if rung:
            survivors = sorted(
                (
                    ev for ev in history
                    if ev.generation == generation - 1 and not ev.quarantined
                ),
                key=lambda ev: (ev.score, ev.cell_id),
            )
            keep = max(1, count // self.eta**rung)
            budget = min(self.budget_lo * self.eta**rung, self.budget_hi)
            proposals = []
            for ev in survivors[:keep]:
                assignment = dict(ev.assignment)
                assignment[self.budget_path] = budget
                proposals.append(assignment)
            if proposals:
                return _avoid_quarantined(space, history, rng, proposals)
            # the whole previous rung quarantined: reseed the bracket
        proposals = []
        for _ in range(count):
            assignment = space.sample(rng)
            assignment[self.budget_path] = self.budget_lo
            proposals.append(assignment)
        return _avoid_quarantined(space, history, rng, proposals)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "budget_path": self.budget_path,
            "budget_lo": self.budget_lo,
            "budget_hi": self.budget_hi,
            "eta": self.eta,
            "rungs": self.rungs,
        }


#: strategy kind -> class, the wire-format registry
STRATEGIES = {
    cls.kind: cls
    for cls in (RandomStrategy, EvolutionaryStrategy, SuccessiveHalvingStrategy)
}


def make_strategy(doc) -> SearchStrategy:
    """Build a strategy from its wire form (``{"kind": ..., **params}``)."""
    if isinstance(doc, SearchStrategy):
        return doc
    doc = dict(doc)
    kind = doc.pop("kind", None)
    cls = STRATEGIES.get(kind)
    if cls is None:
        raise CampaignError(
            f"unknown search strategy {kind!r} "
            f"(expected one of {sorted(STRATEGIES)})"
        )
    allowed = {f.name for f in fields(cls)}
    extra = set(doc) - allowed
    if extra:
        raise CampaignError(
            f"strategy {kind!r}: unexpected params {sorted(extra)}"
        )
    return cls(**doc)


# -- the search spec ---------------------------------------------------------


@dataclass
class SearchSpec:
    """The declarative search: space + strategy + objective + budget.

    Fills the same role for a search that :class:`CampaignSpec` fills
    for a grid — and the :class:`~repro.campaign.store.ResultStore`
    header carries it verbatim, so ``search resume`` needs nothing but
    the store path.
    """

    name: str
    space: ParamSpace
    strategy: object = field(default_factory=RandomStrategy)
    objective: Objective = field(default_factory=Objective)
    generations: int = 4
    population: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("search needs a name")
        if not isinstance(self.space, ParamSpace):
            self.space = ParamSpace.from_dict(self.space)
        self.strategy = make_strategy(self.strategy)
        if not isinstance(self.objective, Objective):
            self.objective = Objective.from_dict(self.objective)
        if self.generations < 1:
            raise CampaignError("search needs >= 1 generation")
        if self.population < 1:
            raise CampaignError("search needs population >= 1")

    def cell_for(self, assignment: dict) -> CellSpec:
        """Lower one assignment to its concrete, seeded cell."""
        return self.space.lower(assignment, seed=self.seed, name=self.name)

    def cliff_spec(self, assignment: dict, name: str):
        """Freeze one assignment as a single-cell grid CampaignSpec."""
        return self.space.lower_spec(assignment, seed=self.seed, name=name)

    def to_dict(self) -> dict:
        return {
            "schema": SEARCH_SCHEMA,
            "version": SPEC_VERSION,
            "name": self.name,
            "seed": self.seed,
            "generations": self.generations,
            "population": self.population,
            "space": self.space.to_dict(),
            "strategy": self.strategy.to_dict(),
            "objective": self.objective.to_dict(),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SearchSpec":
        schema = doc.get("schema", SEARCH_SCHEMA)
        if schema != SEARCH_SCHEMA:
            raise CampaignError(
                f"unsupported search spec schema {schema!r} "
                f"(expected {SEARCH_SCHEMA})"
            )
        check_spec_version(doc, what="search spec")
        try:
            return cls(
                name=doc["name"],
                seed=int(doc.get("seed", 0)),
                generations=int(doc.get("generations", 4)),
                population=int(doc.get("population", 8)),
                space=ParamSpace.from_dict(doc["space"]),
                strategy=doc.get("strategy", {"kind": "random"}),
                objective=Objective.from_dict(doc.get("objective", {})),
            )
        except KeyError as exc:
            raise CampaignError(
                f"search spec is missing required key {exc}"
            ) from None


# -- the archive -------------------------------------------------------------


def default_archive_path(store_path) -> pathlib.Path:
    """``foo.jsonl`` -> ``foo.archive.json`` next to the store."""
    store_path = pathlib.Path(store_path)
    return store_path.with_name(store_path.stem + ".archive.json")


class SearchArchive:
    """The canonical record of a search: every proposal, in order.

    Layered on the :class:`ResultStore` (which holds the raw cell
    records and quarantine verdicts), the archive is the
    **deterministic view**: proposal order, assignments, scores — no
    wall-clock vitals, sorted keys — so two same-seed runs write
    byte-identical archive files regardless of worker count or how
    often they were killed and resumed.
    """

    def __init__(
        self, spec: SearchSpec, evaluations: Sequence[Evaluation] = ()
    ) -> None:
        self.spec = spec
        self.evaluations = list(evaluations)

    @property
    def generations(self) -> int:
        return (
            self.evaluations[-1].generation + 1 if self.evaluations else 0
        )

    def best(self, top: int = 1) -> list[Evaluation]:
        """The ``top`` lowest-loss non-quarantined evaluations, deduped
        by cell (a halving survivor appears once, at its best rung)."""
        seen = set()
        out = []
        for ev in sorted(
            (ev for ev in self.evaluations if not ev.quarantined),
            key=lambda ev: (ev.score, ev.cell_id),
        ):
            if ev.cell_id in seen:
                continue
            seen.add(ev.cell_id)
            out.append(ev)
            if len(out) >= top:
                break
        return out

    def by_generation(self) -> list[list[Evaluation]]:
        gens: list[list[Evaluation]] = [[] for _ in range(self.generations)]
        for ev in self.evaluations:
            gens[ev.generation].append(ev)
        return gens

    def to_dict(self) -> dict:
        best = self.best(1)
        return {
            "schema": ARCHIVE_SCHEMA,
            "version": SPEC_VERSION,
            "search": self.spec.to_dict(),
            "generations": self.generations,
            "evaluations": [ev.to_dict() for ev in self.evaluations],
            "best": best[0].to_dict() if best else None,
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def write(self, path) -> pathlib.Path:
        """Atomically (tmp + ``os.replace``) persist the archive."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (path.name + ".tmp")
        tmp.write_text(self.dumps(), encoding="utf-8")
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path) -> "SearchArchive":
        try:
            doc = json.loads(pathlib.Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"cannot read search archive {path}: {exc}") from None
        if doc.get("schema") != ARCHIVE_SCHEMA:
            raise CampaignError(
                f"{path}: not a {ARCHIVE_SCHEMA} document"
            )
        check_spec_version(doc, what="search archive")
        return cls(
            SearchSpec.from_dict(doc["search"]),
            [Evaluation.from_dict(ev) for ev in doc.get("evaluations", ())],
        )

    # -- cliff export --------------------------------------------------------

    def export(self, top: int = 3) -> dict:
        """Freeze the best cells as replayable grid-spec fragments.

        Each entry carries the assignment *and* a complete single-cell
        :class:`CampaignSpec` document — ``python -m repro.campaign run
        --spec <fragment>`` replays the discovered cell byte-identically
        (same cell id, same derived seed), which is what lets confirmed
        cliffs join the fixed nightly grid as regression scenarios.
        """
        if top < 1:
            raise CampaignError("export needs top >= 1")
        cells = []
        for rank, ev in enumerate(self.best(top), start=1):
            spec = self.spec.cliff_spec(
                ev.assignment, name=f"{self.spec.name}-cliff-{rank}"
            )
            cells.append({
                "rank": rank,
                "cell_id": ev.cell_id,
                "seed": ev.seed,
                "score": ev.score,
                "generation": ev.generation,
                "assignment": dict(ev.assignment),
                "spec": spec.to_dict(),
            })
        return {
            "schema": CLIFFS_SCHEMA,
            "version": SPEC_VERSION,
            "search": self.spec.name,
            "seed": self.spec.seed,
            "objective": self.spec.objective.to_dict(),
            "cells": cells,
        }

    def render(self, top: int = 5) -> str:
        """A text summary for the CLI."""
        lines = [
            f"search {self.spec.name!r} seed {self.spec.seed}: "
            f"{self.generations}/{self.spec.generations} generations, "
            f"{len(self.evaluations)} evaluations "
            f"({sum(1 for ev in self.evaluations if ev.quarantined)} "
            f"quarantined), strategy {self.spec.strategy.kind}, "
            f"objective {self.spec.objective.goal} "
            f"{self.spec.objective.metric}"
        ]
        for gen in self.by_generation():
            if not gen:
                continue
            best = min(ev.score for ev in gen)
            lines.append(
                f"  gen {gen[0].generation}: {len(gen)} proposals, "
                f"best {best:g}"
            )
        top_evs = self.best(top)
        if top_evs:
            lines.append(f"top {len(top_evs)} cell(s):")
            for ev in top_evs:
                knobs = ", ".join(
                    f"{path.split('.')[-1]}={value:g}"
                    for path, value in sorted(ev.assignment.items())
                )
                lines.append(
                    f"  {ev.score:>10g}  gen {ev.generation}  "
                    f"{ev.cell_id}  [{knobs}]"
                )
        return "\n".join(lines)


# -- the runner --------------------------------------------------------------


class SearchRunner:
    """Drive a search to its generation budget, resumably.

    The loop per generation: derive the generation RNG, ask the
    strategy for proposals, lower them to cells, execute the not-yet-
    settled ones through the :class:`CellExecutor`, score everything in
    **proposal order** from the store, append to the history, rewrite
    the archive.  Because every step is a pure function of (seed,
    store), calling :meth:`run` on a half-finished store *is* resume —
    generations whose cells are all settled replay instantly without
    executing anything.
    """

    def __init__(
        self,
        spec: SearchSpec,
        store: ResultStore,
        workers: int = 1,
        mp_context: str = "spawn",
        max_cell_seconds: Optional[float] = None,
        max_cell_retries: int = 2,
        retry_backoff: float = 0.05,
        supervise: Optional[bool] = None,
        metrics=None,
        archive_path=None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.executor = CellExecutor(
            store,
            workers=workers,
            mp_context=mp_context,
            max_cell_seconds=max_cell_seconds,
            max_cell_retries=max_cell_retries,
            retry_backoff=retry_backoff,
            supervise=supervise,
            metrics=metrics,
        )
        self.archive_path = pathlib.Path(
            archive_path if archive_path is not None
            else default_archive_path(store.path)
        )
        self.metrics = metrics
        if metrics is not None:
            self._m_generations = metrics.counter(
                "campaign_search_generations_total",
                "search generations settled",
            )
            self._m_evaluations = metrics.counter(
                "campaign_search_evaluations_total",
                "proposals scored (fresh or replayed)",
            )
            self._m_best = metrics.gauge(
                "campaign_search_best_objective",
                "lowest loss seen so far",
            )
        #: aggregate supervision counters of the last run() call
        self.stats = {
            "completed": 0, "worker_restarts": 0,
            "cell_retries": 0, "quarantined": 0,
        }
        #: cell ids actually executed (not replayed) by the last run()
        self.executed: list[str] = []

    @property
    def workers(self) -> int:
        return self.executor.workers

    @property
    def supervise(self) -> bool:
        return self.executor.supervise

    def run(
        self,
        progress: Optional[Callable[[dict], None]] = None,
        on_generation: Optional[Callable[[dict], None]] = None,
    ) -> SearchArchive:
        """Run (or resume) the search; returns the final archive.

        Raises :class:`KeyboardInterrupt` after a signal-initiated
        drain, exactly like the grid runner — the store is consistent
        and the archive holds every fully-settled generation, so the
        caller simply reruns to resume.
        """
        self.store.ensure_header(self.spec)
        spec = self.spec
        space, strategy, objective = spec.space, spec.strategy, spec.objective
        history: list[Evaluation] = []
        self.stats = {
            "completed": 0, "worker_restarts": 0,
            "cell_retries": 0, "quarantined": 0,
        }
        self.executed = []
        best = math.inf
        for generation in range(spec.generations):
            rng = random.Random(
                derive_seed(spec.seed, "search-gen", generation)
            )
            proposals = strategy.propose(
                space, tuple(history), rng, spec.population
            )
            if not proposals:
                raise CampaignError(
                    f"strategy {strategy.kind!r} proposed nothing for "
                    f"generation {generation}"
                )
            proposals = [space.clamp(a) for a in proposals]
            cells = [spec.cell_for(a) for a in proposals]
            settled = self.store.settled_ids()
            todo, seen = [], set()
            for cell in cells:
                if cell.cell_id in settled or cell.cell_id in seen:
                    continue
                seen.add(cell.cell_id)
                todo.append(cell)
            if todo:
                stats = self.executor.execute(todo, progress=progress)
                for key, value in stats.items():
                    self.stats[key] += value
                self.executed.extend(cell.cell_id for cell in todo)
            by_id = {
                rec["cell_id"]: rec for rec in self.store.cell_records()
            }
            quarantined = self.store.quarantined_ids()
            gen_best = math.inf
            for assignment, cell in zip(proposals, cells):
                if cell.cell_id in quarantined:
                    score, poisoned = objective.worst_case(), True
                else:
                    record = by_id.get(cell.cell_id)
                    if record is None:
                        raise CampaignError(
                            f"cell {cell.cell_id!r} has no record after "
                            "execution — store and search are out of sync"
                        )
                    score, poisoned = objective.score(cell_row(record)), False
                history.append(Evaluation(
                    generation=generation,
                    assignment=assignment,
                    cell_id=cell.cell_id,
                    seed=cell.seed,
                    score=score,
                    quarantined=poisoned,
                ))
                gen_best = min(gen_best, score)
            best = min(best, gen_best)
            if self.metrics is not None:
                self._m_generations.inc()
                self._m_evaluations.inc(len(proposals))
                self._m_best.set(best)
            archive = SearchArchive(spec, history)
            archive.write(self.archive_path)
            if on_generation is not None:
                on_generation({
                    "generation": generation,
                    "proposed": len(proposals),
                    "executed": len(todo),
                    "best": gen_best,
                    "best_so_far": best,
                })
        return SearchArchive(spec, history)
