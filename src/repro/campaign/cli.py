"""``python -m repro.campaign`` — grids, adaptive searches, reports.

Subcommands::

    run     --preset smoke | --spec FILE [shared flags]
            [--seed S] [--per-cell] [--bench-out PATH]
    resume  --store PATH [shared flags]
    report  --store PATH [--per-cell] [--json]
            [--html PATH [--baseline STORE] [--drift-threshold T]]
    diff    STORE_A STORE_B [--marginal-threshold T]
    search  run     --preset cliff-smoke | --spec FILE [shared flags]
                    [--seed S] [--archive PATH]
    search  resume  --store PATH [shared flags] [--archive PATH]
    search  export  --store PATH | --archive PATH [--top N] [--out FILE]
    search  report  --store PATH | --archive PATH [--top N] [--html PATH]

The shared flags — one argparse parent, identical across ``run``,
``resume`` and the ``search`` executors — are ``--store``, ``--workers``,
``--max-cell-seconds``, ``--max-cell-retries`` and
``--fail-on-violations``.

``run`` against an existing store resumes it (the header must match the
requested campaign — a different spec at the same path is refused).
``resume`` needs no spec at all: the store's header carries the full
campaign *or search*, so a cron job can restart whatever was
interrupted.  ``search export`` freezes the best discovered cells as
single-cell grid-spec fragments that ``run --spec`` replays
byte-identically.

Supervision: ``--workers > 1``, ``--max-cell-seconds`` or
``--max-cell-retries`` route execution through the crash-/hang-/poison-
tolerant :class:`~repro.campaign.supervise.Supervisor`; a SIGTERM or
Ctrl-C drains gracefully (in-flight completed records are flushed, the
store stays consistent, exit :data:`EXIT_INTERRUPTED`).

Exit codes — the contract the nightly workflow gates on::

    0    grid complete, no violations, nothing quarantined
    1    chaos invariant violation(s) somewhere in the grid
    2    usage / campaign error (bad spec, mixed store ...)
    3    quarantined cell(s): the retry budget died trying
    4    incomplete grid (cells missing without a quarantine verdict)
    130  interrupted (SIGTERM/SIGINT drain; resume to finish)

Violations outrank quarantines (a violation is a *wrong answer*, a
quarantine is a missing one), quarantines outrank bare incompleteness;
1/3/4 all require ``--fail-on-violations``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.campaign.matrix import MatrixReport
from repro.campaign.presets import PRESETS, SEARCH_PRESETS, preset, search_preset
from repro.campaign.runner import CampaignRunner
from repro.campaign.search import (
    SearchArchive,
    SearchRunner,
    SearchSpec,
    default_archive_path,
)
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.errors import CampaignError
from repro.obs import MetricsRegistry
from repro.perf.bench import write_bench

EXIT_OK = 0
EXIT_VIOLATIONS = 1
EXIT_ERROR = 2
EXIT_QUARANTINED = 3
EXIT_INCOMPLETE = 4
EXIT_INTERRUPTED = 130


def _load_spec(args: argparse.Namespace) -> CampaignSpec:
    if args.spec is not None:
        doc = json.loads(pathlib.Path(args.spec).read_text())
        spec = CampaignSpec.from_dict(doc)
        if args.seed is not None:
            spec.seed = args.seed
        return spec
    return preset(args.preset, seed=args.seed)


def _load_search_spec(args: argparse.Namespace) -> SearchSpec:
    if args.spec is not None:
        doc = json.loads(pathlib.Path(args.spec).read_text())
        spec = SearchSpec.from_dict(doc)
        if args.seed is not None:
            spec.seed = args.seed
        return spec
    return search_preset(args.preset, seed=args.seed)


def _default_store(spec) -> pathlib.Path:
    return pathlib.Path("campaign-results") / f"{spec.name}.jsonl"


def _progress(record: dict) -> None:
    if record["kind"] == "quarantine":
        print(
            f"  cell {record['cell_id']}: QUARANTINED "
            f"({record['reason']} after {record['attempts']} attempt(s))",
            flush=True,
        )
        return
    report = record["report"]
    verdict = record["verdict"]
    wall = record["perf"].get("wall_seconds", 0.0)
    flag = (
        f"  !! {verdict['invariant_violations']} violations"
        if verdict["invariant_violations"] else ""
    )
    print(
        f"  cell {record['cell_id']}: "
        f"{report['completed']}/{report['sessions']} completed, "
        f"wall {wall:.2f}s{flag}",
        flush=True,
    )


def _finish(
    matrix: MatrixReport,
    runner: CampaignRunner,
    wall: float,
    args: argparse.Namespace,
) -> int:
    print(matrix.render(per_cell=args.per_cell))
    print(
        f"ran {len(runner.executed)} cells "
        f"({matrix.totals.cells - runner.stats['completed']} resumed from "
        f"{runner.store.path}), wall {wall:.1f}s, "
        f"{runner.workers} worker(s)"
    )
    if runner.supervise:
        s = runner.stats
        print(
            f"supervisor: {s['worker_restarts']} worker restart(s), "
            f"{s['cell_retries']} cell retrie(s), "
            f"{s['quarantined']} quarantined"
        )
    if args.bench_out:
        events = sum(
            rec["perf"].get("events", 0)
            for rec in runner.store.cell_records()
        )
        path = write_bench(
            pathlib.Path(args.bench_out),
            f"campaign_{matrix.campaign}",
            matrix.to_dict(),
            wall_seconds=wall,
            events=events,
        )
        print(f"bench envelope written to {path}")
    if args.fail_on_violations:
        if matrix.violations:
            print(
                f"FAIL: {matrix.violations} invariant violation(s) "
                "across the grid",
                file=sys.stderr,
            )
            return EXIT_VIOLATIONS
        if matrix.quarantined:
            print(
                f"FAIL: {len(matrix.quarantined)} quarantined cell(s) — "
                "the grid has known-poison holes",
                file=sys.stderr,
            )
            return EXIT_QUARANTINED
        if not matrix.complete:
            print(
                f"FAIL: grid incomplete "
                f"({matrix.totals.cells}/{matrix.expected_cells} cells)",
                file=sys.stderr,
            )
            return EXIT_INCOMPLETE
    return EXIT_OK


def _supervision(args: argparse.Namespace) -> tuple[dict, Optional[bool]]:
    """The executor kwargs the shared supervision flags map to."""
    kwargs = {}
    supervise = None
    if args.max_cell_seconds is not None:
        kwargs["max_cell_seconds"] = args.max_cell_seconds
        supervise = True
    if args.max_cell_retries is not None:
        kwargs["max_cell_retries"] = args.max_cell_retries
        supervise = True
    return kwargs, supervise


def _build_runner(
    spec: CampaignSpec, store: ResultStore, args: argparse.Namespace
) -> CampaignRunner:
    kwargs, supervise = _supervision(args)
    return CampaignRunner(
        spec, store,
        workers=args.workers,
        supervise=supervise,
        metrics=MetricsRegistry(),
        **kwargs,
    )


def cmd_run(args: argparse.Namespace) -> int:
    spec = _load_spec(args)
    store_path = args.store or _default_store(spec)
    store = ResultStore(store_path)
    runner = _build_runner(spec, store, args)
    pending = len(runner.pending()) if store.header else spec.n_cells
    print(
        f"campaign {spec.name!r} seed {spec.seed}: {spec.n_cells} cells "
        f"({pending} to run), {args.workers} worker(s)"
        f"{' [supervised]' if runner.supervise else ''}, store {store_path}",
        flush=True,
    )
    t0 = time.perf_counter()
    matrix = runner.run(progress=_progress)
    return _finish(matrix, runner, time.perf_counter() - t0, args)


def cmd_resume(args: argparse.Namespace) -> int:
    store = ResultStore(_require_store(args))
    spec = store.spec()
    if isinstance(spec, SearchSpec):
        raise CampaignError(
            f"{store.path} holds search {spec.name!r}; resume it with: "
            f"python -m repro.campaign search resume --store {store.path}"
        )
    runner = _build_runner(spec, store, args)
    quarantined = len(store.quarantined_ids())
    print(
        f"resuming campaign {spec.name!r} seed {spec.seed} from "
        f"{args.store}: {len(store)} cells done"
        + (f", {quarantined} quarantined (skipped)" if quarantined else "")
        + f", {len(runner.pending())} to run",
        flush=True,
    )
    t0 = time.perf_counter()
    matrix = runner.run(progress=_progress)
    return _finish(matrix, runner, time.perf_counter() - t0, args)


def _matrix_of(store: ResultStore) -> MatrixReport:
    return MatrixReport.from_records(
        store.cell_records(), spec=store.spec(),
        quarantined=store.quarantine_records(),
    )


def cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    matrix = _matrix_of(store)
    if args.baseline is not None and args.html is None:
        raise CampaignError("--baseline requires --html")
    if args.html is not None:
        from repro.campaign.dashboard import write_html

        baseline = None
        if args.baseline is not None:
            baseline = _matrix_of(ResultStore(args.baseline))
        path = write_html(
            args.html, matrix, baseline=baseline,
            drift_threshold=args.drift_threshold,
        )
        print(f"dashboard written to {path}")
    if args.json:
        print(json.dumps(matrix.to_dict(), indent=2, sort_keys=True))
    elif args.html is None:
        print(matrix.render(per_cell=args.per_cell))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    matrices = [
        _matrix_of(ResultStore(path))
        for path in (args.store_a, args.store_b)
    ]
    diff = matrices[0].diff(matrices[1])
    print(MatrixReport.render_diff(diff))
    failed = bool(diff["changed"] or diff["only_self"]
                  or diff["only_other"])
    if args.marginal_threshold is not None:
        drift = matrices[0].diff_marginals(
            matrices[1], threshold=args.marginal_threshold
        )
        print(MatrixReport.render_marginals(drift))
        failed = failed or bool(drift["exceeded"] or drift["missing"])
    return 1 if failed else 0


# -- search commands ----------------------------------------------------------


def _require_store(args: argparse.Namespace) -> str:
    if args.store is None:
        raise CampaignError("resume needs --store (the interrupted run's "
                            "results path)")
    return args.store


def _build_search_runner(
    spec: SearchSpec, store: ResultStore, args: argparse.Namespace
) -> SearchRunner:
    kwargs, supervise = _supervision(args)
    return SearchRunner(
        spec, store,
        workers=args.workers,
        supervise=supervise,
        metrics=MetricsRegistry(),
        archive_path=args.archive,
        **kwargs,
    )


def _gen_progress(summary: dict) -> None:
    print(
        f"generation {summary['generation']}: "
        f"{summary['proposed']} proposed, {summary['executed']} executed, "
        f"best {summary['best']:g} (best so far {summary['best_so_far']:g})",
        flush=True,
    )


def _finish_search(
    archive: SearchArchive,
    runner: SearchRunner,
    wall: float,
    args: argparse.Namespace,
) -> int:
    print(archive.render())
    print(
        f"ran {len(runner.executed)} cells "
        f"({len(archive.evaluations) - len(runner.executed)} replayed from "
        f"{runner.store.path}), wall {wall:.1f}s, "
        f"{runner.workers} worker(s); archive {runner.archive_path}"
    )
    if runner.supervise:
        s = runner.stats
        print(
            f"supervisor: {s['worker_restarts']} worker restart(s), "
            f"{s['cell_retries']} cell retrie(s), "
            f"{s['quarantined']} quarantined"
        )
    if args.fail_on_violations:
        violations = sum(
            rec["verdict"]["invariant_violations"]
            for rec in runner.store.cell_records()
        )
        if violations:
            print(
                f"FAIL: {violations} invariant violation(s) across the "
                "evaluated cells",
                file=sys.stderr,
            )
            return EXIT_VIOLATIONS
        quarantined = sum(1 for ev in archive.evaluations if ev.quarantined)
        if quarantined:
            print(
                f"FAIL: {quarantined} proposal(s) quarantined — the search "
                "found cells that kill workers",
                file=sys.stderr,
            )
            return EXIT_QUARANTINED
    return EXIT_OK


def cmd_search_run(args: argparse.Namespace) -> int:
    spec = _load_search_spec(args)
    store_path = args.store or _default_store(spec)
    store = ResultStore(store_path)
    runner = _build_search_runner(spec, store, args)
    print(
        f"search {spec.name!r} seed {spec.seed}: "
        f"{spec.generations} generation(s) x {spec.population}, "
        f"strategy {spec.strategy.kind}, "
        f"objective {spec.objective.goal} {spec.objective.metric}, "
        f"{args.workers} worker(s)"
        f"{' [supervised]' if runner.supervise else ''}, store {store_path}",
        flush=True,
    )
    t0 = time.perf_counter()
    archive = runner.run(progress=_progress, on_generation=_gen_progress)
    return _finish_search(archive, runner, time.perf_counter() - t0, args)


def cmd_search_resume(args: argparse.Namespace) -> int:
    store = ResultStore(_require_store(args))
    spec = store.spec()
    if not isinstance(spec, SearchSpec):
        raise CampaignError(
            f"{store.path} holds campaign {spec.name!r}; resume it with: "
            f"python -m repro.campaign resume --store {store.path}"
        )
    runner = _build_search_runner(spec, store, args)
    quarantined = len(store.quarantined_ids())
    print(
        f"resuming search {spec.name!r} seed {spec.seed} from "
        f"{args.store}: {len(store)} cells done"
        + (f", {quarantined} quarantined (skipped)" if quarantined else ""),
        flush=True,
    )
    t0 = time.perf_counter()
    archive = runner.run(progress=_progress, on_generation=_gen_progress)
    return _finish_search(archive, runner, time.perf_counter() - t0, args)


def _load_archive(args: argparse.Namespace) -> SearchArchive:
    if args.archive is not None:
        return SearchArchive.load(args.archive)
    if args.store is not None:
        return SearchArchive.load(default_archive_path(args.store))
    raise CampaignError("need --archive or --store to locate the search "
                        "archive")


def cmd_search_export(args: argparse.Namespace) -> int:
    archive = _load_archive(args)
    doc = archive.export(top=args.top)
    text = json.dumps(doc, indent=1, sort_keys=True)
    if args.out is not None:
        pathlib.Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(
            f"{len(doc['cells'])} cliff cell(s) exported to {args.out} — "
            "replay one with: python -m repro.campaign run --spec "
            "<fragment.json>"
        )
    else:
        print(text)
    return EXIT_OK


def cmd_search_report(args: argparse.Namespace) -> int:
    archive = _load_archive(args)
    if args.html is not None:
        from repro.campaign.dashboard import write_search_html

        path = write_search_html(args.html, archive)
        print(f"search dashboard written to {path}")
        return EXIT_OK
    print(archive.render(top=args.top))
    return EXIT_OK


# -- the parser ---------------------------------------------------------------


def _exec_parent() -> argparse.ArgumentParser:
    """The shared executor flags: one parent, so ``run``, ``resume`` and
    the ``search`` executors cannot drift apart flag by flag."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--store", default=None,
                        help="results JSONL path (default "
                             "campaign-results/<name>.jsonl; required for "
                             "resume)")
    parent.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = inline unless a "
                             "supervision flag is given)")
    parent.add_argument("--max-cell-seconds", type=float, default=None,
                        help="per-cell wall-clock budget; a cell still "
                             "running past it is killed and retried "
                             "(implies supervised execution)")
    parent.add_argument("--max-cell-retries", type=int, default=None,
                        help="retries before a failing cell is quarantined "
                             "(default 2; implies supervised execution)")
    parent.add_argument("--fail-on-violations", action="store_true",
                        help="gate the exit code: 1 violations, "
                             "3 quarantined cells, 4 incomplete grid")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="parallel scenario-matrix campaigns and adaptive "
                    "scenario searches over the steering testbed",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    parent = _exec_parent()

    run = sub.add_parser("run", parents=[parent],
                         help="run (or resume) a campaign grid")
    run.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    run.add_argument("--spec", help="campaign spec JSON file "
                                    "(overrides --preset)")
    run.add_argument("--seed", type=int, default=None,
                     help="override the campaign seed")
    run.set_defaults(func=cmd_run)

    resume = sub.add_parser(
        "resume", parents=[parent],
        help="finish an interrupted campaign from its store",
    )
    resume.set_defaults(func=cmd_resume)

    for cmd in (run, resume):
        cmd.add_argument("--per-cell", action="store_true",
                         help="print the per-cell table")
        cmd.add_argument("--bench-out", default=None,
                         help="also write a BENCH_*.json envelope here")

    report = sub.add_parser("report", help="render a stored campaign")
    report.add_argument("--store", required=True)
    report.add_argument("--per-cell", action="store_true")
    report.add_argument("--json", action="store_true",
                        help="emit the MatrixReport as JSON")
    report.add_argument("--html", default=None,
                        help="write a self-contained HTML dashboard here")
    report.add_argument("--baseline", default=None,
                        help="baseline store for the dashboard's "
                             "marginal-drift table (needs --html)")
    report.add_argument("--drift-threshold", type=float, default=0.05,
                        help="drift fraction highlighted in the "
                             "dashboard (default 0.05)")
    report.set_defaults(func=cmd_report)

    diff = sub.add_parser(
        "diff", help="compare two campaign stores cell by cell"
    )
    diff.add_argument("store_a")
    diff.add_argument("store_b")
    diff.add_argument(
        "--marginal-threshold", type=float, default=None,
        help="also gate per-axis marginal drift (normalised fraction); "
             "exit 1 when any marginal drifts beyond it",
    )
    diff.set_defaults(func=cmd_diff)

    search = sub.add_parser(
        "search", help="adaptive scenario search over a parameter space"
    )
    ssub = search.add_subparsers(dest="search_command", required=True)

    srun = ssub.add_parser("run", parents=[parent],
                           help="run (or resume) an adaptive search")
    srun.add_argument("--preset", choices=sorted(SEARCH_PRESETS),
                      default="cliff-smoke")
    srun.add_argument("--spec", help="search spec JSON file "
                                     "(overrides --preset)")
    srun.add_argument("--seed", type=int, default=None,
                      help="override the search seed")
    srun.set_defaults(func=cmd_search_run)

    sresume = ssub.add_parser(
        "resume", parents=[parent],
        help="finish an interrupted search from its store",
    )
    sresume.set_defaults(func=cmd_search_resume)

    for cmd in (srun, sresume):
        cmd.add_argument("--archive", default=None,
                         help="archive JSON path (default <store>"
                              ".archive.json)")

    sexport = ssub.add_parser(
        "export", help="freeze the best cells as replayable grid specs"
    )
    sreport = ssub.add_parser(
        "report", help="render a stored search archive"
    )
    for cmd in (sexport, sreport):
        cmd.add_argument("--store", default=None,
                         help="search results store (archive path is "
                              "derived from it)")
        cmd.add_argument("--archive", default=None,
                         help="search archive JSON (overrides --store)")
    sexport.add_argument("--top", type=int, default=3,
                         help="how many cliff cells to export (default 3)")
    sexport.add_argument("--out", default=None,
                         help="write the cliffs document here instead of "
                              "stdout")
    sexport.set_defaults(func=cmd_search_export)
    sreport.add_argument("--top", type=int, default=5,
                         help="rows in the top-cell table (default 5)")
    sreport.add_argument("--html", default=None,
                         help="write the self-contained search dashboard "
                              "here")
    sreport.set_defaults(func=cmd_search_report)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except KeyboardInterrupt:
        # A signal-initiated drain: the supervisor already flushed every
        # in-flight completed record and shut its workers down.
        store = getattr(args, "store", None)
        verb = (
            "search resume" if getattr(args, "search_command", None)
            else "resume"
        )
        hint = (
            f"; resume with: python -m repro.campaign {verb} "
            f"--store {store}" if store else ""
        )
        print(f"interrupted — store is consistent{hint}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except BrokenPipeError:
        # The downstream consumer (head, less ...) closed the pipe; the
        # store is already consistent — every append was atomic.
        sys.stderr.close()
        return EXIT_OK
