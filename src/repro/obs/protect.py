"""Self-protection primitives: breakers, tenant quotas, backpressure.

All three run on the *simulated* clock and are strictly opt-in — a
fabric built without them behaves byte-identically to one that never
imported this module.

* :class:`CircuitBreaker` — closed/open/half-open on consecutive
  failures, guarding broker placement and registry finds so a dark
  dependency fails fast instead of feeding every session into timeouts;
* :class:`TenantQuotas` — a per-tenant inflight cap checked at
  admission, so one noisy tenant cannot occupy the whole bounded queue;
* :class:`BackpressureSignal` — a 0..1 pressure scalar blending queue
  saturation with :class:`~repro.live.pacing.PacedRunner` catch-up lag,
  the scale-up signal :class:`~repro.load.autoscale.ReactiveAutoscaler`
  consumes ahead of raw queue depth.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import CircuitOpen, ObsError

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

#: gauge encoding of breaker state (for the metrics collectors)
STATE_CODE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker on the sim clock.

    CLOSED counts consecutive failures; at ``failure_threshold`` it
    OPENs and sheds calls for ``recovery_time`` sim seconds; then the
    first :meth:`allow` flips to HALF_OPEN and admits up to
    ``half_open_max`` probes — one success re-closes, one failure
    re-opens.  With ``enforcing=False`` the state machine runs in shadow
    mode: :meth:`guard` never raises, but every transition still lands
    in the metrics and the span stream.
    """

    def __init__(
        self,
        name: str,
        env,
        failure_threshold: int = 5,
        recovery_time: float = 5.0,
        half_open_max: int = 1,
        enforcing: bool = True,
    ) -> None:
        if failure_threshold < 1:
            raise ObsError("failure_threshold must be at least 1")
        if recovery_time <= 0:
            raise ObsError("recovery_time must be positive")
        if half_open_max < 1:
            raise ObsError("half_open_max must be at least 1")
        self.name = name
        self.env = env
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_max = half_open_max
        self.enforcing = enforcing
        self.state = CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probes = 0
        # -- accounting ----------------------------------------------------
        self.calls = 0
        self.shorted = 0
        self.successes = 0
        self.failures = 0
        #: (sim time, old state, new state) audit trail
        self.transitions: list[tuple[float, str, str]] = []
        #: subscribers ``cb(breaker, old, new)`` (obs wires spans/metrics)
        self.observers: list[Callable] = []

    def _transition(self, new: str) -> None:
        old = self.state
        if old == new:
            return
        self.state = new
        self.transitions.append((self.env.now, old, new))
        for cb in self.observers:
            cb(self, old, new)

    # -- the protocol ------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?  Drives the state machine."""
        self.calls += 1
        if self.state == OPEN:
            if self.env.now - self._opened_at >= self.recovery_time:
                self._transition(HALF_OPEN)
                self._probes = 1
                return True
            self.shorted += 1
            return False
        if self.state == HALF_OPEN:
            if self._probes < self.half_open_max:
                self._probes += 1
                return True
            self.shorted += 1
            return False
        return True

    def guard(self, what: str) -> None:
        """Raise :class:`CircuitOpen` when the call must be shed."""
        if not self.allow() and self.enforcing:
            raise CircuitOpen(
                f"{self.name} circuit is {self.state}: shedding {what} "
                f"(opened at t={self._opened_at:g}, "
                f"recovery after {self.recovery_time:g}s)"
            )

    def record_success(self) -> None:
        self.successes += 1
        self._consecutive = 0
        if self.state == HALF_OPEN:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self.failures += 1
        self._consecutive += 1
        if self.state == HALF_OPEN:
            self._opened_at = self.env.now
            self._transition(OPEN)
        elif self.state == CLOSED and self._consecutive >= self.failure_threshold:
            self._opened_at = self.env.now
            self._transition(OPEN)

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "enforcing": self.enforcing,
            "calls": self.calls,
            "shorted": self.shorted,
            "successes": self.successes,
            "failures": self.failures,
            "transitions": [list(t) for t in self.transitions],
        }


def default_tenant(spec) -> str:
    """Tenant of a scenario spec: an explicit ``tenant`` attribute when
    present, else the application kind (``spec.sim``) — the natural
    multi-tenant axis of the showfloor fabric."""
    tenant = getattr(spec, "tenant", None)
    return str(tenant) if tenant else str(spec.sim)


class TenantQuotas:
    """Per-tenant inflight cap enforced at admission time.

    A tenant's *inflight* count covers queued **and** running sessions
    (acquired at offer, released when the session finishes or the
    caller abandons), so a flood from one tenant saturates its own
    quota, not the shared bounded queue.
    """

    def __init__(
        self,
        max_inflight: int,
        tenant_of: Optional[Callable[[object], str]] = None,
    ) -> None:
        if max_inflight < 1:
            raise ObsError("per-tenant quota needs max_inflight >= 1")
        self.max_inflight = max_inflight
        self.tenant_of = tenant_of or default_tenant
        #: session name -> tenant, for every currently-held acquisition
        self._held: dict[str, str] = {}
        self._inflight: dict[str, int] = {}
        self.rejections: dict[str, int] = {}

    def try_acquire(self, spec) -> bool:
        """Count a session against its tenant; False = over quota."""
        name = spec.name
        if name in self._held:
            return True  # requeued recovery traffic already holds its seat
        tenant = self.tenant_of(spec)
        if self._inflight.get(tenant, 0) >= self.max_inflight:
            self.rejections[tenant] = self.rejections.get(tenant, 0) + 1
            return False
        self._held[name] = tenant
        self._inflight[tenant] = self._inflight.get(tenant, 0) + 1
        return True

    def release(self, name: str) -> None:
        """Free a session's seat (idempotent)."""
        tenant = self._held.pop(name, None)
        if tenant is not None:
            self._inflight[tenant] -= 1

    def inflight(self) -> dict[str, int]:
        return {t: n for t, n in sorted(self._inflight.items()) if n}

    def snapshot(self) -> dict:
        return {
            "max_inflight": self.max_inflight,
            "inflight": self.inflight(),
            "rejections": dict(sorted(self.rejections.items())),
        }


class BackpressureSignal:
    """A 0..1 pressure scalar: queue saturation vs. pacing lag.

    ``pressure() = max(queue_depth / queue_limit, behind / behind_limit)``
    clamped to [0, 1].  Queue depth alone misses the live failure mode
    where the paced kernel falls behind the wall clock while the queue
    still looks shallow; the runner's ``behind`` lag catches it.
    """

    def __init__(self, controller, runner=None, behind_limit: float = 1.0) -> None:
        if behind_limit <= 0:
            raise ObsError("behind_limit must be positive")
        self.controller = controller
        self.runner = runner
        self.behind_limit = behind_limit

    def pressure(self) -> float:
        queue = self.controller.queue_depth / max(1, self.controller.queue_limit)
        p = min(1.0, queue)
        if self.runner is not None:
            lag = min(1.0, self.runner.behind / self.behind_limit)
            if lag > p:
                p = lag
        return p

    def snapshot(self) -> dict:
        return {
            "pressure": self.pressure(),
            "queue_depth": self.controller.queue_depth,
            "queue_limit": self.controller.queue_limit,
            "behind": self.runner.behind if self.runner is not None else 0.0,
            "behind_limit": self.behind_limit,
        }
