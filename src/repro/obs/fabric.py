"""The Observability bundle: one object wiring obs into a whole fabric.

Construction is cheap and declarative::

    obs = Observability(tracing=True, breakers=True, quota=4)
    driver = FleetDriver(n_sites=4, obs=obs)          # binds env + fleet
    pool = BrokerPool.build(...); obs.attach_pool(pool)
    controller = AdmissionController(driver, ...)      # self-attaches

Every hook is pull-based or guarded behind an attribute that is ``None``
when no observability is attached, so a fabric built without an
``Observability`` runs the exact pre-obs code paths — the golden-pin
determinism tests prove byte identity.  With tracing on, spans carry
sim time only, so same-seed runs still produce identical span JSONL.

Metric names exposed (all ``repro_``-prefixed; see DESIGN.md):
admission (``repro_admission_*``), fleet (``repro_sessions_*``,
``repro_steer_*``, ``repro_find_latency_seconds``,
``repro_viz_frames_total``), pacing (``repro_pacing_*``), protection
(``repro_circuit_*``, ``repro_quota_*``, ``repro_backpressure``), chaos
(``repro_faults_*``), and the live front end (``repro_http_*``).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ObsError
from repro.obs.bridge import write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.protect import STATE_CODE, CircuitBreaker, TenantQuotas
from repro.obs.tracer import Tracer

#: breaker set created by ``breakers=True``
DEFAULT_BREAKERS = {"broker": {}, "registry": {}}


class Observability:
    """Tracer + metrics + protection, wired across one fabric."""

    def __init__(
        self,
        tracing: bool = False,
        metrics: bool = True,
        breakers=None,
        quota: Optional[int] = None,
        tenant_of=None,
        breaker_defaults: Optional[dict] = None,
    ) -> None:
        self.tracer: Optional[Tracer] = Tracer() if tracing else None
        self.metrics: Optional[MetricsRegistry] = MetricsRegistry() if metrics else None
        self.quotas: Optional[TenantQuotas] = (
            TenantQuotas(int(quota), tenant_of=tenant_of) if quota else None
        )
        if breakers in (None, False):
            self._breaker_spec = {}
        elif breakers is True:
            self._breaker_spec = {k: dict(v) for k, v in DEFAULT_BREAKERS.items()}
        else:
            self._breaker_spec = {k: dict(v) for k, v in dict(breakers).items()}
        if breaker_defaults:
            for kwargs in self._breaker_spec.values():
                for k, v in breaker_defaults.items():
                    kwargs.setdefault(k, v)
        self.breakers: dict[str, CircuitBreaker] = {}
        self.env = None
        self.driver = None
        #: breaker name -> open "circuit-open" span (tracing only)
        self._open_spans: dict = {}
        #: id(fault) -> fault-window span (tracing only)
        self._fault_spans: dict = {}

    # -- binding -----------------------------------------------------------

    def bind_env(self, env) -> "Observability":
        """Attach the sim clock; creates the breakers (idempotent)."""
        if self.env is not None:
            if self.env is not env:
                raise ObsError("observability is already bound to another world")
            return self
        self.env = env
        if self.tracer is not None:
            self.tracer.bind(env)
        for name, kwargs in self._breaker_spec.items():
            breaker = CircuitBreaker(name, env, **kwargs)
            breaker.observers.append(self._on_breaker_transition)
            self.breakers[name] = breaker
        if self.metrics is not None and self.breakers:
            self.metrics.add_collector(self._collect_breakers)
        return self

    def breaker(self, name: str) -> Optional[CircuitBreaker]:
        return self.breakers.get(name)

    def bind_driver(self, driver) -> "Observability":
        """Called by ``FleetDriver.__init__`` when built with ``obs=``."""
        if self.driver is not None and self.driver is not driver:
            raise ObsError("observability is already bound to another driver")
        self.bind_env(driver.env)
        self.driver = driver
        driver._tracer = self.tracer
        driver._registry_breaker = self.breakers.get("registry")
        metrics = self.metrics
        if metrics is not None:
            driver._steer_hist = metrics.histogram(
                "repro_steer_latency_seconds", "Per-op steering round-trip (sim s)"
            )
            driver._find_hist = metrics.histogram(
                "repro_find_latency_seconds", "Registry find latency (sim s)"
            )
            driver._op_counter = metrics.counter(
                "repro_steer_ops_total", "Steering ops by outcome", labels=("outcome",)
            )
            driver._viz_counter = metrics.counter(
                "repro_viz_frames_total", "Samples ingested by viz services"
            )
            self._wire_fleet_collector(driver)
        return self

    def _wire_fleet_collector(self, driver) -> None:
        metrics = self.metrics
        g_active = metrics.gauge("repro_sessions_active", "Sessions running right now")
        g_sites = metrics.gauge("repro_sites", "Service sites in the fabric")
        c_outcome = metrics.counter(
            "repro_sessions_total", "Finished sessions by outcome", labels=("outcome",)
        )
        c_timeouts = metrics.counter("repro_steer_timeouts_total", "Steering op timeouts")
        c_errors = metrics.counter("repro_steer_errors_total", "Steering op errors")

        def collect() -> None:
            totals = driver.telemetry.totals()
            g_active.set(len(driver.active))
            g_sites.set(len(driver.sites))
            c_outcome.set_total(totals["completed"], outcome="completed")
            c_outcome.set_total(totals["failed"], outcome="failed")
            c_timeouts.set_total(totals["timeouts"])
            c_errors.set_total(totals["errors"])

        metrics.add_collector(collect)

    # -- component attachment ----------------------------------------------

    def attach_controller(self, controller) -> None:
        """Called by ``AdmissionController.__init__`` via ``driver.obs``."""
        controller.tracer = self.tracer
        controller.quotas = self.quotas
        metrics = self.metrics
        if metrics is None:
            return
        wait_hist = metrics.histogram(
            "repro_admission_wait_seconds", "Admission queue wait (sim s)"
        )

        def on_queue_event(kind: str, **detail) -> None:
            if kind == "admit":
                wait_hist.observe(detail["wait"])

        controller.observers.append(on_queue_event)

        c_offered = metrics.counter("repro_admission_offered_total", "Sessions offered")
        c_admitted = metrics.counter("repro_admission_admitted_total", "Sessions admitted")
        c_rejected = metrics.counter(
            "repro_admission_rejected_total", "Sessions rejected (backpressure + quota)"
        )
        c_abandoned = metrics.counter(
            "repro_admission_abandoned_total", "Sessions that ran out of patience"
        )
        c_requeued = metrics.counter(
            "repro_admission_requeued_total", "Recovery requeues (subset of offered)"
        )
        g_depth = metrics.gauge("repro_admission_queue_depth", "Queued sessions")
        g_limit = metrics.gauge("repro_admission_queue_limit", "Bounded queue size")

        def collect() -> None:
            queue = controller.telemetry
            c_offered.set_total(queue.offered)
            c_admitted.set_total(queue.admitted)
            c_rejected.set_total(queue.rejected)
            c_abandoned.set_total(queue.abandoned)
            c_requeued.set_total(queue.requeued)
            g_depth.set(controller.queue_depth)
            g_limit.set(controller.queue_limit)

        metrics.add_collector(collect)
        if self.quotas is not None:
            self._wire_quota_collector()

    def _wire_quota_collector(self) -> None:
        metrics, quotas = self.metrics, self.quotas
        g_inflight = metrics.gauge(
            "repro_quota_inflight", "Inflight sessions per tenant", labels=("tenant",)
        )
        c_rejected = metrics.counter(
            "repro_quota_rejected_total", "Offers shed by tenant quota", labels=("tenant",)
        )
        g_limit = metrics.gauge("repro_quota_max_inflight", "Per-tenant inflight cap")

        def collect() -> None:
            g_limit.set(quotas.max_inflight)
            for tenant, n in quotas._inflight.items():
                g_inflight.set(n, tenant=tenant)
            for tenant, n in quotas.rejections.items():
                c_rejected.set_total(n, tenant=tenant)

        metrics.add_collector(collect)

    def attach_pool(self, pool) -> None:
        """Wire span + breaker hooks into a :class:`BrokerPool`.

        Call after :meth:`bind_driver` (or :meth:`bind_env`) so the
        breakers exist — they need the sim clock."""
        pool.tracer = self.tracer
        pool.breaker = self.breakers.get("broker")

    def attach_runner(self, runner) -> None:
        """Scrape a :class:`PacedRunner`'s catch-up accounting."""
        metrics = self.metrics
        if metrics is None:
            return
        c_ticks = metrics.counter("repro_pacing_ticks_total", "Runner ticks that stepped")
        c_catchups = metrics.counter(
            "repro_pacing_catchups_total", "Full batches that still left due events"
        )
        c_events = metrics.counter("repro_pacing_events_total", "Events stepped under pacing")
        g_behind = metrics.gauge(
            "repro_pacing_behind_seconds", "Current lag behind the wall clock"
        )
        g_max_behind = metrics.gauge(
            "repro_pacing_max_behind_seconds", "Worst observed pacing lag"
        )
        g_rate = metrics.gauge(
            "repro_pacing_rate", "Sim seconds per wall second (0 = turbo)"
        )

        def collect() -> None:
            stats = runner.stats()
            c_ticks.set_total(stats["ticks"])
            c_catchups.set_total(stats["catchups"])
            c_events.set_total(stats["events"])
            g_behind.set(stats["behind"])
            g_max_behind.set(stats["max_behind"])
            g_rate.set(stats["rate"] if stats["rate"] is not None else 0.0)

        metrics.add_collector(collect)

    def attach_backpressure(self, signal) -> None:
        metrics = self.metrics
        if metrics is None:
            return
        g_pressure = metrics.gauge(
            "repro_backpressure", "Fabric pressure signal in [0, 1]"
        )
        metrics.add_collector(lambda: g_pressure.set(signal.pressure()))

    def attach_injector(self, injector) -> None:
        """Mirror chaos fault windows into metrics and fabric-lane spans."""
        metrics, tracer = self.metrics, self.tracer
        c_faults = g_active = None
        if metrics is not None:
            c_faults = metrics.counter(
                "repro_faults_total", "Faults applied", labels=("kind",)
            )
            g_active = metrics.gauge(
                "repro_faults_active", "Faults currently applied", labels=("kind",)
            )

        def on_fault(fault, phase: str) -> None:
            kind = type(fault).__name__
            if phase == "apply":
                if c_faults is not None:
                    c_faults.inc(kind=kind)
                    g_active.inc(kind=kind)
                if tracer is not None:
                    self._fault_spans[id(fault)] = tracer.begin(
                        f"fault:{kind}", cat="chaos", detail=fault.describe()
                    )
            elif phase == "revert":
                if g_active is not None:
                    g_active.dec(kind=kind)
                span = self._fault_spans.pop(id(fault), None)
                if span is not None:
                    tracer.end(span)

        injector.on_fault.append(on_fault)

    def attach_http_stats(self, stats: dict) -> None:
        """Scrape a LiveServer's request counters."""
        metrics = self.metrics
        if metrics is None:
            return
        counters = {
            key: metrics.counter(f"repro_http_{key}_total", f"HTTP {key.replace('_', ' ')}")
            for key in stats
        }

        def collect() -> None:
            for key, counter in counters.items():
                counter.set_total(stats[key])

        metrics.add_collector(collect)

    # -- breaker observability ---------------------------------------------

    def _on_breaker_transition(self, breaker, old: str, new: str) -> None:
        metrics, tracer = self.metrics, self.tracer
        if metrics is not None:
            metrics.counter(
                "repro_circuit_transitions_total",
                "Breaker state transitions",
                labels=("breaker", "to"),
            ).inc(breaker=breaker.name, to=new)
        if tracer is not None:
            if new == "open":
                self._open_spans[breaker.name] = tracer.begin(
                    "circuit-open", cat="protect", breaker=breaker.name
                )
            else:
                span = self._open_spans.pop(breaker.name, None)
                if span is not None:
                    tracer.end(span, to=new)
                if new != "closed":
                    tracer.instant(
                        f"circuit-{new}", cat="protect", breaker=breaker.name
                    )

    def _collect_breakers(self) -> None:
        metrics = self.metrics
        g_state = metrics.gauge(
            "repro_circuit_state",
            "Breaker state (0 closed, 1 half-open, 2 open)",
            labels=("breaker",),
        )
        c_calls = metrics.counter(
            "repro_circuit_calls_total",
            "Guarded calls by outcome",
            labels=("breaker", "outcome"),
        )
        for name, breaker in self.breakers.items():
            g_state.set(STATE_CODE[breaker.state], breaker=name)
            c_calls.set_total(breaker.successes, breaker=name, outcome="success")
            c_calls.set_total(breaker.failures, breaker=name, outcome="failure")
            c_calls.set_total(breaker.shorted, breaker=name, outcome="shorted")

    # -- artifacts ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able obs dump for batch runs (metrics + protection)."""
        return {
            "metrics": self.metrics.snapshot() if self.metrics is not None else None,
            "trace": self.tracer.counts() if self.tracer is not None else None,
            "breakers": {n: b.snapshot() for n, b in sorted(self.breakers.items())},
            "quotas": self.quotas.snapshot() if self.quotas is not None else None,
        }

    def write_trace(self, path, profiler=None) -> int:
        """Dump the span stream (plus optional profiler lane) as JSONL."""
        if self.tracer is None:
            raise ObsError("this Observability was built with tracing=False")
        return write_chrome_trace(path, self.tracer, profiler=profiler)
