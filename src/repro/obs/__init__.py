"""repro.obs — causal spans, metrics, and self-protection for the fabric.

Three pillars (see DESIGN.md "Observability"):

* :mod:`repro.obs.tracer` — deterministic sim-time span trees
  (``session -> admit -> place -> connect -> steer-op -> viz-frame``)
  exported as Chrome-trace/Perfetto JSONL;
* :mod:`repro.obs.metrics` — a counter/gauge/histogram registry with
  Prometheus text exposition (``GET /metricsz``) and JSON snapshots;
* :mod:`repro.obs.protect` — circuit breakers, per-tenant quotas, and
  the backpressure signal the autoscaler consumes.

:class:`~repro.obs.fabric.Observability` bundles them and wires the
hooks; a fabric built without one runs byte-identically to pre-obs code.
"""

from repro.obs.bridge import chrome_events, write_chrome_trace
from repro.obs.fabric import Observability
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.protect import (
    BackpressureSignal,
    CircuitBreaker,
    TenantQuotas,
    default_tenant,
)
from repro.obs.tracer import Span, Tracer

__all__ = [
    "BackpressureSignal",
    "CircuitBreaker",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "TenantQuotas",
    "Tracer",
    "chrome_events",
    "default_tenant",
    "write_chrome_trace",
]
