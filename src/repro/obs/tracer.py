"""Causal sim-time spans for the steering fabric.

A :class:`Tracer` threads one span context through the session
lifecycle — ``session -> admit -> place -> connect -> steer-op ->
viz-frame`` — so an operator can answer *why was this steer slow* with a
tree, not a quantile.  Spans carry **virtual time only**: ids are
assigned in creation order and every timestamp is ``env.now``, so two
same-seed runs emit byte-identical span streams (the DES kernel already
guarantees the creation order).  Wall-time attribution lives in
:mod:`repro.perf.profiler`; :mod:`repro.obs.bridge` lays the two side by
side in one Perfetto file.

Export is Chrome-trace/Perfetto JSON events (``ph: "X"`` complete spans,
``ph: "i"`` instants, ``ph: "M"`` thread names), one event per line in
:meth:`Tracer.write_jsonl`.  Each session gets its own ``tid`` lane;
fabric-wide spans (circuit transitions, chaos fault windows) share lane
0.  Parent/child causality rides in ``args.span_id`` / ``args.parent_id``
— Perfetto renders the time nesting, tools read the exact tree.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.errors import ObsError

#: lane name for spans not owned by any one session
FABRIC = "fabric"


class Span:
    """One timed node in the causal tree (sim-time only)."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "cat",
        "session",
        "start",
        "end",
        "attrs",
        "events",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        cat: str,
        session: Optional[str],
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.session = session
        self.start = start
        self.end: Optional[float] = None
        self.attrs: dict = {}
        #: instant markers inside this span: (name, sim time, attrs)
        self.events: list[tuple[str, float, dict]] = []


class Tracer:
    """Collects a deterministic span tree over one simulated world."""

    def __init__(self, env=None) -> None:
        self._env = env
        self.spans: list[Span] = []
        self._next_id = 1
        #: session name -> root span (the per-session lane anchor)
        self._roots: dict[str, Span] = {}
        #: session name -> admit span (queue wait; parents the lifecycle)
        self._admits: dict[str, Span] = {}

    # -- clock -------------------------------------------------------------

    def bind(self, env) -> "Tracer":
        """Attach the simulated clock (idempotent for the same env)."""
        if self._env is not None and self._env is not env:
            raise ObsError("tracer is already bound to another environment")
        self._env = env
        return self

    @property
    def now(self) -> float:
        if self._env is None:
            raise ObsError("tracer has no environment bound; call bind(env)")
        return self._env.now

    # -- span lifecycle ----------------------------------------------------

    def begin(
        self,
        name: str,
        cat: str = "fabric",
        parent: Optional[Span] = None,
        session: Optional[str] = None,
        **attrs,
    ) -> Span:
        if session is None and parent is not None:
            session = parent.session
        span = Span(
            self._next_id,
            parent.span_id if parent is not None else None,
            name,
            cat,
            session,
            self.now,
        )
        self._next_id += 1
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        if attrs:
            span.attrs.update(attrs)
        span.end = self.now
        return span

    def event(self, span: Span, name: str, **attrs) -> None:
        """An instant marker inside (and causally under) a span."""
        span.events.append((name, self.now, attrs))

    def instant(self, name: str, parent: Optional[Span] = None, **attrs) -> Span:
        """A zero-duration span: an instant that still sits in the tree."""
        span = self.begin(name, parent=parent, **attrs)
        span.end = span.start
        return span

    # -- session registry --------------------------------------------------

    def open_session(self, name: str, **attrs) -> Span:
        """Get or create the root span of a session's lane.

        The first component to see the session opens it — the admission
        controller at offer time, or the driver at launch for batch
        fleets — and everything later parents under the same root.
        """
        root = self._roots.get(name)
        if root is None:
            root = self.begin("session", cat="session", session=name, **attrs)
            self._roots[name] = root
        elif attrs:
            root.attrs.update(attrs)
        return root

    def session_root(self, name: str) -> Optional[Span]:
        return self._roots.get(name)

    def record_admit(self, name: str, span: Span) -> Span:
        self._admits[name] = span
        return span

    def admit_span(self, name: str) -> Optional[Span]:
        return self._admits.get(name)

    def close_session(self, name: str, outcome: str) -> None:
        root = self._roots.get(name)
        if root is not None and root.end is None:
            self.end(root, outcome=outcome)

    # -- introspection -----------------------------------------------------

    def counts(self) -> dict:
        """Span totals by name — the cheap smoke-test surface."""
        by_name: dict[str, int] = {}
        for span in self.spans:
            by_name[span.name] = by_name.get(span.name, 0) + 1
        return {
            "spans": len(self.spans),
            "sessions": len(self._roots),
            "by_name": dict(sorted(by_name.items())),
        }

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def ancestry(self, span: Span) -> list[Span]:
        """The parent chain from ``span`` up to its root, inclusive."""
        by_id = {s.span_id: s for s in self.spans}
        chain = [span]
        while chain[-1].parent_id is not None:
            chain.append(by_id[chain[-1].parent_id])
        return chain

    # -- export ------------------------------------------------------------

    def _lanes(self) -> dict[str, int]:
        """Deterministic tid per lane: fabric is 0, sessions by first use."""
        lanes = {FABRIC: 0}
        for span in self.spans:
            lane = span.session or FABRIC
            if lane not in lanes:
                lanes[lane] = len(lanes)
        return lanes

    def to_events(self) -> list[dict]:
        """Chrome-trace events (``ts``/``dur`` in sim microseconds)."""
        lanes = self._lanes()
        out: list[dict] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": lane},
            }
            for lane, tid in lanes.items()
        ]
        horizon = self.now if self._env is not None else 0.0
        for span in self.spans:
            tid = lanes[span.session or FABRIC]
            end = span.end if span.end is not None else max(horizon, span.start)
            args = {"span_id": span.span_id, "parent_id": span.parent_id}
            if span.end is None:
                args["open"] = True
            args.update(span.attrs)
            out.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "name": span.name,
                    "cat": span.cat,
                    "ts": span.start * 1e6,
                    "dur": (end - span.start) * 1e6,
                    "args": args,
                }
            )
            for name, ts, attrs in span.events:
                iargs = {"span_id": span.span_id}
                iargs.update(attrs)
                out.append(
                    {
                        "ph": "i",
                        "pid": 1,
                        "tid": tid,
                        "name": name,
                        "cat": span.cat,
                        "ts": ts * 1e6,
                        "s": "t",
                        "args": iargs,
                    }
                )
        return out

    def write_jsonl(self, path) -> int:
        """One Chrome-trace event per line; returns the event count.

        Pure sim-time payload, serialized with sorted keys — the
        deterministic artifact the golden tests hash.  Perfetto opens
        JSONL directly; :func:`repro.obs.bridge.write_chrome_trace` adds
        the wall-time profiler lane when one is wanted.
        """
        events = self.to_events()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(json.dumps(event, sort_keys=True) + "\n")
        return len(events)
