"""Bridge sim-time causality and wall-time attribution in one trace.

The :class:`~repro.obs.tracer.Tracer` answers *what caused what* in
virtual time; the :class:`~repro.perf.profiler.Profiler` answers *where
the wall clock went* per kernel component.  Perfetto can show both at
once: this module writes a single Chrome-trace file with the span tree
on pid 1 (sim microseconds) and the profiler's per-component totals as
a synthetic lane on pid 2 (wall microseconds, laid end to end in
descending cost order, so the lane reads as a flame-graph footer).

Only the pid-1 payload is deterministic; the pid-2 lane carries real
wall time and is for eyeballs, not for golden pins — use
:meth:`Tracer.write_jsonl` when byte-stability matters.
"""

from __future__ import annotations

import json
from typing import Optional


def chrome_events(tracer, profiler=None) -> list[dict]:
    """Tracer events plus an optional profiler wall-time lane."""
    events = list(tracer.to_events())
    if profiler is None:
        return events
    events.append(
        {
            "ph": "M",
            "pid": 2,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "wall-time (profiler)"},
        }
    )
    report = profiler.report()
    cursor = 0.0
    for row in report["components"]:
        dur = row["seconds"] * 1e6
        events.append(
            {
                "ph": "X",
                "pid": 2,
                "tid": 0,
                "name": row["component"],
                "cat": "wall",
                "ts": cursor,
                "dur": dur,
                "args": {"calls": row["calls"], "seconds": row["seconds"]},
            }
        )
        cursor += dur
    events.append(
        {
            "ph": "i",
            "pid": 2,
            "tid": 0,
            "name": "totals",
            "cat": "wall",
            "ts": cursor,
            "s": "p",
            "args": {
                "wall_seconds": report["wall_seconds"],
                "events": report["events"],
                "events_per_sec": report["events_per_sec"],
            },
        }
    )
    return events


def write_chrome_trace(path, tracer, profiler=None) -> int:
    """Write the combined trace as JSONL; returns the event count.

    ``chrome://tracing`` and https://ui.perfetto.dev open the file
    directly (the JSON-lines form of the Trace Event format).
    """
    events = chrome_events(tracer, profiler=profiler)
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return len(events)
