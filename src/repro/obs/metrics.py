"""A lightweight Prometheus-style metrics registry.

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — registered on a :class:`MetricsRegistry` that
renders the Prometheus text exposition format (``# HELP`` / ``# TYPE``,
cumulative ``_bucket{le=...}`` series) for ``GET /metricsz`` and a
JSON-able :meth:`MetricsRegistry.snapshot` for batch runs.

Hot paths push (``counter.inc()``, ``hist.observe()``) only when the
fabric was built with observability attached; everything that already
has a ledger — :class:`~repro.fleet.telemetry.FleetTelemetry`, the
queue telemetry, :class:`~repro.live.pacing.PacedRunner` — is scraped
by pull *collectors* run at exposition time, so steady-state overhead is
a handful of attribute reads per scrape, not per event.
"""

from __future__ import annotations

import re
from typing import Callable, Optional

from repro.errors import ObsError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default latency buckets, in (sim) seconds
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integers without the trailing .0."""
    if isinstance(value, bool):
        return "1" if value else "0"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class _Family:
    """One metric family: a name, a kind, and labeled series."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise ObsError(f"bad metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ObsError(f"bad label name {label!r} on metric {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._label_set = frozenset(label_names)
        #: label-value tuple -> series state
        self.series: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        # Hot path: pushes happen per steering op / viz frame, so the
        # label check must not allocate when it passes.
        if not labels:
            if not self.label_names:
                return ()
        elif labels.keys() == self._label_set:
            return tuple(str(labels[k]) for k in self.label_names)
        raise ObsError(
            f"metric {self.name!r} takes labels {list(self.label_names)}, "
            f"got {sorted(labels)}"
        )

    def _labels_str(self, key: tuple, extra: str = "") -> str:
        parts = [f'{k}="{_escape(v)}"' for k, v in zip(self.label_names, key)]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def expose(self) -> list[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.kind}"]
        for key in sorted(self.series):
            lines.extend(self._expose_series(key))
        return lines

    def _expose_series(self, key: tuple) -> list[str]:
        raise NotImplementedError

    def snapshot_series(self, key: tuple):
        raise NotImplementedError

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "help": self.help,
            "series": [
                {
                    "labels": dict(zip(self.label_names, key)),
                    "value": self.snapshot_series(key),
                }
                for key in sorted(self.series)
            ],
        }


class Counter(_Family):
    """Monotone counter; collectors may sync it to an external total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def set_total(self, total: float, **labels) -> None:
        """Pull-collector hook: adopt a monotone total kept elsewhere."""
        key = self._key(labels)
        current = self.series.get(key, 0.0)
        if total < current:
            raise ObsError(
                f"counter {self.name!r} would decrease ({current} -> {total})"
            )
        self.series[key] = float(total)

    def value(self, **labels) -> float:
        return float(self.series.get(self._key(labels), 0.0))

    def _expose_series(self, key: tuple) -> list[str]:
        return [f"{self.name}{self._labels_str(key)} {_fmt(self.series[key])}"]

    def snapshot_series(self, key: tuple) -> float:
        return float(self.series[key])


class Gauge(_Family):
    """A value that goes up and down (depths, states, pressure)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self.series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return float(self.series.get(self._key(labels), 0.0))

    def _expose_series(self, key: tuple) -> list[str]:
        return [f"{self.name}{self._labels_str(key)} {_fmt(self.series[key])}"]

    def snapshot_series(self, key: tuple) -> float:
        return float(self.series[key])


class Histogram(_Family):
    """Cumulative-bucket histogram in the Prometheus layout."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ObsError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        state = self.series.get(key)
        if state is None:
            state = [[0] * len(self.buckets), 0.0, 0]  # per-bucket, sum, count
            self.series[key] = state
        counts, _, _ = state
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        state[1] += value
        state[2] += 1

    def _expose_series(self, key: tuple) -> list[str]:
        counts, total, n = self.series[key]
        lines = []
        cumulative = 0
        for bound, c in zip(self.buckets, counts):
            cumulative += c
            le = 'le="' + _fmt(bound) + '"'
            lines.append(f"{self.name}_bucket{self._labels_str(key, extra=le)} {cumulative}")
        inf = 'le="+Inf"'
        lines.append(f"{self.name}_bucket{self._labels_str(key, extra=inf)} {n}")
        lines.append(f"{self.name}_sum{self._labels_str(key)} {_fmt(total)}")
        lines.append(f"{self.name}_count{self._labels_str(key)} {n}")
        return lines

    def snapshot_series(self, key: tuple) -> dict:
        counts, total, n = self.series[key]
        return {
            "buckets": {_fmt(b): c for b, c in zip(self.buckets, counts)},
            "sum": total,
            "count": n,
        }


class MetricsRegistry:
    """Registration, pull collectors, and exposition."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []

    def _register(self, family: _Family) -> _Family:
        existing = self._families.get(family.name)
        if existing is not None:
            if type(existing) is not type(family) or existing.label_names != family.label_names:
                raise ObsError(
                    f"metric {family.name!r} re-registered with a different shape"
                )
            return existing
        self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter(name, help, tuple(labels)))

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge(name, help, tuple(labels)))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, tuple(labels), buckets=buckets))

    def get(self, name: str) -> Optional[_Family]:
        return self._families.get(name)

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a pull hook run before every exposition/snapshot."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn()

    def render(self) -> str:
        """The Prometheus text exposition (runs the collectors first)."""
        self.collect()
        lines: list[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].expose())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-able dump of every family — the batch-run artifact."""
        self.collect()
        return {name: self._families[name].snapshot() for name in sorted(self._families)}
