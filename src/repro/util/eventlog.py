"""Structured in-memory event log.

Distributed-scenario tests need to assert on *what happened when* across
many components; stdout logging is useless for that.  Components append
:class:`LogRecord` entries to a shared :class:`EventLog`; tests and benches
query by component/kind/time window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class LogRecord:
    time: float
    component: str
    kind: str
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.4f}] {self.component:<24} {self.kind} {kv}".rstrip()


class EventLog:
    """Append-only log with simple filtering queries."""

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._records: list[LogRecord] = []
        self._clock = clock or (lambda: 0.0)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach a time source (usually ``env.now`` of the DES kernel)."""
        self._clock = clock

    def emit(self, component: str, kind: str, **detail: Any) -> LogRecord:
        rec = LogRecord(self._clock(), component, kind, detail)
        self._records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def select(
        self,
        component: str | None = None,
        kind: str | None = None,
        t0: float = float("-inf"),
        t1: float = float("inf"),
    ) -> list[LogRecord]:
        """Records matching all given filters, in emission order."""
        return [
            r
            for r in self._records
            if (component is None or r.component == component)
            and (kind is None or r.kind == kind)
            and t0 <= r.time < t1
        ]

    def first(self, **kw) -> LogRecord:
        recs = self.select(**kw)
        if not recs:
            raise LookupError(f"no log records matching {kw}")
        return recs[0]

    def dump(self) -> str:
        return "\n".join(str(r) for r in self._records)
