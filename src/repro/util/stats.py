"""Running statistics and time-series helpers used by benches and tests."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm).

    Used to summarise per-frame latencies, per-step overheads etc. without
    storing every sample.
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(n={self.n}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


def percentile(samples, q: float) -> float:
    """Linear-interpolation percentile of a sequence (q in [0, 100])."""
    data = sorted(samples)
    if not data:
        raise ValueError("percentile of empty sequence")
    if len(data) == 1:
        return float(data[0])
    pos = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


@dataclass
class Timeline:
    """A (time, value) series, e.g. order parameter vs simulation time."""

    times: list = field(default_factory=list)
    values: list = field(default_factory=list)

    def record(self, t: float, v) -> None:
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def last(self):
        if not self.values:
            raise IndexError("empty timeline")
        return self.values[-1]

    def window(self, t0: float, t1: float) -> "Timeline":
        """Sub-series with t0 <= t < t1."""
        out = Timeline()
        for t, v in zip(self.times, self.values):
            if t0 <= t < t1:
                out.record(t, v)
        return out
