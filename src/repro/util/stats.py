"""Running statistics and time-series helpers used by benches and tests.

Fleet-scale telemetry (``repro.fleet.telemetry``) aggregates hundreds of
per-session accumulators, so the streaming types here are *mergeable*:
:meth:`RunningStats.merge` folds two Welford accumulators exactly, and
:class:`ReservoirSample` supports a weighted union that preserves the
uniform-sample property.  :class:`P2Quantile` estimates one quantile in
O(1) space for the single-stream case.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


class RunningStats:
    """Streaming mean/variance/min/max (Welford's algorithm).

    Used to summarise per-frame latencies, per-step overheads etc. without
    storing every sample.
    """

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    def state(self) -> dict:
        """JSON-able snapshot of the accumulator.

        Floats survive a JSON round trip exactly (repr-based encoding),
        so ``from_state(json.loads(json.dumps(s.state())))`` merges
        byte-identically to the original accumulator — the property the
        campaign layer leans on to merge per-cell statistics recorded by
        worker *processes* through the JSONL results store.
        """
        return {
            "n": self.n,
            "mean": self._mean,
            "m2": self._m2,
            "min": None if self.n == 0 else self.min,
            "max": None if self.n == 0 else self.max,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RunningStats":
        """Rebuild an accumulator from :meth:`state` output."""
        out = cls()
        out.n = int(state["n"])
        out._mean = float(state["mean"])
        out._m2 = float(state["m2"])
        if out.n:
            out.min = float(state["min"])
            out.max = float(state["max"])
        return out

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Fold another accumulator into this one, in place.

        Uses the parallel-variance combination (Chan et al.), so merging
        per-session accumulators gives exactly the statistics of the
        concatenated sample streams.  Returns ``self`` for chaining.
        """
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        n = self.n + other.n
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * (self.n * other.n) / n
        self._mean += delta * (other.n / n)
        self.n = n
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        return self

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(n={self.n}, mean={self.mean:.6g}, "
            f"stdev={self.stdev:.6g}, min={self.min:.6g}, max={self.max:.6g})"
        )


def percentile(samples, q: float) -> float:
    """Linear-interpolation percentile of a sequence (q in [0, 100])."""
    data = sorted(samples)
    if not data:
        raise ValueError("percentile of empty sequence")
    if len(data) == 1:
        return float(data[0])
    pos = (q / 100.0) * (len(data) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class P2Quantile:
    """Streaming single-quantile estimator (Jain & Chlamtac's P² algorithm).

    Tracks one quantile ``q`` in O(1) space with five markers whose heights
    are adjusted by a piecewise-parabolic fit as observations arrive.  For
    fewer than five observations the exact sample quantile is returned.
    """

    __slots__ = ("q", "n", "_heights", "_pos", "_desired", "_dn")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q!r}")
        self.q = q
        self.n = 0
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._dn = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, x: float) -> None:
        x = float(x)
        self.n += 1
        if len(self._heights) < 5:
            self._heights.append(x)
            self._heights.sort()
            return
        h, pos = self._heights, self._pos
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = next(i for i in range(4) if h[i] <= x < h[i + 1])
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._dn[i]
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                cand = self._parabolic(i, step)
                if not h[i - 1] < cand < h[i + 1]:
                    cand = self._linear(i, step)
                h[i] = cand
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        if self.n == 0:
            return math.nan
        if len(self._heights) < 5 or self.n <= 5:
            return percentile(self._heights[: self.n], self.q * 100.0)
        return self._heights[2]


class ReservoirSample:
    """Fixed-size uniform sample of an unbounded stream (algorithm R).

    The reservoir is *mergeable*: :meth:`merge` performs a weighted union
    of two reservoirs so that the result is (approximately) a uniform
    sample of the concatenated streams — the property fleet telemetry
    needs to aggregate per-session latency percentiles without keeping
    every observation.
    """

    __slots__ = ("capacity", "n", "_rng", "_items")

    def __init__(self, capacity: int = 256, seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.n = 0
        self._rng = random.Random(seed)
        self._items: list[float] = []

    def add(self, x: float) -> None:
        self.n += 1
        if len(self._items) < self.capacity:
            self._items.append(float(x))
            return
        j = self._rng.randrange(self.n)
        if j < self.capacity:
            self._items[j] = float(x)

    def extend(self, xs) -> None:
        for x in xs:
            self.add(x)

    def merge(self, other: "ReservoirSample") -> "ReservoirSample":
        """Weighted union with another reservoir, in place; returns self."""
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self._items = list(other._items)
            if len(self._items) > self.capacity:
                self._items = self._rng.sample(self._items, self.capacity)
            return self
        a, b = list(self._items), list(other._items)
        # Each retained item stands for n/len(items) observations of its
        # stream; draw from the two pools proportionally to the weight of
        # what remains in each.
        wa, wb = float(self.n), float(other.n)
        da, db = self.n / len(a), other.n / len(b)
        merged: list[float] = []
        while (a or b) and len(merged) < self.capacity:
            take_a = bool(a) and (
                not b or self._rng.random() < wa / (wa + wb)
            )
            if take_a:
                merged.append(a.pop(self._rng.randrange(len(a))))
                wa -= da
            else:
                merged.append(b.pop(self._rng.randrange(len(b))))
                wb -= db
        self._items = merged
        self.n += other.n
        return self

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in [0, 100]) of the stream."""
        if not self._items:
            raise ValueError("percentile of an empty reservoir")
        return percentile(self._items, q)

    @property
    def items(self) -> tuple:
        """The retained sample, in reservoir order (deterministic for a
        seeded stream) — the exportable half of the reservoir, used to
        re-estimate percentiles after a cross-process merge."""
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)


@dataclass
class Timeline:
    """A (time, value) series, e.g. order parameter vs simulation time."""

    times: list = field(default_factory=list)
    values: list = field(default_factory=list)

    def record(self, t: float, v) -> None:
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.times)

    def last(self):
        if not self.values:
            raise IndexError("empty timeline")
        return self.values[-1]

    def window(self, t0: float, t1: float) -> "Timeline":
        """Sub-series with t0 <= t < t1."""
        out = Timeline()
        for t, v in zip(self.times, self.values):
            if t0 <= t < t1:
                out.record(t, v)
        return out
