"""Small shared utilities: id generation, statistics, event logging."""

from repro.util.ids import IdAllocator, token_hex
from repro.util.stats import RunningStats, Timeline, percentile
from repro.util.eventlog import EventLog, LogRecord

__all__ = [
    "IdAllocator",
    "token_hex",
    "RunningStats",
    "Timeline",
    "percentile",
    "EventLog",
    "LogRecord",
]
