"""Small shared utilities: id generation, statistics, event logging."""

from repro.util.ids import IdAllocator, token_hex
from repro.util.stats import (
    P2Quantile,
    ReservoirSample,
    RunningStats,
    Timeline,
    percentile,
)
from repro.util.eventlog import EventLog, LogRecord

__all__ = [
    "IdAllocator",
    "token_hex",
    "RunningStats",
    "P2Quantile",
    "ReservoirSample",
    "Timeline",
    "percentile",
    "EventLog",
    "LogRecord",
]
