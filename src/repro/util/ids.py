"""Deterministic identifier generation.

Everything in the simulated grid needs unique names (data objects, grid
service handles, job identifiers).  Real systems use UUIDs; we use
deterministic counters seeded per allocator so that runs are reproducible
and test assertions can name the ids they expect.
"""

from __future__ import annotations

import itertools
import random


class IdAllocator:
    """Allocates ``prefix-N`` style unique identifiers.

    Parameters
    ----------
    prefix:
        Human-readable namespace, e.g. ``"job"`` or ``"gsh"``.
    start:
        First counter value (default 1).
    """

    def __init__(self, prefix: str, start: int = 1) -> None:
        self.prefix = prefix
        self._counter = itertools.count(start)

    def next(self) -> str:
        """Return the next identifier in this namespace."""
        return f"{self.prefix}-{next(self._counter)}"

    def __call__(self) -> str:
        return self.next()


def token_hex(rng: random.Random, nbytes: int = 8) -> str:
    """Deterministic stand-in for :func:`secrets.token_hex`.

    Uses the caller's seeded ``random.Random`` so that security tokens in
    the simulated middleware are reproducible across runs.
    """
    return "".join(f"{rng.randrange(256):02x}" for _ in range(nbytes))
