"""Parallel-computing substrate.

PEPC is "a new plasma simulation code" running on massively parallel
systems (paper section 3.4); LB3D ran on an SGI Onyx.  This package gives
the simulations a parallel harness without real MPI:

* :mod:`repro.parallel.comm` — a deterministic in-process SPMD runtime:
  rank programs are generators yielding MPI-like operations (send/recv,
  bcast, reduce, allgather, barrier) matched by a lockstep scheduler.
* :mod:`repro.parallel.decomp` — domain decomposition helpers, including
  the Morton space-filling-curve keys PEPC's hashed oct-tree uses.
* :mod:`repro.parallel.collectives` — alpha-beta (latency-bandwidth) cost
  models for estimating collective times on the simulated fabric.
"""

from repro.parallel.comm import (
    Allgather,
    Allreduce,
    Barrier,
    Bcast,
    CommStats,
    DeadlockError,
    Gather,
    Recv,
    Reduce,
    Send,
    run_spmd,
)
from repro.parallel.decomp import (
    interleave_bits3,
    morton_key,
    morton_partition,
    slab_partition,
)
from repro.parallel.collectives import CollectiveCostModel

__all__ = [
    "run_spmd",
    "Send",
    "Recv",
    "Bcast",
    "Reduce",
    "Allreduce",
    "Gather",
    "Allgather",
    "Barrier",
    "CommStats",
    "DeadlockError",
    "slab_partition",
    "morton_key",
    "morton_partition",
    "interleave_bits3",
    "CollectiveCostModel",
]
