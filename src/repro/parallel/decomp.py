"""Domain decomposition helpers.

PEPC uses a hashed oct-tree with a space-filling-curve ordering to assign
contiguous key ranges to processors ("tree domains as transparent or solid
boxes" are exactly these per-processor key ranges, section 3.4).  LB3D
style lattice codes use slab decomposition.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError


def slab_partition(n: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``parts`` contiguous near-equal slabs.

    Returns ``[(start, stop), ...]``; earlier slabs get the remainder,
    matching the usual MPI block distribution.
    """
    if parts < 1:
        raise SimulationError("parts must be >= 1")
    if n < 0:
        raise SimulationError("n must be >= 0")
    base, extra = divmod(n, parts)
    out = []
    start = 0
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        out.append((start, start + size))
        start += size
    return out


def interleave_bits3(x: np.ndarray, y: np.ndarray, z: np.ndarray, bits: int) -> np.ndarray:
    """Interleave three ``bits``-bit integer arrays into Morton keys.

    Vectorized bit-dilation: each coordinate's bit *b* lands at position
    ``3*b`` (x), ``3*b+1`` (y), ``3*b+2`` (z) of the key.
    """
    if bits < 1 or bits > 21:
        raise SimulationError("bits must be in [1, 21] for 64-bit keys")
    key = np.zeros(np.broadcast(x, y, z).shape, dtype=np.uint64)
    x = np.asarray(x, dtype=np.uint64)
    y = np.asarray(y, dtype=np.uint64)
    z = np.asarray(z, dtype=np.uint64)
    for b in range(bits):
        bit = np.uint64(1) << np.uint64(b)
        key |= ((x & bit) >> np.uint64(b)) << np.uint64(3 * b)
        key |= ((y & bit) >> np.uint64(b)) << np.uint64(3 * b + 1)
        key |= ((z & bit) >> np.uint64(b)) << np.uint64(3 * b + 2)
    return key


def morton_key(
    positions: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    bits: int = 16,
) -> np.ndarray:
    """Morton (Z-order) keys for points in the box ``[lo, hi]``.

    Points are quantized to a ``2**bits`` grid per axis and bit-interleaved.
    Equal keys mean same leaf cell at that refinement.
    """
    positions = np.asarray(positions, dtype=np.float64)
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise SimulationError("positions must be (N, 3)")
    span = hi - lo
    if np.any(span <= 0):
        raise SimulationError("degenerate bounding box")
    scale = (2**bits - 1) / span
    q = np.clip(((positions - lo) * scale), 0, 2**bits - 1).astype(np.uint64)
    return interleave_bits3(q[:, 0], q[:, 1], q[:, 2], bits)


def morton_partition(
    positions: np.ndarray,
    nranks: int,
    lo: np.ndarray,
    hi: np.ndarray,
    bits: int = 16,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Assign points to ranks by contiguous Morton-key ranges.

    Returns ``(owner, index_lists)`` where ``owner[i]`` is the rank of
    point ``i`` and ``index_lists[r]`` the point indices owned by rank
    ``r`` in key order.  This is the PEPC-style SFC decomposition: spatial
    locality within a rank, near-equal counts across ranks.
    """
    keys = morton_key(positions, lo, hi, bits)
    order = np.argsort(keys, kind="stable")
    n = len(order)
    owner = np.empty(n, dtype=np.int64)
    index_lists = []
    for r, (start, stop) in enumerate(slab_partition(n, nranks)):
        idx = order[start:stop]
        owner[idx] = r
        index_lists.append(idx)
    return owner, index_lists
