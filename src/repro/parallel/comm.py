"""Deterministic in-process SPMD runtime (a mini-MPI on generators).

A rank program is a generator function ``fn(comm, *args)`` that yields
operation objects::

    def worker(comm):
        data = yield Bcast(root=0, data=comm.rank == 0 and payload or None)
        total = yield Allreduce(comm.rank, op="sum")
        return total

``run_spmd(4, worker)`` executes all ranks in a lockstep scheduler:
point-to-point sends are buffered (non-blocking), receives block until a
matching message exists, and collectives rendezvous by call order — each
rank's N-th collective matches every other rank's N-th, as MPI requires.
Mismatched collective types or a blocked cycle raise
:class:`DeadlockError` instead of hanging, which turns classic MPI bugs
into test failures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import SimulationError


class DeadlockError(SimulationError):
    """No rank can make progress but not all ranks have finished."""


# -- operations ---------------------------------------------------------------


@dataclass
class Send:
    """Buffered (non-blocking) point-to-point send."""

    dest: int
    data: Any
    tag: int = 0


@dataclass
class Recv:
    """Blocking receive from ``source`` with matching ``tag``."""

    source: int
    tag: int = 0


@dataclass
class Bcast:
    """Broadcast ``data`` from ``root``; every rank receives it."""

    root: int
    data: Any = None


@dataclass
class Reduce:
    """Reduce ``value`` to ``root`` with ``op`` (sum/min/max)."""

    value: Any
    root: int = 0
    op: str = "sum"


@dataclass
class Allreduce:
    value: Any
    op: str = "sum"


@dataclass
class Gather:
    value: Any
    root: int = 0


@dataclass
class Allgather:
    value: Any


@dataclass
class Alltoall:
    """``values`` must have one entry per rank; rank i gets entry i from all."""

    values: list


@dataclass
class Barrier:
    pass


_COLLECTIVES = (Bcast, Reduce, Allreduce, Gather, Allgather, Alltoall, Barrier)


def _combine(values: list, op: str) -> Any:
    if op == "sum":
        out = values[0]
        for v in values[1:]:
            out = out + v
        return out
    if op == "min":
        return min(values) if not isinstance(values[0], np.ndarray) else np.minimum.reduce(values)
    if op == "max":
        return max(values) if not isinstance(values[0], np.ndarray) else np.maximum.reduce(values)
    raise SimulationError(f"unknown reduction op {op!r}")


def _payload_bytes(data: Any) -> int:
    if isinstance(data, np.ndarray):
        return data.nbytes
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    return 64  # nominal size for small python objects


@dataclass
class CommStats:
    """Traffic accounting for one SPMD run."""

    p2p_messages: int = 0
    p2p_bytes: int = 0
    collectives: int = 0
    collective_bytes: int = 0
    per_rank_bytes: dict = field(default_factory=dict)

    def _add_rank(self, rank: int, nbytes: int) -> None:
        self.per_rank_bytes[rank] = self.per_rank_bytes.get(rank, 0) + nbytes


class _RankView:
    """The ``comm`` object handed to each rank program."""

    def __init__(self, rank: int, size: int, stats: CommStats) -> None:
        self.rank = rank
        self.size = size
        self.stats = stats

    def __repr__(self) -> str:
        return f"<comm rank={self.rank} size={self.size}>"


class _Rank:
    def __init__(self, index: int, gen) -> None:
        self.index = index
        self.gen = gen
        self.op: Optional[Any] = None
        self.send_value: Any = None  # value to send into the generator next
        self.finished = False
        self.result: Any = None
        self.coll_seq = 0  # how many collectives this rank has completed


class _CollectiveSlot:
    def __init__(self, optype: type, size: int) -> None:
        self.optype = optype
        self.arrived: dict[int, Any] = {}
        self.size = size

    def full(self) -> bool:
        return len(self.arrived) == self.size


def run_spmd(
    nranks: int,
    fn: Callable,
    *args,
    stats: Optional[CommStats] = None,
    max_rounds: int = 10_000_000,
) -> list:
    """Run ``fn(comm, *args)`` on ``nranks`` ranks; return their results."""
    if nranks < 1:
        raise SimulationError("need at least one rank")
    stats = stats if stats is not None else CommStats()
    ranks = []
    for i in range(nranks):
        view = _RankView(i, nranks, stats)
        gen = fn(view, *args)
        if not hasattr(gen, "send"):
            raise SimulationError("rank program must be a generator function")
        ranks.append(_Rank(i, gen))

    # (src, dest, tag) -> deque of payloads
    mailboxes: dict[tuple[int, int, int], deque] = {}
    # collective sequence number -> slot
    slots: dict[int, _CollectiveSlot] = {}

    def step_rank(r: _Rank) -> bool:
        """Advance one rank as far as possible; True if it made progress."""
        progressed = False
        while not r.finished:
            if r.op is None:
                try:
                    r.op = r.gen.send(r.send_value)
                    r.send_value = None
                    progressed = True
                except StopIteration as stop:
                    r.finished = True
                    r.result = stop.value
                    progressed = True
                    break
            op = r.op
            if isinstance(op, Send):
                if not 0 <= op.dest < nranks:
                    raise SimulationError(f"send to invalid rank {op.dest}")
                mailboxes.setdefault((r.index, op.dest, op.tag), deque()).append(op.data)
                nbytes = _payload_bytes(op.data)
                stats.p2p_messages += 1
                stats.p2p_bytes += nbytes
                stats._add_rank(r.index, nbytes)
                r.op = None
                r.send_value = None
                progressed = True
                continue
            if isinstance(op, Recv):
                box = mailboxes.get((op.source, r.index, op.tag))
                if box:
                    r.send_value = box.popleft()
                    r.op = None
                    progressed = True
                    continue
                break  # blocked on recv
            if isinstance(op, _COLLECTIVES):
                slot = slots.get(r.coll_seq)
                if slot is None:
                    slot = slots[r.coll_seq] = _CollectiveSlot(type(op), nranks)
                if slot.optype is not type(op):
                    raise DeadlockError(
                        f"collective mismatch at seq {r.coll_seq}: rank "
                        f"{r.index} called {type(op).__name__}, others "
                        f"called {slot.optype.__name__}"
                    )
                if r.index not in slot.arrived:
                    slot.arrived[r.index] = op
                    progressed = True
                if not slot.full():
                    break  # wait for the others
                seq = r.coll_seq  # _complete_collective advances coll_seq
                _complete_collective(slot, ranks, stats)
                del slots[seq]
                # All ranks (including this one) got send_value + op=None.
                continue
            raise SimulationError(f"rank {r.index} yielded unknown op {op!r}")
        return progressed

    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise DeadlockError("scheduler exceeded max rounds")
        progressed = False
        for r in ranks:
            if not r.finished:
                progressed = step_rank(r) or progressed
        if all(r.finished for r in ranks):
            return [r.result for r in ranks]
        if not progressed:
            blocked = {
                r.index: type(r.op).__name__ for r in ranks if not r.finished
            }
            raise DeadlockError(f"no rank can progress; blocked on {blocked}")


def _complete_collective(slot: _CollectiveSlot, ranks: list, stats: CommStats) -> None:
    ops = slot.arrived
    optype = slot.optype
    stats.collectives += 1
    results: dict[int, Any] = {}
    if optype is Barrier:
        results = {i: None for i in ops}
    elif optype is Bcast:
        root = ops[0].root
        data = ops[root].data
        nbytes = _payload_bytes(data)
        stats.collective_bytes += nbytes * (len(ops) - 1)
        results = {i: data for i in ops}
    elif optype is Reduce:
        root = ops[0].root
        values = [ops[i].value for i in sorted(ops)]
        combined = _combine(values, ops[root].op)
        stats.collective_bytes += sum(_payload_bytes(v) for v in values)
        results = {i: (combined if i == root else None) for i in ops}
    elif optype is Allreduce:
        values = [ops[i].value for i in sorted(ops)]
        combined = _combine(values, ops[0].op)
        stats.collective_bytes += 2 * sum(_payload_bytes(v) for v in values)
        results = {i: combined for i in ops}
    elif optype is Gather:
        root = ops[0].root
        values = [ops[i].value for i in sorted(ops)]
        stats.collective_bytes += sum(_payload_bytes(v) for v in values)
        results = {i: (values if i == root else None) for i in ops}
    elif optype is Allgather:
        values = [ops[i].value for i in sorted(ops)]
        stats.collective_bytes += len(ops) * sum(_payload_bytes(v) for v in values)
        results = {i: list(values) for i in ops}
    elif optype is Alltoall:
        size = slot.size
        for i, op in ops.items():
            if len(op.values) != size:
                raise SimulationError(
                    f"Alltoall on rank {i} supplied {len(op.values)} values "
                    f"for {size} ranks"
                )
        stats.collective_bytes += sum(
            _payload_bytes(v) for op in ops.values() for v in op.values
        )
        results = {i: [ops[j].values[i] for j in sorted(ops)] for i in ops}
    else:  # pragma: no cover - guarded by _COLLECTIVES
        raise SimulationError(f"unhandled collective {optype}")

    for i, value in results.items():
        rank = ranks[i]
        rank.send_value = value
        rank.op = None
        rank.coll_seq += 1
