"""Alpha-beta cost models for collective operations.

Used to charge virtual time for the parallel phases of the steered
simulations when they run inside the DES scenarios: a collective on P
ranks moving m bytes costs ``ceil(log2 P)`` latency terms plus bandwidth
terms, the standard Hockney-style model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class CollectiveCostModel:
    """Latency/bandwidth (alpha/beta) model of the machine interconnect.

    Parameters
    ----------
    alpha:
        Per-message latency in seconds (switch + software overhead).
    beta:
        Seconds per byte (inverse bandwidth) of a link.
    """

    alpha: float = 5e-6
    beta: float = 1.0 / 400e6  # 400 MB/s, era-appropriate HPC interconnect

    def _check(self, nranks: int, nbytes: float) -> None:
        if nranks < 1:
            raise SimulationError("nranks must be >= 1")
        if nbytes < 0:
            raise SimulationError("nbytes must be >= 0")

    def point_to_point(self, nbytes: float) -> float:
        return self.alpha + self.beta * nbytes

    def barrier(self, nranks: int) -> float:
        self._check(nranks, 0)
        if nranks == 1:
            return 0.0
        return 2.0 * math.ceil(math.log2(nranks)) * self.alpha

    def bcast(self, nranks: int, nbytes: float) -> float:
        """Binomial-tree broadcast."""
        self._check(nranks, nbytes)
        if nranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        return rounds * (self.alpha + self.beta * nbytes)

    def reduce(self, nranks: int, nbytes: float) -> float:
        return self.bcast(nranks, nbytes)  # same tree, reversed

    def allreduce(self, nranks: int, nbytes: float) -> float:
        """Reduce + broadcast (the classic non-rabenseifner estimate)."""
        return self.reduce(nranks, nbytes) + self.bcast(nranks, nbytes)

    def allgather(self, nranks: int, nbytes_per_rank: float) -> float:
        """Ring allgather: P-1 steps of one block each."""
        self._check(nranks, nbytes_per_rank)
        if nranks == 1:
            return 0.0
        return (nranks - 1) * (self.alpha + self.beta * nbytes_per_rank)

    def alltoall(self, nranks: int, nbytes_per_pair: float) -> float:
        self._check(nranks, nbytes_per_pair)
        if nranks == 1:
            return 0.0
        return (nranks - 1) * (self.alpha + self.beta * nbytes_per_pair)
