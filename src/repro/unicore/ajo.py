"""Abstract Job Objects: UNICORE's serialized workflow unit.

"The workflows being instantiated are known in UNICORE as Abstract Job
Objects (AJOs) and are sent via ssl as serialised Java objects" (section
2.2).  An AJO is a DAG of tasks — stage-in, execute, stage-out — kept
deliberately *abstract*: nothing in it names site-specific paths or
submission commands; that knowledge is added later by the NJS during
incarnation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import UnicoreError


@dataclass
class ExecuteTask:
    """Run an application on the target system.

    ``application`` is an abstract name ("LB3D", "PEPC") resolved by the
    target's incarnation database; ``wall_time`` is the virtual compute
    duration for plain batch tasks (steered applications run until
    stopped); ``steered`` marks tasks that attach to the VISIT proxy.
    """

    name: str
    application: str
    arguments: dict = field(default_factory=dict)
    wall_time: float = 1.0
    steered: bool = False


@dataclass
class StageIn:
    """Place a named file into the job's USpace before execution."""

    name: str
    filename: str
    data: bytes


@dataclass
class StageOut:
    """Retrieve a named file from the USpace after execution."""

    name: str
    filename: str


class AbstractJobObject:
    """A DAG of tasks plus the target vsite it should run on."""

    def __init__(self, job_name: str, vsite: str) -> None:
        self.job_name = job_name
        self.vsite = vsite
        self.tasks: dict[str, Any] = {}
        self.dependencies: dict[str, set[str]] = {}

    def add_task(self, task, after: Optional[list[str]] = None) -> str:
        """Add a task; ``after`` lists task names that must finish first."""
        if task.name in self.tasks:
            raise UnicoreError(f"duplicate task name {task.name!r}")
        for dep in after or []:
            if dep not in self.tasks:
                raise UnicoreError(f"dependency {dep!r} not yet defined")
        self.tasks[task.name] = task
        self.dependencies[task.name] = set(after or [])
        return task.name

    def execution_order(self) -> list[str]:
        """Topological order; raises on cycles (defensive — add_task's
        defined-before rule already prevents them)."""
        order: list[str] = []
        done: set[str] = set()
        remaining = dict(self.dependencies)
        while remaining:
            ready = sorted(n for n, deps in remaining.items() if deps <= done)
            if not ready:
                raise UnicoreError(f"dependency cycle among {sorted(remaining)}")
            for name in ready:
                order.append(name)
                done.add(name)
                del remaining[name]
        return order

    # -- serialization (the "serialised Java objects" of the UPL) ------------

    def to_wire(self) -> dict:
        out_tasks = {}
        for name, task in self.tasks.items():
            d = {"_task": type(task).__name__}
            d.update(task.__dict__)
            out_tasks[name] = d
        return {
            "job_name": self.job_name,
            "vsite": self.vsite,
            "tasks": out_tasks,
            "dependencies": {k: sorted(v) for k, v in self.dependencies.items()},
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "AbstractJobObject":
        kinds = {"ExecuteTask": ExecuteTask, "StageIn": StageIn, "StageOut": StageOut}
        try:
            ajo = cls(payload["job_name"], payload["vsite"])
            for name in payload["dependencies"]:
                raw = dict(payload["tasks"][name])
                kind = raw.pop("_task")
                task = kinds[kind](**raw)
                ajo.tasks[name] = task
                ajo.dependencies[name] = set(payload["dependencies"][name])
        except (KeyError, TypeError) as exc:
            raise UnicoreError(f"malformed AJO payload: {exc}") from None
        return ajo
