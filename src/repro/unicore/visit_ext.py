"""The VISIT extension to UNICORE (section 3.3).

"We have designed and implemented a connection-oriented protocol on top
of the UNICORE protocol.  The simulation-end of that connection is formed
by VISIT proxy-servers which are separate processes running on each
target system.  The other end ... is located at the UNICORE client,
implemented as a client-plugin and acting as a VISIT proxy-client.  By
polling the target system for new data, that plugin is able to emulate
the server capabilities that are required for the VISIT connection."

Collaboration lives *in the proxy* ("for the VISIT-UNICORE extension this
functionality has been moved into the VISIT proxy-server ... all users
participating in the collaboration have to authenticate to the UNICORE
system"): every polling participant receives all simulation data; only
the master's responses answer the simulation's receive-requests.

The steered application itself uses the ordinary
:class:`~repro.visit.client.VisitClient` pointed at the proxy's local
port — "any application that uses VISIT will be able to use the
VISIT-UNICORE extension without modifications".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Optional

from repro.errors import ChannelClosed, TimeoutExpired, UnicoreError
from repro.unicore.client import UnicoreClient
from repro.visit.messages import (
    ConnectAck,
    ConnectRequest,
    DataRequest,
    DataResponse,
    DataSend,
    VisitClose,
    decode_visit,
    encode_visit,
)


class _Participant:
    def __init__(self, name: str, subject: str) -> None:
        self.name = name
        self.subject = subject
        self.cursor = 0  # index into the proxy outbox
        self.polls = 0


class VisitProxyServer:
    """Runs on the target system; the simulation's local VISIT peer."""

    def __init__(self, host, port: int, password: str, byteorder: str = "<") -> None:
        self.host = host
        self.port = port
        self.password = password
        self.byteorder = byteorder
        #: every DataSend from the simulation, in order: (time, tag, payload)
        self.outbox: list[tuple[float, int, Any]] = []
        #: simulation receive-requests awaiting a master response
        self._pending: list[dict] = []
        self._participants: dict[str, _Participant] = {}
        self._master: Optional[str] = None
        self.polls_served = 0

    # -- collaboration roles ---------------------------------------------------

    @property
    def master(self) -> Optional[str]:
        return self._master

    def pass_master(self, to_name: str) -> None:
        if to_name not in self._participants:
            raise UnicoreError(f"unknown participant {to_name!r}")
        self._master = to_name

    def participants(self) -> list[str]:
        return list(self._participants)

    # -- simulation-facing VISIT service -------------------------------------------

    def start(self) -> None:
        listener = self.host.listen(self.port)
        env = self.host.env

        def accept_loop():
            while True:
                conn = yield from listener.accept()
                env.process(self._serve_sim(conn))

        env.process(accept_loop())

    def _serve_sim(self, conn):
        env = self.host.env
        try:
            blob = yield from conn.recv(timeout=30.0)
        except (TimeoutExpired, ChannelClosed):
            conn.close()
            return
        msg = decode_visit(blob)
        if not isinstance(msg, ConnectRequest) or msg.password != self.password:
            conn.send(encode_visit(ConnectAck(False, "bad password"), self.byteorder))
            conn.close()
            return
        conn.send(
            encode_visit(ConnectAck(True, server_name="visit-proxy"), self.byteorder)
        )
        while True:
            try:
                blob = yield from conn.recv(timeout=None)
            except ChannelClosed:
                return
            msg = decode_visit(blob)
            if isinstance(msg, DataSend):
                self.outbox.append((env.now, msg.tag, msg.payload))
            elif isinstance(msg, DataRequest):
                # Park until the master's poll supplies an answer; the
                # *simulation's own timeout* bounds its wait, so parking
                # here costs the proxy nothing.
                self._pending.append(
                    {"tag": msg.tag, "seq": msg.seq, "conn": conn, "asked": env.now}
                )
            elif isinstance(msg, VisitClose):
                conn.close()
                return

    # -- NJS-facing poll handling ------------------------------------------------

    def handle_poll(self, subject: str, client: str, responses: list):
        """Generator -> poll reply dict (called through the NJS).

        ``responses`` are the master's answers to previously forwarded
        receive-requests: ``[{"tag": t, "seq": s, "payload": p}, ...]``.
        """
        if not subject:
            return {"ok": False, "error": "unauthenticated poll"}
        p = self._participants.get(client)
        if p is None:
            p = self._participants[client] = _Participant(client, subject)
            if self._master is None:
                self._master = client
        p.polls += 1
        self.polls_served += 1

        is_master = client == self._master
        if responses and is_master:
            self._apply_responses(responses)
        # All participants receive every sample (fan-out via cursors).
        new_items = [
            {"tag": tag, "payload": payload, "sent_at": t}
            for (t, tag, payload) in self.outbox[p.cursor :]
        ]
        p.cursor = len(self.outbox)
        reply = {
            "ok": True,
            "data": new_items,
            "master": self._master,
            "requests": [
                {"tag": r["tag"], "seq": r["seq"]} for r in self._pending
            ]
            if is_master
            else [],
        }
        return reply
        yield  # pragma: no cover - generator marker

    def _apply_responses(self, responses: list) -> None:
        for resp in responses:
            matched = None
            for r in self._pending:
                if r["tag"] == resp.get("tag") and r["seq"] == resp.get("seq"):
                    matched = r
                    break
            if matched is None:
                continue  # simulation already gave up on it
            self._pending.remove(matched)
            conn = matched["conn"]
            if not conn.closed:
                conn.send(
                    encode_visit(
                        DataResponse(
                            matched["tag"], matched["seq"], True,
                            payload=resp.get("payload"),
                        ),
                        self.byteorder,
                    )
                )


class VisitUnicorePlugin:
    """The UNICORE-client plugin acting as VISIT proxy-client.

    Polls the target system through the gateway every ``poll_interval``
    seconds; received samples go to ``on_data``; the simulation's
    receive-requests are answered from per-tag ``providers`` (mirroring
    what a real steering panel would supply).
    """

    def __init__(
        self,
        client: UnicoreClient,
        vsite: str,
        name: str,
        poll_interval: float = 0.5,
    ) -> None:
        if poll_interval <= 0:
            raise UnicoreError("poll interval must be positive")
        self.client = client
        self.vsite = vsite
        self.name = name
        self.poll_interval = poll_interval
        self.providers: dict[int, Callable[[], Any]] = {}
        self.received: dict[int, list] = defaultdict(list)
        self.on_data: Optional[Callable[[int, Any], None]] = None
        #: observed delivery latency of each sample (poll lag + transport)
        self.delivery_latencies: list[float] = []
        self.is_master = False
        self.stopped = False
        self.polls = 0

    def provide(self, tag: int, provider: Callable[[], Any]) -> None:
        self.providers[tag] = provider

    def start(self) -> None:
        self.client.host.env.process(self._poll_loop())

    def stop(self) -> None:
        self.stopped = True

    def _poll_loop(self):
        env = self.client.host.env
        pending_answers: list[dict] = []
        while not self.stopped:
            try:
                reply = yield from self.client.request(
                    {
                        "op": "proxy_poll",
                        "vsite": self.vsite,
                        "client": self.name,
                        "responses": pending_answers,
                    }
                )
            except (UnicoreError, TimeoutExpired, ChannelClosed):
                yield env.timeout(self.poll_interval)
                continue
            pending_answers = []
            self.polls += 1
            if reply.get("ok"):
                self.is_master = reply.get("master") == self.name
                for item in reply.get("data", []):
                    tag, payload = item["tag"], item["payload"]
                    self.received[tag].append(payload)
                    self.delivery_latencies.append(env.now - item["sent_at"])
                    if self.on_data is not None:
                        self.on_data(tag, payload)
                for req in reply.get("requests", []):
                    provider = self.providers.get(req["tag"])
                    if provider is not None:
                        pending_answers.append(
                            {
                                "tag": req["tag"],
                                "seq": req["seq"],
                                "payload": provider(),
                            }
                        )
            if pending_answers:
                # Answer steering requests promptly rather than waiting a
                # full interval — latency here is simulation wait time.
                continue
            yield env.timeout(self.poll_interval)
