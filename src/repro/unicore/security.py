"""UNICORE security model: certificates and single sign-on.

Section 3.1 promises "single sign-on with strong authentication and
encryption".  We model X.509-style certificates as signed (issuer,
subject) pairs; a Gateway trusts a set of issuer CAs and rejects
everything else.  Actual cryptography is out of scope — what matters for
the reproduction is *where* authentication happens (only at the gateway,
once) and what gets through.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AuthenticationError


@dataclass(frozen=True)
class Certificate:
    """A toy X.509: subject identity signed by an issuer CA."""

    subject: str
    issuer: str
    serial: int = 1
    revoked: bool = False

    def check_valid(self) -> None:
        if self.revoked:
            raise AuthenticationError(f"certificate of {self.subject!r} is revoked")


@dataclass(frozen=True)
class UserIdentity:
    """A user with a certificate and the login they map to on targets.

    UNICORE maps the grid identity to site-local accounts (the "xlogin");
    the NJS performs that mapping during incarnation.
    """

    certificate: Certificate
    xlogin: str

    @property
    def name(self) -> str:
        return self.certificate.subject


class TrustStore:
    """The set of CA issuers a gateway/NJS accepts."""

    def __init__(self, trusted_issuers: set[str] | None = None) -> None:
        self.trusted_issuers = set(trusted_issuers or ())

    def trust(self, issuer: str) -> None:
        self.trusted_issuers.add(issuer)

    def authenticate(self, cert: Certificate) -> str:
        """Returns the authenticated subject or raises."""
        cert.check_valid()
        if cert.issuer not in self.trusted_issuers:
            raise AuthenticationError(
                f"issuer {cert.issuer!r} is not trusted by this gateway"
            )
        return cert.subject
