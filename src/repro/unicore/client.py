"""The UNICORE client: build, submit, monitor jobs through the gateway.

All operations are stateless transactions over the (single) gateway
connection — "a client can appear or vanish at any time" (section 3.3) —
which is exactly the property the VISIT extension's polling proxy-client
has to bridge.
"""

from __future__ import annotations


from repro.errors import TimeoutExpired, UnicoreError
from repro.unicore.ajo import AbstractJobObject
from repro.unicore.njs import JobStatus
from repro.unicore.security import UserIdentity


class UnicoreClient:
    """A user's client session against one gateway."""

    def __init__(
        self,
        host,
        identity: UserIdentity,
        gateway_host: str,
        gateway_port: int,
        request_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.identity = identity
        self.gateway_host = gateway_host
        self.gateway_port = gateway_port
        self.request_timeout = request_timeout
        self._conn = None
        self.authenticated = False

    # -- session --------------------------------------------------------------

    def connect(self):
        """Generator -> bool: open + authenticate the gateway session."""
        conn = yield from self.host.connect(
            self.gateway_host, self.gateway_port, timeout=self.request_timeout
        )
        conn.send(
            {"op": "auth", "certificate": self.identity.certificate.__dict__}
        )
        reply = yield from conn.recv(timeout=self.request_timeout)
        if not reply.get("ok"):
            conn.close()
            raise UnicoreError(f"sign-on failed: {reply.get('error')}")
        self._conn = conn
        self.authenticated = True
        return True

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
        self._conn = None
        self.authenticated = False

    def request(self, msg: dict):
        """Generator -> reply dict: one authenticated transaction."""
        if not self.authenticated or self._conn is None or self._conn.closed:
            raise UnicoreError("client is not connected; call connect() first")
        self._conn.send(msg, size=msg.get("_size"))
        reply = yield from self._conn.recv(timeout=self.request_timeout)
        return reply

    # -- job operations ------------------------------------------------------------

    def consign(self, ajo: AbstractJobObject):
        """Generator -> job_id."""
        wire = ajo.to_wire()
        reply = yield from self.request(
            {"op": "consign", "vsite": ajo.vsite, "ajo": wire}
        )
        if not reply.get("ok"):
            raise UnicoreError(f"consignment rejected: {reply.get('error')}")
        return reply["job_id"]

    def status(self, vsite: str, job_id: str):
        """Generator -> (JobStatus, task states dict)."""
        reply = yield from self.request(
            {"op": "status", "vsite": vsite, "job_id": job_id}
        )
        if not reply.get("ok"):
            raise UnicoreError(f"status failed: {reply.get('error')}")
        return JobStatus(reply["status"]), reply["tasks"]

    def retrieve(self, vsite: str, job_id: str, filename: str):
        """Generator -> bytes of the outcome file."""
        reply = yield from self.request(
            {"op": "retrieve", "vsite": vsite, "job_id": job_id, "filename": filename}
        )
        if not reply.get("ok"):
            raise UnicoreError(f"retrieve failed: {reply.get('error')}")
        return reply["data"]

    def wait_for(self, vsite: str, job_id: str, poll_interval: float = 1.0,
                 timeout: float = 600.0):
        """Generator -> JobStatus: poll until the job leaves RUNNING/QUEUED."""
        env = self.host.env
        deadline = env.now + timeout
        while True:
            status, _tasks = yield from self.status(vsite, job_id)
            if status in (JobStatus.SUCCESSFUL, JobStatus.FAILED):
                return status
            if env.now >= deadline:
                raise TimeoutExpired(
                    f"job {job_id} still {status.value} after {timeout}s"
                )
            yield env.timeout(poll_interval)
