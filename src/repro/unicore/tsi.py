"""The Target System Interface: runs incarnated tasks under a batch queue.

Section 3.1: "UNICORE target systems that schedule and run the jobs on the
HPC platforms.  On these systems a Target System Interface (TSI) ...
performs the communication with the NJS."  Section 3.3: the TSI is "the
only component of the UNICORE system that needs to be modified" for the
steering extension — which here means the TSI can host a VISIT proxy
server and launch *steered* applications that talk to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.des import Resource
from repro.errors import IncarnationError, UnicoreError
from repro.unicore.uspace import USpace


@dataclass
class IncarnatedTask:
    """What incarnation produces: a concrete, site-specific script.

    ``script`` is the human-readable artifact (the Perl the real TSI would
    run); ``handler`` names the registered application implementation the
    simulated TSI invokes.
    """

    task_name: str
    handler: str
    script: str
    arguments: dict = field(default_factory=dict)
    wall_time: float = 1.0
    steered: bool = False


class TargetSystemInterface:
    """Batch-queue executor on the target host."""

    def __init__(self, host, queue_slots: int = 2) -> None:
        if queue_slots < 1:
            raise UnicoreError("queue needs at least one slot")
        self.host = host
        self.queue = Resource(host.env, capacity=queue_slots)
        #: handler name -> factory(env, host, arguments, uspace) -> generator
        self._applications: dict[str, Optional[Callable]] = {"sleep": None}
        self.tasks_run = 0
        self.tasks_failed = 0
        #: set by the VISIT extension (section 3.3): a proxy the steered
        #: applications and the NJS poll path can reach.
        self.visit_proxy = None

    def register_application(
        self, name: str, factory: Optional[Callable] = None
    ) -> None:
        """Register an executable.  ``factory=None`` means a plain batch
        task that just consumes its wall time."""
        if name in self._applications:
            raise UnicoreError(f"application {name!r} already registered")
        self._applications[name] = factory

    def available_applications(self) -> list[str]:
        return sorted(self._applications)

    def knows(self, handler: str) -> bool:
        return handler in self._applications

    def run_task(self, task: IncarnatedTask, uspace: USpace):
        """Generator: queue, run, return (ok, error) when the task ends."""
        if task.handler not in self._applications:
            raise IncarnationError(
                f"target system has no application {task.handler!r}"
            )
        env = self.host.env
        req = self.queue.request()
        yield req
        try:
            factory = self._applications[task.handler]
            if factory is None:
                yield env.timeout(task.wall_time)
            else:
                proc = env.process(
                    factory(env, self.host, dict(task.arguments), uspace)
                )
                try:
                    yield proc
                except Exception as exc:
                    self.tasks_failed += 1
                    return False, f"{type(exc).__name__}: {exc}"
            self.tasks_run += 1
            return True, ""
        finally:
            req.release()
