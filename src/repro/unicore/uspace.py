"""USpace: the per-job working directory on the target system."""

from __future__ import annotations

from repro.errors import UnicoreError


class USpace:
    """An isolated in-memory job directory: filename -> bytes."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        self._files: dict[str, bytes] = {}

    def write(self, filename: str, data: bytes) -> None:
        if not filename or filename.startswith("/") or ".." in filename:
            raise UnicoreError(f"illegal USpace filename {filename!r}")
        self._files[filename] = bytes(data)

    def read(self, filename: str) -> bytes:
        try:
            return self._files[filename]
        except KeyError:
            raise UnicoreError(
                f"no file {filename!r} in USpace of {self.job_id}"
            ) from None

    def exists(self, filename: str) -> bool:
        return filename in self._files

    def listing(self) -> list[str]:
        return sorted(self._files)

    def total_bytes(self) -> int:
        return sum(len(v) for v in self._files.values())

    def purge(self) -> None:
        self._files.clear()
