"""UNICORE: UNiform Interface to COmputing REsources (reproduction).

The three-tier architecture of section 3.1:

* **client** — "construct, submit and control the execution of
  computational jobs" (:mod:`repro.unicore.client`);
* **servers** — Gateways as "point-of-entry into the protected domains of
  the HPC centres" (single fixed TCP port, strong authentication) and
  Network Job Supervisors "that adapt the abstract UNICORE job for the
  specific HPC system" via *incarnation* (:mod:`repro.unicore.gateway`,
  :mod:`repro.unicore.njs`);
* **target systems** — the Target System Interface runs the incarnated
  scripts under a batch queue (:mod:`repro.unicore.tsi`).

Workflows travel as Abstract Job Objects (:mod:`repro.unicore.ajo`);
job files live in per-job USpaces (:mod:`repro.unicore.uspace`).  The
computational-steering extension of section 3.3 — the only part needing a
modified TSI — is :mod:`repro.unicore.visit_ext`.
"""

from repro.unicore.security import Certificate, UserIdentity
from repro.unicore.ajo import AbstractJobObject, ExecuteTask, StageIn, StageOut
from repro.unicore.uspace import USpace
from repro.unicore.gateway import Gateway
from repro.unicore.njs import NetworkJobSupervisor, JobStatus
from repro.unicore.tsi import TargetSystemInterface
from repro.unicore.client import UnicoreClient

__all__ = [
    "Certificate",
    "UserIdentity",
    "AbstractJobObject",
    "ExecuteTask",
    "StageIn",
    "StageOut",
    "USpace",
    "Gateway",
    "NetworkJobSupervisor",
    "JobStatus",
    "TargetSystemInterface",
    "UnicoreClient",
]
