"""The Network Job Supervisor: incarnation and job lifecycle.

Section 2.2: "the AJOs are translated into Perl scripts for a target
machine.  This process is known as incarnation in the UNICORE model; it
allows the details of the scripts used to run the workflow to be hidden
from the application."

The NJS owns the job table of its vsite: it accepts consigned AJOs from
the gateway, *incarnates* each abstract task against the site's
incarnation database, runs the DAG through the TSI, and serves status /
outcome-retrieval requests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ChannelClosed, IncarnationError, UnicoreError
from repro.unicore.ajo import AbstractJobObject, ExecuteTask, StageIn, StageOut
from repro.unicore.tsi import IncarnatedTask, TargetSystemInterface
from repro.unicore.uspace import USpace
from repro.util.ids import IdAllocator


class JobStatus(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    SUCCESSFUL = "successful"
    FAILED = "failed"


@dataclass
class _Job:
    job_id: str
    owner: str
    ajo: AbstractJobObject
    uspace: USpace
    status: JobStatus = JobStatus.QUEUED
    task_states: dict = field(default_factory=dict)
    error: str = ""
    outcome: dict = field(default_factory=dict)


class NetworkJobSupervisor:
    """One vsite's job manager, fronted by the gateway."""

    def __init__(
        self,
        host,
        port: int,
        vsite: str,
        tsi: TargetSystemInterface,
    ) -> None:
        self.host = host
        self.port = port
        self.vsite = vsite
        self.tsi = tsi
        #: abstract application name -> (handler, script template)
        self.idb: dict[str, tuple[str, str]] = {}
        self.jobs: dict[str, _Job] = {}
        self._job_ids = IdAllocator(f"{vsite}-job")
        self.consigned = 0

    # -- incarnation database ---------------------------------------------------

    def register_application(self, application: str, handler: str) -> None:
        """Map an abstract application name to a TSI handler."""
        if not self.tsi.knows(handler):
            raise IncarnationError(
                f"TSI at {self.host.name} has no handler {handler!r}"
            )
        self.idb[application] = (
            handler,
            f"#!/usr/bin/perl\n# incarnated for {self.vsite}\nexec('{handler}');\n",
        )

    def incarnate(self, task: ExecuteTask, owner: str) -> IncarnatedTask:
        entry = self.idb.get(task.application)
        if entry is None:
            raise IncarnationError(
                f"vsite {self.vsite!r} cannot incarnate application "
                f"{task.application!r}"
            )
        handler, script = entry
        return IncarnatedTask(
            task_name=task.name,
            handler=handler,
            script=script + f"# xlogin={owner}\n",
            arguments=dict(task.arguments),
            wall_time=task.wall_time,
            steered=task.steered,
        )

    # -- service process -------------------------------------------------------

    def start(self) -> None:
        listener = self.host.listen(self.port)
        env = self.host.env

        def accept_loop():
            while True:
                conn = yield from listener.accept()
                env.process(self._serve(conn))

        env.process(accept_loop())

    def _serve(self, conn):
        while True:
            try:
                msg = yield from conn.recv(timeout=None)
            except ChannelClosed:
                return
            reply = yield from self._handle(msg)
            conn.send(reply)

    def _handle(self, msg):
        if not isinstance(msg, dict) or "op" not in msg or "subject" not in msg:
            return {"ok": False, "error": "malformed NJS request"}
        op = msg["op"]
        subject = msg["subject"]
        if op == "consign":
            return self._consign(msg, subject)
        if op == "status":
            return self._status(msg, subject)
        if op == "retrieve":
            return self._retrieve(msg, subject)
        if op == "proxy_poll":
            result = yield from self._proxy_poll(msg, subject)
            return result
        return {"ok": False, "error": f"unknown op {op!r}"}
        yield  # pragma: no cover - generator marker

    def _job_for(self, msg, subject) -> _Job:
        job = self.jobs.get(msg.get("job_id", ""))
        if job is None:
            raise UnicoreError(f"unknown job {msg.get('job_id')!r}")
        if job.owner != subject:
            raise UnicoreError(f"job belongs to {job.owner!r}, not {subject!r}")
        return job

    def _consign(self, msg, subject) -> dict:
        try:
            ajo = AbstractJobObject.from_wire(msg["ajo"])
        except (KeyError, UnicoreError) as exc:
            return {"ok": False, "error": f"bad AJO: {exc}"}
        if ajo.vsite != self.vsite:
            return {"ok": False, "error": f"AJO addressed to {ajo.vsite!r}"}
        # Incarnation check up front: reject jobs this site cannot run.
        for task in ajo.tasks.values():
            if isinstance(task, ExecuteTask) and task.application not in self.idb:
                return {
                    "ok": False,
                    "error": f"cannot incarnate {task.application!r} at {self.vsite}",
                }
        job_id = self._job_ids.next()
        job = _Job(job_id, subject, ajo, USpace(job_id))
        job.task_states = {name: "pending" for name in ajo.tasks}
        self.jobs[job_id] = job
        self.consigned += 1
        self.host.env.process(self._execute(job))
        return {"ok": True, "job_id": job_id}

    def _execute(self, job: _Job):
        job.status = JobStatus.RUNNING
        try:
            for name in job.ajo.execution_order():
                task = job.ajo.tasks[name]
                job.task_states[name] = "running"
                if isinstance(task, StageIn):
                    job.uspace.write(task.filename, task.data)
                elif isinstance(task, StageOut):
                    job.outcome[task.filename] = job.uspace.read(task.filename)
                elif isinstance(task, ExecuteTask):
                    incarnated = self.incarnate(task, job.owner)
                    ok, error = yield from self.tsi.run_task(incarnated, job.uspace)
                    if not ok:
                        raise UnicoreError(f"task {name!r} failed: {error}")
                else:
                    raise UnicoreError(f"unknown task type {type(task).__name__}")
                job.task_states[name] = "done"
        except (UnicoreError, IncarnationError) as exc:
            job.status = JobStatus.FAILED
            job.error = str(exc)
            return
        job.status = JobStatus.SUCCESSFUL

    def _status(self, msg, subject) -> dict:
        try:
            job = self._job_for(msg, subject)
        except UnicoreError as exc:
            return {"ok": False, "error": str(exc)}
        return {
            "ok": True,
            "status": job.status.value,
            "tasks": dict(job.task_states),
            "error": job.error,
        }

    def _retrieve(self, msg, subject) -> dict:
        try:
            job = self._job_for(msg, subject)
        except UnicoreError as exc:
            return {"ok": False, "error": str(exc)}
        filename = msg.get("filename", "")
        data = job.outcome.get(filename)
        if data is None:
            return {"ok": False, "error": f"no outcome file {filename!r}"}
        return {"ok": True, "filename": filename, "data": data, "_size": len(data)}

    def _proxy_poll(self, msg, subject):
        """Relay a VISIT-proxy poll to the TSI's proxy (section 3.3)."""
        proxy = self.tsi.visit_proxy
        if proxy is None:
            return {"ok": False, "error": "no VISIT proxy at this vsite"}
        result = yield from proxy.handle_poll(
            subject=subject,
            client=msg.get("client", subject),
            responses=msg.get("responses", []),
        )
        return result
