"""The UNICORE Gateway: single-port authenticated entry to an HPC centre.

Section 3.1: gateways act "as point-of-entry into the protected domains
of the HPC centres"; section 3.1's steering extension relies on
"firewall-friendliness; handling of all communication over a single fixed
TCP server-port".

Protocol: the first message on a client connection must be an ``auth``
carrying a certificate; the gateway authenticates it against its trust
store (single sign-on — no later message re-authenticates) and then
relays every subsequent request to the NJS of the addressed vsite,
stamping the authenticated subject into the request so inner tiers never
see raw credentials.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ChannelClosed, TimeoutExpired, UnicoreError
from repro.unicore.security import Certificate, TrustStore


class Gateway:
    """Single-port relay + authenticator for one protected domain."""

    def __init__(
        self,
        host,
        port: int,
        trust: Optional[TrustStore] = None,
        relay_timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.trust = trust or TrustStore()
        self.relay_timeout = relay_timeout
        #: vsite name -> (host name, port) of its NJS
        self._vsites: dict[str, tuple[str, int]] = {}
        self.sessions_opened = 0
        self.auth_failures = 0
        self.requests_relayed = 0

    def register_vsite(self, name: str, njs_host: str, njs_port: int) -> None:
        if name in self._vsites:
            raise UnicoreError(f"vsite {name!r} already registered")
        self._vsites[name] = (njs_host, njs_port)

    def vsites(self) -> list[str]:
        return sorted(self._vsites)

    def start(self) -> None:
        listener = self.host.listen(self.port)
        env = self.host.env

        def accept_loop():
            while True:
                conn = yield from listener.accept()
                env.process(self._serve(conn))

        env.process(accept_loop())

    # -- per-connection service ------------------------------------------------

    def _serve(self, conn):
        env = self.host.env
        # Authentication handshake (once per connection: single sign-on).
        try:
            msg = yield from conn.recv(timeout=30.0)
        except (TimeoutExpired, ChannelClosed):
            conn.close()
            return
        subject = None
        if isinstance(msg, dict) and msg.get("op") == "auth":
            try:
                cert = Certificate(**msg["certificate"])
                subject = self.trust.authenticate(cert)
            except Exception as exc:
                self.auth_failures += 1
                conn.send({"ok": False, "error": f"authentication failed: {exc}"})
                conn.close()
                return
            conn.send({"ok": True, "subject": subject})
            self.sessions_opened += 1
        else:
            conn.send({"ok": False, "error": "first message must be auth"})
            conn.close()
            return

        # Relay loop: one persistent internal connection per vsite.
        internal: dict[str, object] = {}
        while True:
            try:
                msg = yield from conn.recv(timeout=None)
            except ChannelClosed:
                for ic in internal.values():
                    ic.close()
                return
            if not isinstance(msg, dict) or "vsite" not in msg:
                conn.send({"ok": False, "error": "malformed request"})
                continue
            vsite = msg["vsite"]
            target = self._vsites.get(vsite)
            if target is None:
                conn.send({"ok": False, "error": f"unknown vsite {vsite!r}"})
                continue
            ic = internal.get(vsite)
            if ic is None or ic.closed:
                try:
                    ic = yield from self.host.connect(
                        target[0], target[1], timeout=self.relay_timeout
                    )
                except Exception as exc:
                    conn.send({"ok": False, "error": f"vsite unreachable: {exc}"})
                    continue
                internal[vsite] = ic
            forward = dict(msg)
            forward["subject"] = subject  # inner tiers trust the gateway
            ic.send(forward, size=msg.get("_size"))
            try:
                reply = yield from ic.recv(timeout=self.relay_timeout)
            except (TimeoutExpired, ChannelClosed) as exc:
                conn.send({"ok": False, "error": f"vsite failed: {exc}"})
                ic.close()
                internal.pop(vsite, None)
                continue
            self.requests_relayed += 1
            conn.send(reply, size=reply.get("_size") if isinstance(reply, dict) else None)
