"""VISIT: the VISualization Interface Toolkit (reproduction of section 3.2).

Design rules carried over from the paper:

* the *simulation is the client*, the *visualization is the server* —
  "unlike many other steering toolkits that work the opposite way";
* every operation is initiated by the simulation and is "guaranteed to
  complete (or fail) after a user-specified timeout", so a slow or dead
  visualization can never stall the simulation;
* MPI-like transport: messages carry integer *tags*; payloads are
  strings, ints, floats, structures and arrays of these; byte-order and
  precision conversion happens on the server side
  (:mod:`repro.wire.codec` implements exactly that data model);
* security is a cleartext connection password — VISIT's acknowledged
  weakness, which the UNICORE integration (:mod:`repro.unicore.visit_ext`)
  exists to fix;
* the ``vbroker`` multiplexer fans send-requests out to all participating
  visualizations and routes receive-requests to the *master* only.
"""

from repro.visit.messages import (
    ConnectAck,
    ConnectRequest,
    DataRequest,
    DataResponse,
    DataSend,
    VisitClose,
    decode_visit,
    encode_visit,
)
from repro.visit.client import VisitClient
from repro.visit.server import VisitServer
from repro.visit.vbroker import VBroker

__all__ = [
    "ConnectRequest",
    "ConnectAck",
    "DataSend",
    "DataRequest",
    "DataResponse",
    "VisitClose",
    "encode_visit",
    "decode_visit",
    "VisitClient",
    "VisitServer",
    "VBroker",
]
