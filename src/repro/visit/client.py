"""Simulation-side VISIT client.

Every public operation is a DES generator that resolves within its
timeout — "all operations (like opening a connection, sending data to be
visualized or receiving new parameters) have to be initiated by the
simulation and are guaranteed to complete (or fail) after a user-specified
timeout" (section 3.2).  On failure the client records the error and
degrades: sends become no-ops until a reconnect succeeds, so the
simulation keeps running at full speed with a dead visualization — the
behaviour the VISIT-T bench quantifies against a blocking baseline.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import (
    ChannelClosed,
    NetworkError,
    TimeoutExpired,
)
from repro.visit.messages import (
    ConnectAck,
    ConnectRequest,
    DataRequest,
    DataResponse,
    DataSend,
    VisitClose,
    decode_visit,
    encode_visit,
)


class VisitClient:
    """The lean, no-external-dependencies simulation-side interface."""

    def __init__(
        self,
        host,
        server_host: str,
        port: int,
        password: str,
        name: str = "simulation",
        byteorder: str = "<",
        default_timeout: float = 0.5,
    ) -> None:
        self.host = host
        self.server_host = server_host
        self.port = port
        self.password = password
        self.name = name
        self.byteorder = byteorder
        self.default_timeout = default_timeout
        self._conn = None
        self._seq = 0
        self.connected = False
        self.last_error: Optional[str] = None
        self.stats = {
            "sends_ok": 0,
            "sends_dropped": 0,
            "requests_ok": 0,
            "requests_failed": 0,
            "connects_failed": 0,
        }

    # -- connection -----------------------------------------------------------

    def connect(self, timeout: Optional[float] = None):
        """Generator -> bool.  Bounded connect + password handshake."""
        timeout = self.default_timeout if timeout is None else timeout
        env = self.host.env
        deadline = env.now + timeout
        try:
            conn = yield from self.host.connect(
                self.server_host, self.port, timeout=timeout
            )
        except (NetworkError, TimeoutExpired) as exc:
            self.last_error = str(exc)
            self.stats["connects_failed"] += 1
            return False
        conn.send(
            encode_visit(
                ConnectRequest(self.password, self.name), self.byteorder
            )
        )
        try:
            blob = yield from conn.recv(timeout=max(0.0, deadline - env.now))
            ack = decode_visit(blob)
        except (NetworkError, TimeoutExpired) as exc:
            conn.close()
            self.last_error = str(exc)
            self.stats["connects_failed"] += 1
            return False
        if not isinstance(ack, ConnectAck) or not ack.ok:
            conn.close()
            self.last_error = getattr(ack, "reason", "bad handshake reply")
            self.stats["connects_failed"] += 1
            return False
        self._conn = conn
        self.connected = True
        self.last_error = None
        return True

    def close(self) -> None:
        if self._conn is not None and not self._conn.closed:
            try:
                self._conn.send(encode_visit(VisitClose("client closing"), self.byteorder))
            except ChannelClosed:
                pass
            self._conn.close()
        self.connected = False
        self._conn = None

    # -- data operations -----------------------------------------------------

    def send(self, tag: int, payload: Any, timeout: Optional[float] = None):
        """Generator -> bool.  Push data to the visualization.

        Sending is buffered by the transport and never waits on the
        network; the only failure mode is "not connected", which returns
        False immediately — zero cost to the simulation.
        """
        del timeout  # sends cannot block in this transport; kept for API parity
        if not self.connected or self._conn is None or self._conn.closed:
            self.stats["sends_dropped"] += 1
            return False
        self._seq += 1
        try:
            self._conn.send(
                encode_visit(DataSend(tag, payload, seq=self._seq), self.byteorder)
            )
        except ChannelClosed:
            self.connected = False
            self.stats["sends_dropped"] += 1
            return False
        self.stats["sends_ok"] += 1
        return True
        yield  # pragma: no cover - makes this a generator for API symmetry

    def request(self, tag: int, timeout: Optional[float] = None):
        """Generator -> (ok, payload).  Ask the server for data (steering
        parameters); bounded by the timeout."""
        timeout = self.default_timeout if timeout is None else timeout
        env = self.host.env
        deadline = env.now + timeout
        if not self.connected or self._conn is None or self._conn.closed:
            self.stats["requests_failed"] += 1
            return False, None
        self._seq += 1
        seq = self._seq
        try:
            self._conn.send(encode_visit(DataRequest(tag, seq=seq), self.byteorder))
        except ChannelClosed:
            self.connected = False
            self.stats["requests_failed"] += 1
            return False, None
        while True:
            remaining = deadline - env.now
            if remaining <= 0:
                self.stats["requests_failed"] += 1
                self.last_error = f"request tag={tag} timed out after {timeout}s"
                return False, None
            try:
                blob = yield from self._conn.recv(timeout=remaining)
            except TimeoutExpired:
                self.stats["requests_failed"] += 1
                self.last_error = f"request tag={tag} timed out after {timeout}s"
                return False, None
            except (ChannelClosed, NetworkError) as exc:
                self.connected = False
                self.stats["requests_failed"] += 1
                self.last_error = str(exc)
                return False, None
            msg = decode_visit(blob)
            if isinstance(msg, DataResponse) and msg.seq == seq:
                if msg.ok:
                    self.stats["requests_ok"] += 1
                    return True, msg.payload
                self.stats["requests_failed"] += 1
                self.last_error = msg.reason
                return False, None
            if isinstance(msg, VisitClose):
                self.connected = False
                self.stats["requests_failed"] += 1
                return False, None
            # Stale response from an earlier timed-out request: skip it.

    def ensure_connected(self, timeout: Optional[float] = None):
        """Generator -> bool.  Reconnect if needed, bounded."""
        if self.connected and self._conn is not None and not self._conn.closed:
            return True
        ok = yield from self.connect(timeout)
        return ok

    def __repr__(self) -> str:
        state = "connected" if self.connected else "disconnected"
        return f"VisitClient({self.name} -> {self.server_host}:{self.port}, {state})"


class BlockingClientBaseline:
    """The anti-pattern VISIT was designed against: a client whose data
    push *waits for a server acknowledgement with no timeout*.

    Exists purely as the baseline for the VISIT-T bench: with a slow or
    dead server, the simulation's wall-clock per step grows without bound,
    while :class:`VisitClient` stays bounded by the user timeout.
    """

    def __init__(self, host, server_host: str, port: int, password: str) -> None:
        self._inner = VisitClient(host, server_host, port, password, name="blocking")

    def connect(self):
        ok = yield from self._inner.connect(timeout=1e9)
        return ok

    def send(self, tag: int, payload: Any):
        """Generator -> bool.  Send and wait (forever) for the echo ack."""
        if not self._inner.connected:
            return False
        conn = self._inner._conn
        self._inner._seq += 1
        seq = self._inner._seq
        conn.send(
            encode_visit(DataSend(tag, payload, seq=seq), self._inner.byteorder)
        )
        # Block until the server acknowledges this very message.
        while True:
            blob = yield from conn.recv(timeout=None)
            msg = decode_visit(blob)
            if isinstance(msg, DataResponse) and msg.seq == seq:
                return msg.ok
