"""The vbroker: VISIT's collaborative multiplexer (section 3.3).

"[T]he simulation data has to be sent to all visualization applications
... a 'multiplexer' that simply sends all VISIT send-requests to all
participating visualizations, ensuring that everyone views the same data.
Receive-requests are only sent to a 'master' visualization, so that only
that master is able to actively steer the application.  The master-role
can be moved ... allowing for a coordinated cooperative steering.  This
functionality has been implemented in an application (the vbroker) that
is part of the standard VISIT distribution."

The broker impersonates a VISIT *server* toward the simulation and a
VISIT *client* toward each participating visualization.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ChannelClosed, TimeoutExpired, VisitError
from repro.visit.messages import (
    ConnectAck,
    ConnectRequest,
    DataRequest,
    DataResponse,
    DataSend,
    VisitClose,
    decode_visit,
    encode_visit,
)


class _Downstream:
    """Broker-side handle for one participating visualization."""

    def __init__(self, name: str, server_host: str, port: int) -> None:
        self.name = name
        self.server_host = server_host
        self.port = port
        self.conn = None
        self.sends_forwarded = 0
        self.requests_served = 0


class VBroker:
    """One simulation in, k visualizations out, one master."""

    def __init__(
        self,
        host,
        port: int,
        password: str,
        byteorder: str = "<",
        request_timeout: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.password = password
        self.byteorder = byteorder
        self.request_timeout = request_timeout
        self._downstream: dict[str, _Downstream] = {}
        self._master: Optional[str] = None
        self.fanout_messages = 0
        self._listener = None

    # -- membership --------------------------------------------------------

    def add_visualization(self, name: str, server_host: str, port: int):
        """Generator: connect the broker to a participating visualization.

        The first participant becomes master.
        """
        if name in self._downstream:
            raise VisitError(f"visualization {name!r} already participating")
        ds = _Downstream(name, server_host, port)
        conn = yield from self.host.connect(server_host, port, timeout=5.0)
        conn.send(
            encode_visit(
                ConnectRequest(self.password, f"vbroker:{name}"), self.byteorder
            )
        )
        blob = yield from conn.recv(timeout=5.0)
        ack = decode_visit(blob)
        if not isinstance(ack, ConnectAck) or not ack.ok:
            conn.close()
            raise VisitError(f"visualization {name!r} refused the broker")
        ds.conn = conn
        self._downstream[name] = ds
        if self._master is None:
            self._master = name
        return ds

    def remove_visualization(self, name: str) -> None:
        ds = self._downstream.pop(name, None)
        if ds is None:
            raise VisitError(f"unknown visualization {name!r}")
        if ds.conn is not None:
            ds.conn.close()
        if self._master == name:
            self._master = next(iter(self._downstream), None)

    def prune_dead(self) -> list[str]:
        """Drop participants whose connection has died; returns their
        names.  If the master was among them the token moves to the next
        live participant (the removal rule above)."""
        dead = [
            name
            for name, ds in self._downstream.items()
            if ds.conn is None or ds.conn.closed
        ]
        for name in dead:
            self.remove_visualization(name)
        return dead

    @property
    def master(self) -> Optional[str]:
        return self._master

    def pass_master(self, to_name: str) -> None:
        if to_name not in self._downstream:
            raise VisitError(f"unknown visualization {to_name!r}")
        self._master = to_name

    def participants(self) -> list[str]:
        return list(self._downstream)

    @property
    def alive(self) -> bool:
        """True while the broker's listener is open on its host.

        A stopped (or never-started) broker cannot take new sessions;
        :class:`~repro.fleet.brokerpool.BrokerPool` skips it at placement
        time.
        """
        return (
            self._listener is not None
            and self.host.listeners.get(self.port) is self._listener
        )

    # -- processes ---------------------------------------------------------------

    def start(self) -> None:
        self._listener = self.host.listen(self.port)
        self.host.env.process(self._accept_loop())

    def stop(self) -> None:
        """Close the listener and drop every downstream connection.

        The broker host has crashed or been drained; sessions placed on
        it must be re-placed elsewhere.
        """
        if self._listener is not None:
            self._listener.close()
        for name in list(self._downstream):
            self.remove_visualization(name)

    def _accept_loop(self):
        env = self.host.env
        while True:
            conn = yield from self._listener.accept()
            env.process(self._serve_sim(conn))

    def _serve_sim(self, conn):
        """Impersonate a VISIT server toward the simulation."""
        try:
            blob = yield from conn.recv(timeout=30.0)
        except (TimeoutExpired, ChannelClosed):
            conn.close()
            return
        msg = decode_visit(blob)
        if not isinstance(msg, ConnectRequest) or msg.password != self.password:
            conn.send(encode_visit(ConnectAck(False, "bad password"), self.byteorder))
            conn.close()
            return
        conn.send(encode_visit(ConnectAck(True, server_name="vbroker"), self.byteorder))
        while True:
            try:
                blob = yield from conn.recv(timeout=None)
            except ChannelClosed:
                return
            msg = decode_visit(blob)
            if isinstance(msg, DataSend):
                # Fan out to every participant: everyone views the same data.
                self.fanout_messages += 1
                for ds in self._downstream.values():
                    if ds.conn is not None and not ds.conn.closed:
                        ds.conn.send(encode_visit(msg, self.byteorder))
                        ds.sends_forwarded += 1
            elif isinstance(msg, DataRequest):
                response = yield from self._ask_master(msg)
                conn.send(encode_visit(response, self.byteorder))
            elif isinstance(msg, VisitClose):
                conn.close()
                return

    def _ask_master(self, request: DataRequest):
        """Generator -> DataResponse.  Receive-requests go to the master only."""
        master = self._downstream.get(self._master) if self._master else None
        if master is None or master.conn is None or master.conn.closed:
            return DataResponse(
                request.tag, request.seq, False, reason="no master visualization"
            )
        master.conn.send(encode_visit(request, self.byteorder))
        env = self.host.env
        deadline = env.now + self.request_timeout
        while True:
            remaining = deadline - env.now
            if remaining <= 0:
                return DataResponse(
                    request.tag, request.seq, False,
                    reason=f"master {master.name!r} did not answer",
                )
            try:
                blob = yield from master.conn.recv(timeout=remaining)
            except (TimeoutExpired, ChannelClosed):
                return DataResponse(
                    request.tag, request.seq, False,
                    reason=f"master {master.name!r} did not answer",
                )
            reply = decode_visit(blob)
            if isinstance(reply, DataResponse) and reply.seq == request.seq:
                master.requests_served += 1
                return reply
            # Stale response from an earlier timed-out request: keep waiting.
