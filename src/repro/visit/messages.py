"""VISIT message model: tagged, typed, self-describing.

"VISIT uses an MPI-like data transport mechanism based on messages that
are distinguished via tags ...  The client either sends data along with a
header describing its content or requests data from the server by sending
a header that describes what is requested."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ProtocolError
from repro.wire.codec import decode, describe, encode


@dataclass
class ConnectRequest:
    """Open a VISIT session; password travels in clear text (section 3.2)."""

    password: str
    client_name: str = "simulation"


@dataclass
class ConnectAck:
    ok: bool
    reason: str = ""
    server_name: str = "visualization"


@dataclass
class DataSend:
    """Client pushes data: tag + self-describing payload."""

    tag: int
    payload: Any = None
    seq: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.description:
            self.description = describe(self.payload)


@dataclass
class DataRequest:
    """Client asks the server for data under a tag (steering parameters)."""

    tag: int
    seq: int = 0


@dataclass
class DataResponse:
    tag: int
    seq: int
    ok: bool
    payload: Any = None
    reason: str = ""


@dataclass
class VisitClose:
    reason: str = ""


_TYPES = {
    cls.__name__: cls
    for cls in (
        ConnectRequest,
        ConnectAck,
        DataSend,
        DataRequest,
        DataResponse,
        VisitClose,
    )
}


def encode_visit(msg: Any, byteorder: str = "<") -> bytes:
    """VISIT message -> wire bytes (the byte order is the *sender's*
    native order; the receiver converts, per the VISIT rule)."""
    kind = type(msg).__name__
    if kind not in _TYPES:
        raise ProtocolError(f"not a VISIT message: {msg!r}")
    body = {"_kind": kind}
    body.update(msg.__dict__)
    return encode(body, byteorder)


def decode_visit(blob: bytes) -> Any:
    body = decode(blob)
    if not isinstance(body, dict) or "_kind" not in body:
        raise ProtocolError("malformed VISIT message")
    kind = body.pop("_kind")
    cls = _TYPES.get(kind)
    if cls is None:
        raise ProtocolError(f"unknown VISIT message kind {kind!r}")
    try:
        return cls(**body)
    except TypeError as exc:
        raise ProtocolError(f"bad fields for {kind}: {exc}") from None
