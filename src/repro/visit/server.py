"""Visualization-side VISIT server.

"The visualization acts as a server that dispatches the simulation's
requests" (section 3.2).  The server owns:

* *providers*: per-tag callables producing the data a simulation
  ``request`` asks for (steering parameters, thresholds...);
* *received*: per-tag stores of data the simulation pushed, with an
  optional ``on_data`` callback into the visualization pipeline;
* transparent data conversion — the codec already returns native byte
  order, and ``convert_arrays_to`` optionally downcasts received arrays
  (e.g. float64 -> float32 for the renderer) so the simulation never
  converts anything.

``response_delay`` and ``dead`` simulate the slow / crashed visualization
whose harmlessness to the simulation is VISIT's core claim.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import ChannelClosed, TimeoutExpired, VisitError
from repro.wire.codec import coerce_array
from repro.visit.messages import (
    ConnectAck,
    ConnectRequest,
    DataRequest,
    DataResponse,
    DataSend,
    VisitClose,
    decode_visit,
    encode_visit,
)


class VisitServer:
    """Accepts VISIT clients and dispatches their requests."""

    def __init__(
        self,
        host,
        port: int,
        password: str,
        name: str = "visualization",
        byteorder: str = "<",
        response_delay: float = 0.0,
        ack_sends: bool = False,
        convert_arrays_to: Optional[str] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.password = password
        self.name = name
        self.byteorder = byteorder
        #: artificial processing delay per request (the "slow viz" knob)
        self.response_delay = response_delay
        #: echo a DataResponse for every DataSend (the blocking baseline
        #: protocol needs acknowledgements; plain VISIT never acks sends)
        self.ack_sends = ack_sends
        self.convert_arrays_to = convert_arrays_to
        self.providers: dict[int, Callable[[], Any]] = {}
        self.received: dict[int, list] = defaultdict(list)
        self.on_data: Optional[Callable[[int, Any], None]] = None
        self.dead = False
        self.clients_served = 0
        self.auth_failures = 0
        self._listener = None

    # -- configuration -------------------------------------------------------

    def provide(self, tag: int, provider: Callable[[], Any]) -> None:
        """Register the data source answering requests for ``tag``."""
        self.providers[tag] = provider

    def latest(self, tag: int) -> Any:
        items = self.received.get(tag)
        if not items:
            raise VisitError(f"no data received under tag {tag}")
        return items[-1]

    def kill(self) -> None:
        """Simulate a crash: stop answering anything."""
        self.dead = True

    # -- processes ------------------------------------------------------------

    def start(self) -> None:
        """Begin listening and spawn the accept loop."""
        self._listener = self.host.listen(self.port)
        self.host.env.process(self._accept_loop())

    def _accept_loop(self):
        env = self.host.env
        while True:
            try:
                conn = yield from self._listener.accept()
            except TimeoutExpired:  # pragma: no cover - accept has no timeout
                continue
            env.process(self._serve(conn))

    def _serve(self, conn):
        env = self.host.env
        try:
            blob = yield from conn.recv(timeout=30.0)
        except (TimeoutExpired, ChannelClosed):
            conn.close()
            return
        msg = decode_visit(blob)
        if not isinstance(msg, ConnectRequest) or msg.password != self.password:
            self.auth_failures += 1
            conn.send(encode_visit(ConnectAck(False, "bad password"), self.byteorder))
            conn.close()
            return
        if self.dead:
            conn.close()
            return
        conn.send(encode_visit(ConnectAck(True, server_name=self.name), self.byteorder))
        self.clients_served += 1
        while True:
            try:
                blob = yield from conn.recv(timeout=None)
            except ChannelClosed:
                return
            if self.dead:
                # A crashed visualization: never answer again.
                continue
            msg = decode_visit(blob)
            if isinstance(msg, DataSend):
                payload = self._convert(msg.payload)
                self.received[msg.tag].append(payload)
                if self.on_data is not None:
                    self.on_data(msg.tag, payload)
                if self.ack_sends:
                    if self.response_delay > 0:
                        yield env.timeout(self.response_delay)
                    conn.send(
                        encode_visit(
                            DataResponse(msg.tag, msg.seq, True), self.byteorder
                        )
                    )
            elif isinstance(msg, DataRequest):
                if self.response_delay > 0:
                    yield env.timeout(self.response_delay)
                provider = self.providers.get(msg.tag)
                if provider is None:
                    conn.send(
                        encode_visit(
                            DataResponse(
                                msg.tag, msg.seq, False,
                                reason=f"no provider for tag {msg.tag}",
                            ),
                            self.byteorder,
                        )
                    )
                else:
                    conn.send(
                        encode_visit(
                            DataResponse(msg.tag, msg.seq, True, payload=provider()),
                            self.byteorder,
                        )
                    )
            elif isinstance(msg, VisitClose):
                conn.close()
                return

    # -- conversion --------------------------------------------------------------

    def _convert(self, payload: Any) -> Any:
        """Server-side precision conversion (the simulation never converts)."""
        if self.convert_arrays_to is None:
            return payload
        target = self.convert_arrays_to
        if isinstance(payload, np.ndarray):
            return coerce_array(payload, target)
        if isinstance(payload, dict):
            return {k: self._convert(v) for k, v in payload.items()}
        if isinstance(payload, list):
            return [self._convert(v) for v in payload]
        return payload
