"""The FaultInjector: hooks that make scheduled faults actually bite.

One injector per run, bound to a :class:`~repro.fleet.driver.FleetDriver`
and (optionally) the admission controller's
:class:`~repro.load.capacity.CapacityLedger` and a
:class:`~repro.fleet.brokerpool.BrokerPool`.  ``apply(fault)`` mutates the
live fabric — network partitions, listener shutdowns, capacity marks —
and ``revert(fault)`` undoes exactly what ``apply`` stashed, so transient
fault windows leave no residue.

The injector is mechanism only.  *Policy* — what to do about the sessions
a fault strands — lives in
:class:`~repro.chaos.recovery.RecoveryOrchestrator`, which subscribes to
``on_fault`` and reacts after the fault has taken effect (recovery sees
the world post-fault, exactly like a real operator).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.chaos.faults import (
    ContainerCrash,
    Fault,
    FaultSchedule,
    FirewallLockdown,
    LinkDegrade,
    Partition,
    RegistryShardLoss,
    SiteOutage,
    SlowNode,
    VBrokerCrash,
)
from repro.errors import ChaosError


class FaultInjector:
    """Applies/reverts faults against a live fleet fabric."""

    def __init__(self, driver, ledger=None, controller=None, pool=None) -> None:
        self.driver = driver
        self.env = driver.env
        self.net = driver.net
        self.controller = controller
        self.ledger = ledger if ledger is not None else (
            controller.ledger if controller is not None else None
        )
        self.pool = pool
        #: subscribers ``cb(fault, phase)`` with phase "apply" | "revert"
        self.on_fault: list[Callable[[Fault, str], None]] = []
        #: (virtual time, phase, fault.describe()) audit trail
        self.log: list[tuple[float, str, str]] = []
        #: per-fault undo state, keyed by the fault object's identity
        self._undo: dict[int, dict] = {}
        #: refcounts so overlapping faults on one target compose: the
        #: last revert standing is the one that actually heals
        self._isolation: dict[str, int] = {}
        self._site_failures: dict[int, int] = {}
        self._lockdowns: dict[str, int] = {}
        #: sites whose container is down due to an active ContainerCrash
        #: (a concurrent SiteOutage revert must not re-seat its listener)
        self._crashed_containers: set[int] = set()
        #: broker indices down due to an active VBrokerCrash, for the
        #: same reason: an outage revert must not resurrect them
        self._crashed_brokers: set[int] = set()

    # -- schedule entry points ---------------------------------------------

    def install(self, schedule: FaultSchedule) -> list:
        """Compile a schedule onto this injector (delegates back)."""
        return schedule.install(self)

    def validate(self, schedule: FaultSchedule) -> None:
        """Fail fast on faults this fabric cannot host."""
        for fault in schedule:
            if isinstance(fault, (SiteOutage, ContainerCrash, SlowNode)):
                if fault.site >= len(self.driver.sites):
                    raise ChaosError(
                        f"{fault.describe()}: fabric has only " f"{len(self.driver.sites)} sites"
                    )
            elif isinstance(fault, VBrokerCrash):
                if self.pool is None:
                    raise ChaosError(f"{fault.describe()}: no broker pool attached")
                if fault.broker >= len(self.pool.brokers):
                    raise ChaosError(
                        f"{fault.describe()}: pool has only " f"{len(self.pool.brokers)} brokers"
                    )
            elif isinstance(fault, RegistryShardLoss):
                if fault.shard >= len(self.driver.shards):
                    raise ChaosError(
                        f"{fault.describe()}: only " f"{len(self.driver.shards)} shards"
                    )
            elif isinstance(fault, (LinkDegrade, Partition)):
                for name in (fault.a, fault.b):
                    if name not in self.net.hosts:
                        raise ChaosError(f"{fault.describe()}: unknown host {name!r}")
            elif isinstance(fault, FirewallLockdown):
                if fault.host not in self.net.hosts:
                    raise ChaosError(f"{fault.describe()}: unknown host {fault.host!r}")

    # -- the two verbs -----------------------------------------------------

    def apply(self, fault: Fault) -> None:
        self.log.append((self.env.now, "apply", fault.describe()))
        handler = self._HANDLERS[type(fault)]
        handler(self, fault, apply=True)
        for cb in self.on_fault:
            cb(fault, "apply")

    def revert(self, fault: Fault) -> None:
        self.log.append((self.env.now, "revert", fault.describe()))
        handler = self._HANDLERS[type(fault)]
        handler(self, fault, apply=False)
        for cb in self.on_fault:
            cb(fault, "revert")
        if self.controller is not None:
            # Healed capacity may unblock the head of the queue right now.
            self.controller.kick()

    # -- handlers ----------------------------------------------------------

    def _links_between(self, a: str, b: str):
        return [self.net.link(a, b), self.net.link(b, a)]

    def _link_degrade(self, fault: LinkDegrade, apply: bool) -> None:
        for link in self._links_between(fault.a, fault.b):
            if apply:
                link.degrade(fault.latency_factor, fault.bandwidth_factor)
            else:
                link.restore()

    def _partition(self, fault: Partition, apply: bool) -> None:
        if apply:
            self.net.partition(fault.a, fault.b)
        else:
            self.net.heal(fault.a, fault.b)

    def _isolate(self, name: str) -> None:
        self._isolation[name] = self._isolation.get(name, 0) + 1
        self.net.isolate(name)

    def _rejoin(self, name: str) -> None:
        count = self._isolation.get(name, 0) - 1
        if count <= 0:
            self._isolation.pop(name, None)
            self.net.rejoin(name)
        else:
            self._isolation[name] = count

    def _fail_site(self, index: int) -> None:
        self._site_failures[index] = self._site_failures.get(index, 0) + 1
        if self.ledger is not None and index in self.ledger.sites():
            if not self.ledger.is_failed(index):
                self.ledger.fail(index)

    def _repair_site(self, index: int) -> None:
        count = self._site_failures.get(index, 0) - 1
        if count <= 0:
            self._site_failures.pop(index, None)
            if self.ledger is not None and index in self.ledger.sites():
                if self.ledger.is_failed(index):
                    self.ledger.repair(index)
        else:
            self._site_failures[index] = count

    def _site_outage(self, fault: SiteOutage, apply: bool) -> None:
        site = self.driver.sites[fault.site]
        host_names = (site.hpc_name, site.svc_name)
        if apply:
            stash: dict = {"listeners": {}}
            for name in host_names:
                host = self.net.host(name)
                stash["listeners"][name] = dict(host.listeners)
                host.listeners.clear()
                self._isolate(name)
            self._undo[id(fault)] = stash
            self._fail_site(fault.site)
        else:
            stash = self._undo.pop(id(fault), {"listeners": {}})
            claimed = self._claimed_down_ports()
            for name in host_names:
                host = self.net.host(name)
                # Re-seat the stashed listeners: their accept loops were
                # parked on backlog mailboxes the whole time, so service
                # resumes without rebuilding the middleware stack.  A
                # port claimed by a still-active container or vbroker
                # crash stays down until *that* fault reverts.
                for port, listener in stash["listeners"].get(name, {}).items():
                    if (name, port) in claimed:
                        continue
                    host.listeners.setdefault(port, listener)
                self._rejoin(name)
            self._repair_site(fault.site)

    def _claimed_down_ports(self) -> set[tuple[str, int]]:
        """(host, port) pairs another active crash fault holds down."""
        claimed = {
            (self.driver.sites[i].svc_name, self.driver.sites[i].container.port)
            for i in self._crashed_containers
        }
        if self.pool is not None:
            claimed |= {
                (self.pool.brokers[i].host.name, self.pool.brokers[i].port)
                for i in self._crashed_brokers
            }
        return claimed

    def _container_crash(self, fault: ContainerCrash, apply: bool) -> None:
        site = self.driver.sites[fault.site]
        if apply:
            site.container.stop()
            self._crashed_containers.add(fault.site)
            self._fail_site(fault.site)
        else:
            self._crashed_containers.discard(fault.site)
            site.container.restart()
            self._repair_site(fault.site)

    def _vbroker_crash(self, fault: VBrokerCrash, apply: bool) -> None:
        broker = self.pool.brokers[fault.broker]
        if apply:
            # Unconditional: even if an outage already unseated the
            # listener, the downstream connections must still be severed.
            broker.stop()
            self._crashed_brokers.add(fault.broker)
        else:
            self._crashed_brokers.discard(fault.broker)
            if not broker.alive:
                broker.start()

    def _shard_loss(self, fault: RegistryShardLoss, apply: bool) -> None:
        if not apply:  # pragma: no cover - schedule forbids durations
            return
        shard = self.driver.shards[fault.shard]
        lost = len(shard._entries)
        shard._entries.clear()
        shard._index.clear()
        shard._unindexed.clear()
        shard.service_data["entry_count"] = 0
        self.log.append((
            self.env.now, "note",
            f"shard {fault.shard} lost {lost} entries",
        ))

    def _lockdown(self, fault: FirewallLockdown, apply: bool) -> None:
        firewall = self.net.host(fault.host).firewall
        site = self.driver.site_of_host(fault.host)
        if apply:
            self._lockdowns[fault.host] = (self._lockdowns.get(fault.host, 0) + 1)
            firewall.lockdown()
            # A locked-down site cannot launch new sessions (the gateway
            # port is shut); take it out of placement for the window.
            if site is not None:
                self._fail_site(site)
        else:
            count = self._lockdowns.get(fault.host, 0) - 1
            if count <= 0:
                self._lockdowns.pop(fault.host, None)
                firewall.lift_lockdown()
            else:
                self._lockdowns[fault.host] = count
            if site is not None:
                self._repair_site(site)

    def _slow_node(self, fault: SlowNode, apply: bool) -> None:
        site = self.driver.sites[fault.site]
        for name in (site.hpc_name, site.svc_name):
            for link in self.net.links_of(name):
                if apply:
                    link.degrade(fault.factor, 1.0 / fault.factor)
                else:
                    link.restore()

    _HANDLERS = {
        LinkDegrade: _link_degrade,
        Partition: _partition,
        SiteOutage: _site_outage,
        ContainerCrash: _container_crash,
        VBrokerCrash: _vbroker_crash,
        RegistryShardLoss: _shard_loss,
        FirewallLockdown: _lockdown,
        SlowNode: _slow_node,
    }

    # -- introspection -----------------------------------------------------

    def applied(self, kind: Optional[str] = None) -> list[str]:
        return [
            desc for _, phase, desc in self.log
            if phase == "apply" and (kind is None or desc.startswith(kind))
        ]
